"""Tests for repro.simulator.engine (compute-op level simulation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.cyclic import cyclic_schedule
from repro.schedule.events import ComputeOp, OpType
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.simulator.engine import SimulationError, simulate_schedule


def uniform_durations(value: float = 1.0):
    return lambda op: value


class TestBasicSimulation:
    def test_single_stage_makespan(self):
        schedule = one_f_one_b_schedule(1, 4)
        result = simulate_schedule(schedule, uniform_durations(2.0))
        # 4 forwards + 4 backwards, 2 ms each, no pipeline overlap possible.
        assert result.makespan_ms == pytest.approx(16.0)

    def test_ideal_pipeline_makespan_formula(self):
        """With uniform unit ops the 1F1B makespan matches the textbook
        (c - 1) bubbles formula: (m + c - 1) * (tf + tb) for tf == tb == 1."""
        c, m = 4, 8
        schedule = one_f_one_b_schedule(c, m)
        result = simulate_schedule(schedule, uniform_durations(1.0))
        assert result.makespan_ms == pytest.approx((m + c - 1) * 2.0)

    def test_op_times_complete(self):
        schedule = one_f_one_b_schedule(3, 5)
        result = simulate_schedule(schedule, uniform_durations())
        assert len(result.op_times) == schedule.total_ops()

    def test_durations_from_mapping(self):
        schedule = one_f_one_b_schedule(2, 2)
        durations = {op: 1.5 for op in schedule.all_ops()}
        result = simulate_schedule(schedule, durations)
        assert result.makespan_ms > 0

    def test_dependencies_respected(self):
        schedule = one_f_one_b_schedule(4, 6)
        result = simulate_schedule(schedule, uniform_durations())
        times = result.op_times
        for mb in range(6):
            for stage in range(3):
                fwd_here = times[ComputeOp(mb, stage, OpType.FORWARD)]
                fwd_next = times[ComputeOp(mb, stage + 1, OpType.FORWARD)]
                assert fwd_next[0] >= fwd_here[1] - 1e-9
                bwd_next = times[ComputeOp(mb, stage + 1, OpType.BACKWARD)]
                bwd_here = times[ComputeOp(mb, stage, OpType.BACKWARD)]
                assert bwd_here[0] >= bwd_next[1] - 1e-9
        for mb in range(6):
            last = 3
            fwd = times[ComputeOp(mb, last, OpType.FORWARD)]
            bwd = times[ComputeOp(mb, last, OpType.BACKWARD)]
            assert bwd[0] >= fwd[1] - 1e-9

    def test_device_order_respected(self):
        schedule = one_f_one_b_schedule(4, 6)
        result = simulate_schedule(schedule, uniform_durations())
        for stage_schedule in schedule.stages:
            ends = [result.op_times[op][1] for op in stage_schedule.ops]
            starts = [result.op_times[op][0] for op in stage_schedule.ops]
            for prev_end, next_start in zip(ends, starts[1:]):
                assert next_start >= prev_end - 1e-9

    def test_comm_time_adds_latency(self):
        schedule = one_f_one_b_schedule(4, 4)
        without = simulate_schedule(schedule, uniform_durations())
        with_comm = simulate_schedule(
            schedule, uniform_durations(), comm_time_fn=lambda mb, s, d, g: 0.5
        )
        assert with_comm.makespan_ms > without.makespan_ms

    def test_busy_plus_idle_equals_makespan(self):
        schedule = one_f_one_b_schedule(4, 6)
        result = simulate_schedule(schedule, uniform_durations(3.0))
        for busy, idle in zip(result.device_busy_ms, result.device_idle_ms):
            assert busy + idle == pytest.approx(result.makespan_ms)

    def test_bubble_fraction_positive_for_multistage(self):
        result = simulate_schedule(one_f_one_b_schedule(4, 4), uniform_durations())
        assert 0.0 < result.bubble_fraction < 1.0

    def test_bubble_fraction_shrinks_with_more_microbatches(self):
        few = simulate_schedule(one_f_one_b_schedule(4, 4), uniform_durations())
        many = simulate_schedule(one_f_one_b_schedule(4, 32), uniform_durations())
        assert many.bubble_fraction < few.bubble_fraction


class TestMemoryTracking:
    def test_peak_activation_matches_1f1b_bound(self):
        c, m = 4, 8
        schedule = one_f_one_b_schedule(c, m)
        activation = [[1.0] * c for _ in range(m)]
        result = simulate_schedule(
            schedule, uniform_durations(), activation_bytes=activation
        )
        # Stage j holds at most c - j concurrent activations under 1F1B.
        for stage in range(c):
            assert result.peak_activation_bytes[stage] <= c - stage + 1e-9

    def test_static_bytes_included(self):
        schedule = one_f_one_b_schedule(2, 2)
        activation = [[1.0, 1.0] for _ in range(2)]
        result = simulate_schedule(
            schedule,
            uniform_durations(),
            activation_bytes=activation,
            static_bytes=[100.0, 200.0],
        )
        assert result.peak_activation_bytes[0] >= 100.0
        assert result.peak_activation_bytes[1] >= 200.0


class TestRobustnessToVariation:
    def test_adaptive_schedule_tolerates_variation_better_than_1f1b(self):
        """The core claim of paper §5 / Fig. 7: under noisy micro-batch
        execution times the adaptive (cyclic) schedule's makespan degrades
        less than 1F1B's."""
        import numpy as np

        c, m = 8, 32
        rng = np.random.default_rng(0)
        noisy = {
            (mb, OpType.FORWARD): max(0.05, 1.0 + rng.normal(0, 0.5)) for mb in range(m)
        }
        noisy.update(
            {(mb, OpType.BACKWARD): max(0.05, 2.0 + rng.normal(0, 0.5)) for mb in range(m)}
        )

        def duration(op: ComputeOp) -> float:
            return noisy[(op.microbatch, op.op_type)]

        one_f = simulate_schedule(one_f_one_b_schedule(c, m), duration)
        adaptive = simulate_schedule(
            cyclic_schedule(c, [[1.0] * c for _ in range(m)]), duration
        )
        assert adaptive.makespan_ms <= one_f.makespan_ms * 1.001

    @given(
        stages=st.integers(1, 5),
        microbatches=st.integers(1, 10),
        duration=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_makespan_lower_bound(self, stages, microbatches, duration):
        """The makespan is never below the busiest device's total work nor
        below the critical path of a single micro-batch."""
        schedule = one_f_one_b_schedule(stages, microbatches)
        result = simulate_schedule(schedule, uniform_durations(duration))
        per_device_work = 2 * microbatches * duration
        critical_path = 2 * stages * duration
        assert result.makespan_ms >= per_device_work - 1e-6
        assert result.makespan_ms >= critical_path - 1e-6


class TestErrors:
    def test_inconsistent_schedule_raises(self):
        from repro.schedule.events import PipelineSchedule, StageSchedule

        # Stage 1 expects micro-batch 0's forward but stage 0 never runs it.
        stage0 = StageSchedule(stage=0)
        stage0.append(1, OpType.FORWARD)
        stage0.append(1, OpType.BACKWARD)
        stage1 = StageSchedule(stage=1)
        stage1.append(0, OpType.FORWARD)
        stage1.append(0, OpType.BACKWARD)
        broken = PipelineSchedule(stages=[stage0, stage1], num_microbatches=2)
        with pytest.raises(SimulationError):
            simulate_schedule(broken, uniform_durations())
