"""Tests for repro.data.sampler."""

from __future__ import annotations

import pytest

from repro.data.sampler import MiniBatchSampler
from repro.data.tasks import Sample


def make_samples(count: int, tokens: int = 100) -> list[Sample]:
    return [Sample(input_tokens=tokens, target_tokens=0, task=f"t{i}") for i in range(count)]


class TestMiniBatchSampler:
    def test_token_budget_respected(self):
        sampler = MiniBatchSampler(make_samples(100), global_batch_tokens=1000, seed=0)
        batches = list(sampler.epoch(0))
        # Every batch except possibly the last reaches the budget.
        for batch in batches[:-1]:
            assert batch.total_tokens() >= 1000

    def test_epoch_covers_all_samples_exactly_once(self):
        samples = make_samples(57)
        sampler = MiniBatchSampler(samples, global_batch_tokens=1000, seed=0)
        seen = [s for batch in sampler.epoch(0) for s in batch.samples]
        assert sorted(seen) == sorted(samples)

    def test_drop_last(self):
        samples = make_samples(25)  # 2500 tokens -> 2 full batches + 500 leftover
        keep = MiniBatchSampler(samples, 1000, seed=0, drop_last=False)
        drop = MiniBatchSampler(samples, 1000, seed=0, drop_last=True)
        assert len(list(keep.epoch(0))) == len(list(drop.epoch(0))) + 1

    def test_same_seed_same_epoch(self):
        samples = make_samples(50)
        a = MiniBatchSampler(samples, 700, seed=5)
        b = MiniBatchSampler(samples, 700, seed=5)
        assert [m.samples for m in a.epoch(0)] == [m.samples for m in b.epoch(0)]

    def test_different_epochs_shuffle_differently(self):
        samples = [Sample(input_tokens=10 + i, target_tokens=0) for i in range(200)]
        sampler = MiniBatchSampler(samples, 500, seed=5)
        first = [m.samples for m in sampler.epoch(0)]
        second = [m.samples for m in sampler.epoch(1)]
        assert first != second

    def test_batch_indices_sequential(self):
        sampler = MiniBatchSampler(make_samples(40), 800, seed=0)
        indices = [batch.index for batch in sampler.epoch(0)]
        assert indices == list(range(len(indices)))

    def test_minibatch_accessors(self):
        samples = [Sample(100, 20), Sample(50, 10)]
        sampler = MiniBatchSampler(samples, 10_000, seed=0)
        batch = next(iter(sampler))
        assert batch.max_input_tokens() == 100
        assert batch.max_target_tokens() == 20
        assert len(batch) == 2

    def test_num_batches_estimate(self):
        sampler = MiniBatchSampler(make_samples(100), 1000, seed=0)
        assert sampler.num_batches_estimate() == 10

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            MiniBatchSampler([], 100)
        with pytest.raises(ValueError):
            MiniBatchSampler(make_samples(2), 0)
