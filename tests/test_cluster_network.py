"""Tests for repro.cluster.network."""

from __future__ import annotations

import pytest

from repro.cluster.network import EFA_400GBPS, NVSWITCH, LinkSpec, NetworkModel


class TestLinkSpec:
    def test_transfer_time_includes_latency(self):
        link = LinkSpec("test", bandwidth=1e9, latency_ms=1.0)
        assert link.transfer_time_ms(0) == pytest.approx(1.0)

    def test_transfer_time_scales_with_bytes(self):
        link = LinkSpec("test", bandwidth=1e9, latency_ms=0.0)
        assert link.transfer_time_ms(1e9) == pytest.approx(1000.0)
        assert link.transfer_time_ms(2e9) == pytest.approx(2000.0)

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            LinkSpec("bad", bandwidth=0, latency_ms=0)
        with pytest.raises(ValueError):
            LinkSpec("bad", bandwidth=1, latency_ms=-1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NVSWITCH.transfer_time_ms(-1)

    def test_nvswitch_faster_than_efa(self):
        nbytes = 100 * 1024**2
        assert NVSWITCH.transfer_time_ms(nbytes) < EFA_400GBPS.transfer_time_ms(nbytes)


class TestNetworkModel:
    def test_link_selection(self):
        net = NetworkModel()
        assert net.link_for(same_node=True) is net.intra_node
        assert net.link_for(same_node=False) is net.inter_node

    def test_p2p_intra_node_faster(self):
        net = NetworkModel()
        nbytes = 64 * 1024**2
        assert net.p2p_time_ms(nbytes, same_node=True) < net.p2p_time_ms(nbytes, same_node=False)

    def test_allreduce_single_participant_free(self):
        net = NetworkModel()
        assert net.allreduce_time_ms(1e9, participants=1, same_node=True) == 0.0

    def test_allreduce_grows_with_volume(self):
        net = NetworkModel()
        small = net.allreduce_time_ms(1e6, participants=4, same_node=True)
        large = net.allreduce_time_ms(1e9, participants=4, same_node=True)
        assert large > small

    def test_allreduce_volume_factor(self):
        # The ring all-reduce volume factor 2(p-1)/p approaches 2 for large p.
        net = NetworkModel(intra_node=LinkSpec("zero-lat", bandwidth=1e9, latency_ms=0.0))
        two = net.allreduce_time_ms(1e9, participants=2, same_node=True)
        many = net.allreduce_time_ms(1e9, participants=64, same_node=True)
        assert two == pytest.approx(1000.0)  # factor 1.0
        assert many == pytest.approx(2000.0, rel=0.05)  # factor ~2

    def test_allreduce_invalid_participants(self):
        with pytest.raises(ValueError):
            NetworkModel().allreduce_time_ms(1e6, participants=0, same_node=True)
