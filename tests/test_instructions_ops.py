"""Tests for repro.instructions.ops and serialization."""

from __future__ import annotations

import pytest

from repro.instructions.ops import (
    BackwardPass,
    CommDirection,
    ForwardPass,
    InstructionKind,
    RecvActStart,
    RecvGradStart,
    SendActStart,
    SendGradStart,
    WaitRecvAct,
    WaitRecvGrad,
    WaitSendAct,
    WaitSendGrad,
)
from repro.instructions.serialization import (
    instruction_from_dict,
    instruction_to_dict,
    instructions_from_dicts,
    instructions_to_dicts,
)
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape

SHAPE = MicroBatchShape(batch_size=2, enc_seq_len=128, dec_seq_len=32)


class TestComputeInstructions:
    def test_forward_pass_kind(self):
        instr = ForwardPass(microbatch=3, stage=1, shape=SHAPE)
        assert instr.kind is InstructionKind.FORWARD
        assert instr.is_compute
        assert not instr.is_comm_start
        assert not instr.is_wait

    def test_backward_pass_kind(self):
        instr = BackwardPass(microbatch=3, stage=1, shape=SHAPE, recompute=RecomputeMode.FULL)
        assert instr.kind is InstructionKind.BACKWARD
        assert instr.recompute is RecomputeMode.FULL

    def test_shape_required(self):
        with pytest.raises(ValueError):
            ForwardPass(microbatch=0, stage=0, shape=None)

    def test_frozen(self):
        instr = ForwardPass(microbatch=0, stage=0, shape=SHAPE)
        with pytest.raises(AttributeError):
            instr.stage = 2  # type: ignore[misc]


class TestCommInstructions:
    def test_send_act_direction(self):
        instr = SendActStart(microbatch=0, stage=1, peer=2, nbytes=100.0)
        assert instr.direction is CommDirection.ACTIVATION
        assert instr.is_send
        assert instr.is_comm_start

    def test_recv_grad_direction(self):
        instr = RecvGradStart(microbatch=0, stage=1, peer=2, nbytes=100.0)
        assert instr.direction is CommDirection.GRADIENT
        assert not instr.is_send

    def test_wait_is_wait(self):
        assert WaitRecvAct(microbatch=0, stage=1, peer=0).is_wait
        assert WaitSendGrad(microbatch=0, stage=1, peer=0).is_wait

    def test_peer_required(self):
        with pytest.raises(ValueError):
            SendActStart(microbatch=0, stage=1)
        with pytest.raises(ValueError):
            WaitRecvGrad(microbatch=0, stage=1)

    def test_negative_nbytes_rejected(self):
        with pytest.raises(ValueError):
            SendGradStart(microbatch=0, stage=1, peer=0, nbytes=-1.0)


class TestSerialization:
    ALL_INSTRUCTIONS = [
        ForwardPass(microbatch=1, stage=0, shape=SHAPE),
        BackwardPass(microbatch=1, stage=0, shape=SHAPE, recompute=RecomputeMode.SELECTIVE),
        SendActStart(microbatch=1, stage=0, peer=1, nbytes=1024.0),
        RecvActStart(microbatch=1, stage=1, peer=0, nbytes=1024.0),
        SendGradStart(microbatch=1, stage=1, peer=0, nbytes=2048.0),
        RecvGradStart(microbatch=1, stage=0, peer=1, nbytes=2048.0),
        WaitSendAct(microbatch=1, stage=0, peer=1),
        WaitRecvAct(microbatch=1, stage=1, peer=0),
        WaitSendGrad(microbatch=1, stage=1, peer=0),
        WaitRecvGrad(microbatch=1, stage=0, peer=1),
    ]

    @pytest.mark.parametrize("instr", ALL_INSTRUCTIONS, ids=lambda i: type(i).__name__)
    def test_roundtrip(self, instr):
        assert instruction_from_dict(instruction_to_dict(instr)) == instr

    def test_dict_is_json_compatible(self):
        import json

        payloads = instructions_to_dicts(self.ALL_INSTRUCTIONS)
        restored = instructions_from_dicts(json.loads(json.dumps(payloads)))
        assert restored == self.ALL_INSTRUCTIONS

    def test_forward_dict_contains_shape(self):
        payload = instruction_to_dict(ForwardPass(microbatch=1, stage=0, shape=SHAPE))
        assert payload["shape"]["enc_seq_len"] == 128
        assert payload["recompute"] == "none"
