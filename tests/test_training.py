"""Tests for the simulated training loop and its reports."""

from __future__ import annotations

import pytest

from repro.baselines.mlm_ds import BaselineConfig, MLMDeepSpeedBaseline
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.model.memory import RecomputeMode
from repro.training.throughput import IterationRecord, TrainingReport
from repro.training.trainer import TrainerConfig, TrainingSession


def make_record(**overrides) -> IterationRecord:
    defaults = dict(
        iteration=0,
        actual_tokens=1000,
        padded_tokens=1250,
        predicted_ms=95.0,
        measured_ms=100.0,
        predicted_peak_bytes=9.5e9,
        measured_peak_bytes=10e9,
        planning_time_s=0.5,
        num_microbatches=4,
        recompute="none",
    )
    defaults.update(overrides)
    return IterationRecord(**defaults)


class TestTrainingReport:
    def test_throughput_computation(self):
        report = TrainingReport(system="x", records=[make_record(), make_record(iteration=1)])
        # 2000 tokens over 200 ms -> 10000 tokens/s.
        assert report.throughput_tokens_per_s == pytest.approx(10_000.0)

    def test_padding_efficiency(self):
        report = TrainingReport(system="x", records=[make_record()])
        assert report.padding_efficiency == pytest.approx(0.8)

    def test_prediction_errors(self):
        report = TrainingReport(system="x", records=[make_record()])
        assert report.time_prediction_error_percent() == pytest.approx(5.0)
        assert report.memory_prediction_error_percent() == pytest.approx(5.0)

    def test_planning_ratio(self):
        report = TrainingReport(system="x", records=[make_record()])
        assert report.planning_to_iteration_ratio == pytest.approx(5.0)

    def test_empty_report(self):
        report = TrainingReport(system="x")
        assert report.throughput_tokens_per_s == 0.0
        assert report.padding_efficiency == 0.0
        assert report.time_prediction_error_percent() == 0.0

    def test_summary_keys(self):
        report = TrainingReport(system="x", records=[make_record()])
        summary = report.summary()
        assert summary["system"] == "x"
        assert summary["iterations"] == 1
        assert summary["throughput_tokens_per_s"] > 0


class TestTrainingSession:
    @pytest.fixture(scope="class")
    def dynapipe_session(self, gpt_cost_model, flan_samples_gpt):
        planner = DynaPipePlanner(
            gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        return TrainingSession(
            planner,
            flan_samples_gpt,
            global_batch_tokens=16384,
            config=TrainerConfig(max_iterations=2, noise_std=0.05, seed=0, max_seq_len=1024),
            system_name="dynapipe",
        )

    def test_run_produces_records(self, dynapipe_session):
        report = dynapipe_session.run()
        assert report.system == "dynapipe"
        assert len(report.records) == 2
        assert report.throughput_tokens_per_s > 0
        assert 0 < report.padding_efficiency <= 1
        assert report.encoder_padding_efficiency > 0

    def test_predictions_close_to_measurement(self, dynapipe_session):
        """Cost-model predictions track the noisy simulated execution within a
        reasonable band.  (The paper reports ~4-11% MPE on A100-scale models;
        the tiny test model is dominated by fixed kernel overheads, which the
        power-of-two interpolation overestimates, so the band here is wider.)"""
        report = dynapipe_session.run()
        assert report.time_prediction_error_percent() < 35.0
        assert report.memory_prediction_error_percent() < 15.0

    def test_baseline_session(self, gpt_cost_model, flan_samples_gpt):
        baseline = MLMDeepSpeedBaseline(
            gpt_cost_model,
            config=BaselineConfig(max_seq_len=1024, micro_batch_size=2, recompute=RecomputeMode.FULL),
        )
        session = TrainingSession(
            baseline,
            flan_samples_gpt,
            global_batch_tokens=16384,
            config=TrainerConfig(max_iterations=2, noise_std=0.05, seed=0, max_seq_len=1024),
            system_name="mlm+ds",
        )
        report = session.run()
        assert len(report.records) == 2
        assert report.throughput_tokens_per_s > 0

    def test_dynapipe_beats_baseline_throughput(self, gpt_cost_model, flan_samples_gpt):
        """End-to-end comparison on the simulated cluster: DynaPipe's measured
        throughput exceeds the packing baseline's (paper Fig. 13/14)."""
        config = TrainerConfig(max_iterations=2, noise_std=0.05, seed=0, max_seq_len=1024)
        dynapipe = DynaPipePlanner(
            gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        baseline = MLMDeepSpeedBaseline(
            gpt_cost_model,
            config=BaselineConfig(max_seq_len=1024, micro_batch_size=2, recompute=RecomputeMode.FULL),
        )
        dyna_report = TrainingSession(
            dynapipe, flan_samples_gpt, 16384, config, "dynapipe"
        ).run()
        base_report = TrainingSession(
            baseline, flan_samples_gpt, 16384, config, "mlm+ds"
        ).run()
        assert dyna_report.throughput_tokens_per_s > base_report.throughput_tokens_per_s

    def test_fast_mode_skips_execution(self, gpt_cost_model, flan_samples_gpt):
        planner = DynaPipePlanner(
            gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        session = TrainingSession(
            planner,
            flan_samples_gpt,
            global_batch_tokens=16384,
            config=TrainerConfig(
                max_iterations=1, noise_std=0.0, seed=0, max_seq_len=1024, execute_plans=False
            ),
        )
        report = session.run()
        record = report.records[0]
        assert record.measured_ms == pytest.approx(record.predicted_ms)

    def test_noise_reproducible_with_seed(self, gpt_cost_model, flan_samples_gpt):
        def build():
            planner = DynaPipePlanner(
                gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
            )
            return TrainingSession(
                planner,
                flan_samples_gpt,
                global_batch_tokens=8192,
                config=TrainerConfig(max_iterations=1, noise_std=0.1, seed=3, max_seq_len=1024),
            )

        first = build().run().records[0].measured_ms
        second = build().run().records[0].measured_ms
        assert first == pytest.approx(second)


class TestPooledPlanning:
    def _session(self, cost_model, samples, planner_processes: int) -> TrainingSession:
        planner = DynaPipePlanner(
            cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        return TrainingSession(
            planner,
            samples,
            global_batch_tokens=8192,
            config=TrainerConfig(
                max_iterations=3,
                noise_std=0.0,
                seed=0,
                max_seq_len=1024,
                execute_plans=False,
                planner_processes=planner_processes,
            ),
        )

    def test_pooled_run_matches_inline_run(self, gpt_cost_model, flan_samples_gpt):
        """Planning through worker processes must not change a single number
        in the training report (other than planning wall-clock)."""
        inline = self._session(gpt_cost_model, flan_samples_gpt, 0).run()
        pooled = self._session(gpt_cost_model, flan_samples_gpt, 2).run()
        assert len(pooled.records) == len(inline.records) == 3
        for ours, theirs in zip(pooled.records, inline.records):
            assert ours.iteration == theirs.iteration
            assert ours.actual_tokens == theirs.actual_tokens
            assert ours.padded_tokens == theirs.padded_tokens
            assert ours.predicted_ms == theirs.predicted_ms
            assert ours.measured_ms == theirs.measured_ms
            assert ours.predicted_peak_bytes == theirs.predicted_peak_bytes
            assert ours.num_microbatches == theirs.num_microbatches
            assert ours.recompute == theirs.recompute
        assert pooled.encoder_padding_efficiency == inline.encoder_padding_efficiency

    def test_pooled_run_with_execution(self, gpt_cost_model, flan_samples_gpt):
        planner = DynaPipePlanner(
            gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        session = TrainingSession(
            planner,
            flan_samples_gpt,
            global_batch_tokens=8192,
            config=TrainerConfig(
                max_iterations=2,
                noise_std=0.05,
                seed=0,
                max_seq_len=1024,
                planner_processes=2,
            ),
        )
        report = session.run()
        assert len(report.records) == 2
        assert report.throughput_tokens_per_s > 0
        assert all(record.planning_time_s > 0 for record in report.records)


class TestResumeFromIterationBoundary:
    """``TrainerConfig.start_iteration`` — the fleet's checkpoint/resume hook."""

    def _session(self, cost_model, samples, start_iteration: int, data_parallel: int = 1):
        planner = DynaPipePlanner(
            cost_model,
            data_parallel_size=data_parallel,
            config=PlannerConfig(order_search=False, tmax_sample_count=8),
        )
        return TrainingSession(
            planner,
            samples,
            global_batch_tokens=8192,
            config=TrainerConfig(
                max_iterations=4,
                noise_std=0.05,
                seed=0,
                max_seq_len=1024,
                start_iteration=start_iteration,
            ),
        )

    @pytest.mark.parametrize("data_parallel", [1, 2])
    def test_resumed_tail_matches_uninterrupted_run(
        self, gpt_cost_model, flan_samples_gpt, data_parallel
    ):
        """A session resumed at iteration 2 reproduces iterations 2..3 of the
        uninterrupted run bit-identically (mini-batch skipping + noise-RNG
        fast-forward, one draw per replica executor per skipped iteration)."""
        full = self._session(gpt_cost_model, flan_samples_gpt, 0, data_parallel).run()
        resumed = self._session(gpt_cost_model, flan_samples_gpt, 2, data_parallel).run()
        assert [r.iteration for r in resumed.records] == [2, 3]
        for ours, theirs in zip(resumed.records, full.records[2:]):
            assert ours.iteration == theirs.iteration
            assert ours.actual_tokens == theirs.actual_tokens
            assert ours.measured_ms == theirs.measured_ms
            assert ours.predicted_ms == theirs.predicted_ms
            assert ours.measured_peak_bytes == theirs.measured_peak_bytes

    def test_resume_past_the_epoch_is_empty(self, gpt_cost_model, flan_samples_gpt):
        session = self._session(gpt_cost_model, flan_samples_gpt, 4)
        assert session.epoch_minibatches() == []
        assert session.run().records == []

    def test_negative_start_rejected(self, gpt_cost_model, flan_samples_gpt):
        with pytest.raises(ValueError, match="start_iteration"):
            self._session(gpt_cost_model, flan_samples_gpt, -1)
