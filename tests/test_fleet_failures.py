"""Failure-path tests for the fleet scheduler.

Covers the issue's checklist: device failure mid-iteration, retry
exhaustion, gang-release accounting (no device leaked), and planner-pool
failure markers surfacing as bounded job-level retries instead of hangs.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.core.recomputation import OutOfMemoryError
from repro.fleet import FleetConfig, FleetScheduler, JobSpec, JobState
from repro.parallel.config import ParallelConfig

from test_fleet_scheduler import assert_records_identical, standalone_records


@pytest.fixture(scope="module")
def planner_config():
    return PlannerConfig(order_search=False, tmax_sample_count=8)


def make_spec(pp2_cost_model, fleet_samples, planner_config, **overrides):
    defaults = dict(
        name="job",
        cost_model=pp2_cost_model,
        samples=fleet_samples,
        global_batch_tokens=4096,
        parallel=ParallelConfig(1, 2, 1),
        num_iterations=3,
        planner_config=planner_config,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class _ExplodingPlanner:
    """A planner that can never produce a plan."""

    def __init__(self, cost_model, data_parallel_size):
        self.cost_model = cost_model
        self.data_parallel_size = data_parallel_size

    def plan(self, samples, iteration=0):
        raise OutOfMemoryError("synthetic planning failure")


class TestRetryExhaustion:
    def test_job_fails_after_bounded_retries(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        record = scheduler.submit(
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                name="doomed",
                max_retries=2,
                planner_factory=lambda spec, dp: _ExplodingPlanner(spec.cost_model, dp),
            )
        )
        report = scheduler.run()
        assert report.jobs[0].state == JobState.FAILED
        assert "retries exhausted" in record.failure_reason
        # First attempt + max_retries re-admissions, every one a plan failure.
        assert len(record.attempts) == 3
        assert all(a.outcome == "plan_failure" for a in record.attempts)
        assert record.checkpoint.completed_iterations == 0
        # No device leaked by the failed attempts.
        scheduler.allocator.check_consistent()
        assert scheduler.allocator.busy_count == 0
        assert scheduler.allocator.free_count == 4

    def test_healthy_jobs_unaffected_by_a_doomed_neighbour(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        scheduler.submit(
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                name="doomed",
                max_retries=1,
                planner_factory=lambda spec, dp: _ExplodingPlanner(spec.cost_model, dp),
            )
        )
        healthy = scheduler.submit(
            make_spec(pp2_cost_model, fleet_samples, planner_config, name="healthy", seed=1)
        )
        report = scheduler.run()
        states = {job.name: job.state for job in report.jobs}
        assert states == {"doomed": JobState.FAILED, "healthy": JobState.FINISHED}
        assert_records_identical(
            healthy.checkpoint.records, standalone_records(healthy.spec, 1)
        )


class TestPoolFailureMarkers:
    def test_pool_failure_marker_becomes_job_retry(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """A worker exception mid-epoch pushes a PlanFailedError marker; the
        fleet turns it into one retry that resumes from the checkpoint and
        finishes — records bit-identical to an uninterrupted run."""
        attempts_built: list[int] = []

        def flaky_factory(spec, data_parallel):
            attempt = len(attempts_built)
            attempts_built.append(attempt)
            planner = DynaPipePlanner(
                spec.cost_model,
                data_parallel_size=data_parallel,
                config=spec.planner_config,
            )
            if attempt == 0:
                real_plan = planner.plan

                def plan(samples, iteration=0):
                    if iteration >= 1:
                        raise RuntimeError("synthetic worker crash")
                    return real_plan(samples, iteration=iteration)

                planner.plan = plan
            return planner

        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(
            topology,
            # Thread backend: the flaky closure is not picklable, and the
            # marker path is identical on both backends.
            FleetConfig(planner_processes=1, planner_backend="thread"),
        )
        spec = make_spec(
            pp2_cost_model,
            fleet_samples,
            planner_config,
            name="flaky",
            max_retries=1,
            planner_factory=flaky_factory,
        )
        record = scheduler.submit(spec)
        report = scheduler.run()
        assert report.jobs[0].state == JobState.FINISHED
        assert record.retries == 1
        assert record.attempts[0].outcome == "plan_failure"
        assert record.attempts[0].iterations_completed == 1
        assert record.attempts[1].outcome == "finished"
        assert record.attempts[1].start_iteration == 1
        # The recovered run matches an uninterrupted standalone session.
        expected = standalone_records(
            make_spec(pp2_cost_model, fleet_samples, planner_config, name="flaky"), 1
        )
        assert_records_identical(record.checkpoint.records, expected)

    def test_persistent_pool_failures_exhaust_retries(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(
            topology, FleetConfig(planner_processes=1, planner_backend="thread")
        )
        record = scheduler.submit(
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                name="doomed-pool",
                max_retries=1,
                planner_factory=lambda spec, dp: _ExplodingPlanner(spec.cost_model, dp),
            )
        )
        report = scheduler.run()
        assert report.jobs[0].state == JobState.FAILED
        assert "planning failed" in record.failure_reason
        scheduler.allocator.check_consistent()
        assert scheduler.allocator.busy_count == 0


class TestPoolLifecycle:
    """Every attempt's planning resources are released exactly once — no
    leaked pool workers after preempted, plan-failed or crashed runs."""

    @pytest.fixture()
    def pool_registry(self, monkeypatch):
        """Instrument JobExecution's private pools: record every instance
        and count its stop() calls."""
        import repro.fleet.session as session_module
        from repro.runtime.planner_pool import PlannerPool

        created = []

        class RegisteredPool(PlannerPool):
            def __post_init__(self):
                super().__post_init__()
                self.stop_calls = 0
                created.append(self)

            def stop(self):
                self.stop_calls += 1
                return super().stop()

        monkeypatch.setattr(session_module, "PlannerPool", RegisteredPool)
        return created

    def test_no_live_workers_after_injected_failures(
        self, pp2_cost_model, fleet_samples, planner_config, small_device, pool_registry
    ):
        """Per-attempt mode under the full failure mix — a device failure
        preempting a pooled attempt, mid-epoch plan failures, retries —
        leaves zero live pool workers and every started pool stopped
        exactly once."""
        attempts_built: list[int] = []

        def flaky_factory(spec, data_parallel):
            attempt = len(attempts_built)
            attempts_built.append(attempt)
            planner = DynaPipePlanner(
                spec.cost_model,
                data_parallel_size=data_parallel,
                config=spec.planner_config,
            )
            if attempt == 0:
                real_plan = planner.plan

                def plan(samples, iteration=0):
                    if iteration >= 1:
                        raise RuntimeError("synthetic worker crash")
                    return real_plan(samples, iteration=iteration)

                planner.plan = plan
            return planner

        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(
            topology, FleetConfig(planner_processes=1, planner_backend="thread")
        )
        scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="flaky", max_retries=1, planner_factory=flaky_factory,
            )
        )
        scheduler.submit(
            make_spec(pp2_cost_model, fleet_samples, planner_config, name="steady", seed=1)
        )
        scheduler.inject_device_failure(10.0, 0)
        report = scheduler.run()
        assert {job.state for job in report.jobs} == {JobState.FINISHED}
        # One pool per attempt that reached step(); each stopped exactly once.
        started = [pool for pool in pool_registry if pool.started]
        assert started, "pooled attempts should have started pools"
        assert len(started) == sum(job.attempts for job in report.jobs)
        for pool in started:
            assert pool.stop_calls == 1
            assert pool.live_workers() == 0
        assert report.planner_workers_spawned == len(started)
        scheduler.allocator.check_consistent()
        assert scheduler.allocator.busy_count == 0

    def test_unexpected_execution_error_still_tears_down_planning(
        self, pp2_cost_model, fleet_samples, planner_config, small_device, monkeypatch
    ):
        """A non-planning crash mid-run (here: execution of a fetched
        payload explodes) propagates, but the shared planning cluster and
        every running attempt's stream are still torn down — the event
        loop's failure must not leak worker threads/processes."""
        from repro.training.trainer import TrainingSession

        def boom(self, iteration, payload):
            raise RuntimeError("synthetic executor crash")

        monkeypatch.setattr(TrainingSession, "record_from_payload", boom)
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(
            topology,
            FleetConfig(
                planner_processes=1, planner_backend="thread", shared_planner_pool=True
            ),
        )
        scheduler.submit(
            make_spec(pp2_cost_model, fleet_samples, planner_config, name="crasher")
        )
        with pytest.raises(RuntimeError, match="synthetic executor crash"):
            scheduler.run()
        pool = scheduler._shared_pool
        assert pool is not None
        assert pool.live_workers() == 0
        assert pool.job_names() == []  # the running attempt's stream retired


class TestDeviceFailureAccounting:
    def test_idle_device_failure_only_shrinks_capacity(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(8, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        record = scheduler.submit(
            make_spec(pp2_cost_model, fleet_samples, planner_config, name="small")
        )
        scheduler.inject_device_failure(1.0, 7)  # idle device
        report = scheduler.run()
        assert report.jobs[0].state == JobState.FINISHED
        assert record.preemptions == 0
        assert report.failed_devices == [7]
        scheduler.allocator.check_consistent()
        assert scheduler.allocator.free_count == 7

    def test_mid_iteration_failure_discards_inflight_work(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """The iteration in flight when the device dies is not committed:
        the resumed attempt re-runs it from the checkpoint boundary."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        record = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config, name="preempted",
                num_iterations=2,
            )
        )
        # t=0.5 ms is far below any iteration time, so the failure lands
        # inside iteration 0 of the first attempt.
        scheduler.inject_device_failure(0.5, 0)
        report = scheduler.run()
        assert record.attempts[0].outcome == "device_failure"
        assert record.attempts[0].iterations_completed == 0
        assert record.attempts[1].start_iteration == 0
        assert report.jobs[0].state == JobState.FINISHED
        assert record.checkpoint.completed_iterations == 2
        # The resumed attempt *is* a fresh standalone run (boundary 0).
        assert_records_identical(
            record.checkpoint.records, standalone_records(record.spec, 1)
        )

    def test_cluster_wide_failures_fail_all_jobs_without_hanging(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        record = scheduler.submit(
            make_spec(pp2_cost_model, fleet_samples, planner_config, name="stranded")
        )
        scheduler.inject_device_failure(0.5, 0)
        scheduler.inject_device_failure(0.5, 1)
        report = scheduler.run()
        assert report.jobs[0].state == JobState.FAILED
        assert "unschedulable" in record.failure_reason
        assert report.failed_devices == [0, 1]
        scheduler.allocator.check_consistent()
        assert scheduler.allocator.alive_count == 0
        assert scheduler.allocator.busy_count == 0
