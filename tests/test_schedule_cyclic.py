"""Tests for repro.schedule.cyclic (Algorithm 1) and validation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.cyclic import ScheduleDeadlockError, cyclic_schedule
from repro.schedule.events import OpType
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.schedule.validation import ScheduleValidationError, validate_schedule


def uniform_activation(num_microbatches: int, num_stages: int, size: float = 1.0):
    return [[size] * num_stages for _ in range(num_microbatches)]


class TestCyclicSchedule:
    def test_all_ops_present(self):
        schedule = cyclic_schedule(4, uniform_activation(6, 4))
        validate_schedule(schedule)
        assert schedule.total_ops() == 2 * 6 * 4

    def test_unlimited_memory_injects_all_microbatches_first(self):
        """Without memory limits, the first stage runs every forward before
        any backward reaches it (maximum safety stock, Fig. 11b)."""
        m = 5
        schedule = cyclic_schedule(3, uniform_activation(m, 3))
        first_stage_types = [op.op_type for op in schedule.stage(0).ops[:m]]
        assert all(t is OpType.FORWARD for t in first_stage_types)

    def test_memory_limit_delays_injection(self):
        """With a tight limit the first stage interleaves backwards before it
        can inject all forwards (Fig. 11c)."""
        m, c = 8, 4
        limited = cyclic_schedule(
            c, uniform_activation(m, c), memory_limits=[2.5] * c
        )
        validate_schedule(limited)
        first_stage = limited.stage(0).ops
        first_backward = next(
            i for i, op in enumerate(first_stage) if op.op_type is OpType.BACKWARD
        )
        assert first_backward < m  # a backward appears before all m forwards

    def test_memory_limit_respected_logically(self):
        """Replaying the first stage's op order never exceeds the limit."""
        m, c = 10, 4
        limit = 3.0
        schedule = cyclic_schedule(c, uniform_activation(m, c), memory_limits=[limit] * c)
        for stage_schedule in schedule.stages:
            live = 0.0
            for op in stage_schedule.ops:
                if op.op_type is OpType.FORWARD:
                    live += 1.0
                    assert live <= limit + 1e-9
                else:
                    live -= 1.0

    def test_injection_order_respected(self):
        order = [3, 1, 0, 2]
        schedule = cyclic_schedule(2, uniform_activation(4, 2), injection_order=order)
        assert schedule.injection_order() == order

    def test_single_microbatch_too_large_deadlocks(self):
        with pytest.raises(ScheduleDeadlockError):
            cyclic_schedule(2, [[10.0, 10.0]], memory_limits=[5.0, 5.0])

    def test_invalid_injection_order(self):
        with pytest.raises(ValueError):
            cyclic_schedule(2, uniform_activation(3, 2), injection_order=[0, 1])

    def test_mismatched_activation_matrix(self):
        with pytest.raises(ValueError):
            cyclic_schedule(3, [[1.0, 1.0]])

    def test_mismatched_memory_limits(self):
        with pytest.raises(ValueError):
            cyclic_schedule(2, uniform_activation(2, 2), memory_limits=[1.0])

    def test_heterogeneous_activations(self):
        """Micro-batches with very different footprints still schedule."""
        activation = [[0.5, 0.5], [4.0, 4.0], [0.5, 0.5], [4.0, 4.0]]
        schedule = cyclic_schedule(2, activation, memory_limits=[5.0, 5.0])
        validate_schedule(schedule)

    @given(
        stages=st.integers(1, 6),
        microbatches=st.integers(1, 12),
        limit_factor=st.floats(min_value=1.0, max_value=8.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_produces_valid_schedules(self, stages, microbatches, limit_factor):
        """Property: Alg. 1 always emits a complete, dependency-consistent
        schedule whenever a single micro-batch fits in memory."""
        activation = uniform_activation(microbatches, stages)
        schedule = cyclic_schedule(
            stages, activation, memory_limits=[limit_factor] * stages
        )
        validate_schedule(schedule)
        assert schedule.num_microbatches == microbatches


class TestValidation:
    def test_detects_missing_backward(self):
        schedule = one_f_one_b_schedule(2, 2)
        schedule.stage(0).ops.pop()  # drop the last backward
        with pytest.raises(ScheduleValidationError):
            validate_schedule(schedule)

    def test_detects_backward_before_forward(self):
        schedule = one_f_one_b_schedule(1, 2)
        schedule.stage(0).ops.reverse()
        with pytest.raises(ScheduleValidationError):
            validate_schedule(schedule)

    def test_detects_cross_stage_deadlock(self):
        """A per-stage-consistent order can still deadlock across stages:
        stage 1 refuses to forward micro-batch 1 before seeing micro-batch 0's
        backward, while stage 2 refuses to run anything before micro-batch 1's
        forward — a circular wait the validator must reject."""
        from repro.schedule.events import PipelineSchedule, StageSchedule

        def stage_with(stage: int, ops: list[tuple[int, OpType]]) -> StageSchedule:
            schedule = StageSchedule(stage=stage)
            for mb, op_type in ops:
                schedule.append(mb, op_type)
            return schedule

        deadlocked = PipelineSchedule(
            stages=[
                stage_with(0, [(0, OpType.FORWARD), (1, OpType.FORWARD), (0, OpType.BACKWARD), (1, OpType.BACKWARD)]),
                stage_with(1, [(0, OpType.FORWARD), (0, OpType.BACKWARD), (1, OpType.FORWARD), (1, OpType.BACKWARD)]),
                stage_with(2, [(1, OpType.FORWARD), (0, OpType.FORWARD), (0, OpType.BACKWARD), (1, OpType.BACKWARD)]),
            ],
            num_microbatches=2,
        )
        with pytest.raises(ScheduleValidationError, match="deadlock"):
            validate_schedule(deadlocked)

    def test_reordered_but_consistent_schedule_passes(self):
        """Swapping micro-batch order consistently across stages stays valid."""
        schedule = cyclic_schedule(3, uniform_activation(4, 3), injection_order=[2, 0, 3, 1])
        validate_schedule(schedule)

    def test_valid_1f1b_passes(self):
        validate_schedule(one_f_one_b_schedule(4, 8))
