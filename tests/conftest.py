"""Shared fixtures for the test suite.

Tests use deliberately tiny model configurations so that profiling and
planning stay fast; the Table-1 configurations are exercised by dedicated
tests and by the benchmark harnesses.
"""

from __future__ import annotations

import pytest

from repro.cluster.device import DeviceSpec
from repro.costmodel.cost_model import CostModel
from repro.data.flan import SyntheticFlanDataset
from repro.data.truncation import truncate_samples
from repro.model.config import ModelArch, ModelConfig


@pytest.fixture(scope="session")
def tiny_gpt_config() -> ModelConfig:
    """A small decoder-only model used throughout the tests."""
    return ModelConfig(
        name="gpt-tiny",
        arch=ModelArch.GPT,
        num_layers=8,
        hidden_size=512,
        num_heads=8,
        kv_channels=64,
        ffn_hidden_size=2048,
        vocab_size=32000,
    )


@pytest.fixture(scope="session")
def tiny_t5_config() -> ModelConfig:
    """A small encoder-decoder model used throughout the tests."""
    return ModelConfig(
        name="t5-tiny",
        arch=ModelArch.T5,
        num_layers=4,
        hidden_size=512,
        num_heads=8,
        kv_channels=64,
        ffn_hidden_size=2048,
        vocab_size=32000,
    )


@pytest.fixture(scope="session")
def small_device() -> DeviceSpec:
    """A device with a small memory capacity so memory limits bind in tests."""
    return DeviceSpec(
        name="test-gpu-8GB",
        peak_flops=100e12,
        memory_bandwidth=1e12,
        memory_capacity=8 * 1024**3,
    )


@pytest.fixture(scope="session")
def gpt_cost_model(tiny_gpt_config, small_device) -> CostModel:
    """Cost model of the tiny GPT on a 4-stage pipeline."""
    return CostModel(
        tiny_gpt_config,
        num_stages=4,
        device_spec=small_device,
        max_profile_batch_size=32,
        max_profile_seq_len=2048,
    )


@pytest.fixture(scope="session")
def t5_cost_model(tiny_t5_config, small_device) -> CostModel:
    """Cost model of the tiny T5 on a 4-stage pipeline."""
    return CostModel(
        tiny_t5_config,
        num_stages=4,
        device_spec=small_device,
        max_profile_batch_size=32,
        max_profile_seq_len=2048,
    )


@pytest.fixture(scope="session")
def flan_samples():
    """A small synthetic multi-task sample set truncated to 1024 tokens."""
    dataset = SyntheticFlanDataset(num_samples=600, seed=7)
    return truncate_samples(dataset.samples, 1024, decoder_only=False)


@pytest.fixture(scope="session")
def flan_samples_gpt():
    """The same sample set truncated for decoder-only (concatenated) use."""
    dataset = SyntheticFlanDataset(num_samples=600, seed=7)
    return truncate_samples(dataset.samples, 1024, decoder_only=True)


@pytest.fixture(scope="session")
def pp2_cost_model(tiny_gpt_config, small_device) -> CostModel:
    """Cost model of the tiny GPT on a 2-stage pipeline (small fleet gangs)."""
    return CostModel(
        tiny_gpt_config,
        num_stages=2,
        device_spec=small_device,
        max_profile_batch_size=32,
        max_profile_seq_len=1024,
    )


@pytest.fixture(scope="session")
def fleet_samples():
    """A short decoder-only sample set for fast fleet iterations."""
    dataset = SyntheticFlanDataset(num_samples=400, seed=7)
    return truncate_samples(dataset.samples, 512, decoder_only=True)
