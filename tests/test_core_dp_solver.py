"""Tests for the dynamic-programming micro-batch partitioner (paper §4)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core.dp_solver import PartitionError, WindowCostTable, solve_partition


def window_time_from_lengths(lengths, cost_per_token: float = 1.0):
    """Window time model: padded tokens of the window (batch * max length)."""

    def time_fn(start: int, end: int) -> float:
        window = lengths[start:end]
        return cost_per_token * len(window) * max(window)

    return time_fn


def brute_force_best(lengths, num_stages, sum_weight=1.0):
    """Exhaustive search over all contiguous partitions (small N only)."""
    n = len(lengths)
    time_fn = window_time_from_lengths(lengths)
    best = None
    for split_mask in itertools.product([0, 1], repeat=n - 1):
        boundaries = [0] + [i + 1 for i, bit in enumerate(split_mask) if bit] + [n]
        times = [time_fn(a, b) for a, b in zip(boundaries, boundaries[1:])]
        objective = (num_stages - 1) * max(times) + sum_weight * sum(times)
        if best is None or objective < best:
            best = objective
    return best


class TestBasicPartitioning:
    def test_uniform_lengths_grouped_together(self):
        """With identical samples and a per-micro-batch launch overhead, the
        optimum groups several samples per micro-batch rather than one each
        (fewer micro-batches amortise the overhead)."""
        lengths = [100] * 16

        def time_with_overhead(start: int, end: int) -> float:
            return 50.0 + window_time_from_lengths(lengths)(start, end)

        solution = solve_partition(16, num_stages=4, time_fn=time_with_overhead)
        assert solution.num_microbatches < 16

    def test_single_sample(self):
        solution = solve_partition(1, 4, time_fn=window_time_from_lengths([100]))
        assert solution.boundaries == [(0, 1)]
        assert solution.num_microbatches == 1

    def test_boundaries_cover_all_samples_contiguously(self):
        lengths = [10, 20, 500, 30, 40, 600, 50]
        solution = solve_partition(
            len(lengths), 3, time_fn=window_time_from_lengths(lengths)
        )
        expected_start = 0
        for start, end in solution.boundaries:
            assert start == expected_start
            assert end > start
            expected_start = end
        assert expected_start == len(lengths)

    def test_times_match_time_fn(self):
        lengths = [10, 20, 500, 30]
        time_fn = window_time_from_lengths(lengths)
        solution = solve_partition(4, 3, time_fn=time_fn)
        for (start, end), recorded in zip(solution.boundaries, solution.times):
            assert recorded == pytest.approx(time_fn(start, end))

    def test_objective_consistent_with_partition(self):
        lengths = [10, 20, 500, 30, 40]
        solution = solve_partition(5, 4, time_fn=window_time_from_lengths(lengths))
        expected = 3 * solution.max_time + solution.total_time
        assert solution.objective == pytest.approx(expected)

    def test_metadata_populated(self):
        solution = solve_partition(6, 2, time_fn=window_time_from_lengths([10] * 6))
        assert solution.candidates_evaluated >= 1
        assert solution.cost_evaluations > 0
        assert solution.tmax_used >= solution.max_time - 1e-9


class TestOptimality:
    @pytest.mark.parametrize(
        "lengths",
        [
            [100, 100, 100, 100],
            [10, 20, 1000, 30],
            [500, 20, 20, 20, 500],
            [64, 64, 256, 256, 1024, 16],
            [1, 1, 1, 1000, 1, 1, 1],
        ],
    )
    @pytest.mark.parametrize("num_stages", [1, 2, 4])
    def test_matches_brute_force(self, lengths, num_stages):
        """With enough t_max candidates the DP matches exhaustive search."""
        solution = solve_partition(
            len(lengths),
            num_stages,
            time_fn=window_time_from_lengths(lengths),
            tmax_sample_count=256,
        )
        assert solution.objective == pytest.approx(
            brute_force_best(lengths, num_stages), rel=1e-6
        )

    def test_sum_weight_changes_optimum(self):
        """A small Σ-weight (many data-parallel replicas) favours more, smaller
        micro-batches because the max-term dominates."""
        lengths = [100] * 12
        heavy_sum = solve_partition(
            12, 8, time_fn=window_time_from_lengths(lengths), sum_weight=1.0
        )
        light_sum = solve_partition(
            12, 8, time_fn=window_time_from_lengths(lengths), sum_weight=1.0 / 8
        )
        assert light_sum.num_microbatches >= heavy_sum.num_microbatches

    def test_more_stages_prefer_smaller_max(self):
        """With more stages the (c-1)*max term grows, so the largest
        micro-batch shrinks (or stays the same)."""
        lengths = [50, 60, 70, 80, 500, 90, 100, 110]
        few = solve_partition(8, 2, time_fn=window_time_from_lengths(lengths))
        many = solve_partition(8, 16, time_fn=window_time_from_lengths(lengths))
        assert many.max_time <= few.max_time + 1e-9


class TestConstraints:
    def test_memory_limit_respected(self):
        lengths = [100] * 10

        def feasible(start: int, end: int) -> bool:
            return (end - start) <= 3  # at most 3 samples per micro-batch

        solution = solve_partition(
            10, 2, time_fn=window_time_from_lengths(lengths), feasible_fn=feasible
        )
        assert all(end - start <= 3 for start, end in solution.boundaries)

    def test_max_microbatch_size_respected(self):
        lengths = [10] * 20
        solution = solve_partition(
            20, 1, time_fn=window_time_from_lengths(lengths), max_microbatch_size=4
        )
        assert all(end - start <= 4 for start, end in solution.boundaries)

    def test_infeasible_singleton_raises(self):
        with pytest.raises(PartitionError):
            solve_partition(
                3,
                2,
                time_fn=window_time_from_lengths([10, 10, 10]),
                feasible_fn=lambda start, end: False,
            )

    def test_invalid_arguments(self):
        time_fn = window_time_from_lengths([1])
        with pytest.raises(ValueError):
            solve_partition(0, 1, time_fn=time_fn)
        with pytest.raises(ValueError):
            solve_partition(1, 0, time_fn=time_fn)
        with pytest.raises(ValueError):
            solve_partition(1, 1, time_fn=time_fn, sum_weight=0.0)
        with pytest.raises(ValueError):
            solve_partition(1, 1, time_fn=time_fn, max_microbatch_size=0)


def table_from_fns(num_samples, max_window, time_fn, feasible_fn=None):
    """Dense WindowCostTable built by evaluating the scalar callbacks."""
    window = min(max_window, num_samples)
    times = np.full((num_samples, window), np.inf)
    feasible = np.zeros((num_samples, window), dtype=bool)
    for start in range(num_samples):
        for size in range(1, min(window, num_samples - start) + 1):
            times[start, size - 1] = time_fn(start, start + size)
            feasible[start, size - 1] = (
                feasible_fn(start, start + size) if feasible_fn else True
            )
    return WindowCostTable(
        times=times, feasible=feasible, unique_shape_evaluations=num_samples * window
    )


class TestTmaxSampleGuard:
    def test_single_candidate_count(self):
        """tmax_sample_count=1 must not divide by zero when thinning (the
        probe set is larger than one candidate for diverse lengths)."""
        lengths = [10, 25, 40, 700, 90, 1000, 15, 300, 55, 80, 120, 650]
        solution = solve_partition(
            len(lengths),
            4,
            time_fn=window_time_from_lengths(lengths),
            tmax_sample_count=1,
        )
        assert solution.candidates_evaluated == 1
        assert solution.boundaries[0][0] == 0
        assert solution.boundaries[-1][1] == len(lengths)

    def test_single_candidate_count_table_path(self):
        lengths = [10, 25, 40, 700, 90, 1000, 15, 300, 55, 80, 120, 650]
        table = table_from_fns(len(lengths), 512, window_time_from_lengths(lengths))
        solution = solve_partition(
            len(lengths), 4, cost_table=table, tmax_sample_count=1
        )
        assert solution.candidates_evaluated == 1
        assert solution.boundaries[-1][1] == len(lengths)


class TestVectorizedTablePath:
    """The dense-table fast path must reproduce the scalar path exactly."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("num_stages", [1, 4])
    def test_matches_scalar_on_seeded_inputs(self, seed, num_stages):
        rng = np.random.default_rng(seed)
        lengths = [int(x) for x in rng.integers(1, 2048, size=int(rng.integers(2, 40)))]
        lengths.sort()
        time_fn = window_time_from_lengths(lengths)

        def feasible_fn(start, end):
            # Monotone in window size (mirrors the activation-memory limit).
            return (end - start) * max(lengths[start:end]) <= 4096

        scalar = solve_partition(
            len(lengths), num_stages, time_fn=time_fn, feasible_fn=feasible_fn,
            tmax_sample_count=16,
        )
        table = table_from_fns(len(lengths), 512, time_fn, feasible_fn)
        vectorized = solve_partition(
            len(lengths), num_stages, cost_table=table, tmax_sample_count=16
        )
        assert vectorized.boundaries == scalar.boundaries
        assert vectorized.times == scalar.times
        assert vectorized.objective == scalar.objective
        assert vectorized.tmax_used == scalar.tmax_used
        assert vectorized.candidates_evaluated == scalar.candidates_evaluated

    def test_max_microbatch_size_respected(self):
        lengths = [10] * 20
        table = table_from_fns(20, 4, window_time_from_lengths(lengths))
        solution = solve_partition(
            20, 1, cost_table=table, max_microbatch_size=4
        )
        assert all(end - start <= 4 for start, end in solution.boundaries)

    def test_infeasible_singleton_raises(self):
        table = table_from_fns(
            3, 512, window_time_from_lengths([10, 10, 10]), lambda s, e: False
        )
        with pytest.raises(PartitionError):
            solve_partition(3, 2, cost_table=table)

    def test_table_too_small_rejected(self):
        table = table_from_fns(8, 4, window_time_from_lengths([10] * 8))
        with pytest.raises(ValueError):
            solve_partition(8, 2, cost_table=table, max_microbatch_size=8)

    def test_missing_time_source_rejected(self):
        with pytest.raises(ValueError):
            solve_partition(4, 2)


class TestProperties:
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=24),
        num_stages=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_always_valid(self, lengths, num_stages):
        """Property: the DP always returns a contiguous cover of the samples
        whose objective is at least as good as the two trivial partitions
        (all singletons; one big micro-batch)."""
        time_fn = window_time_from_lengths(lengths)
        solution = solve_partition(
            len(lengths), num_stages, time_fn=time_fn, tmax_sample_count=64
        )
        # Contiguous cover.
        assert solution.boundaries[0][0] == 0
        assert solution.boundaries[-1][1] == len(lengths)
        for (a, b), (c, d) in zip(solution.boundaries, solution.boundaries[1:]):
            assert b == c
        # No worse than the trivial partitions.
        singleton_times = [time_fn(i, i + 1) for i in range(len(lengths))]
        singleton_obj = (num_stages - 1) * max(singleton_times) + sum(singleton_times)
        whole_time = time_fn(0, len(lengths))
        whole_obj = (num_stages - 1) * whole_time + whole_time
        assert solution.objective <= singleton_obj + 1e-6
        assert solution.objective <= whole_obj + 1e-6
