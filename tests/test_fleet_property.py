"""Property-based chaos tests: random seeded fault plans never break invariants.

For arbitrary :func:`repro.fleet.random_fault_plan` seeds, a fleet run
must (1) bring every job to a terminal state, (2) leak no devices, and
(3) keep the allocator's 4-way device partition (free / busy / failed /
absent) exact at every event boundary — checked from the ``on_event``
hook, not just at the end of the run.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.core.planner import PlannerConfig
from repro.fleet import (
    FaultInjector,
    FaultPlan,
    FleetConfig,
    FleetScheduler,
    JobSpec,
    JobState,
    random_fault_plan,
)
from repro.parallel.config import ParallelConfig


@pytest.fixture(scope="module")
def planner_config():
    return PlannerConfig(order_search=False, tmax_sample_count=8)


def fleet_specs(pp2_cost_model, fleet_samples, planner_config):
    return [
        JobSpec(
            name=f"job{i}",
            cost_model=pp2_cost_model,
            samples=fleet_samples,
            global_batch_tokens=4096,
            parallel=ParallelConfig(1, 2, 1),
            num_iterations=2,
            planner_config=planner_config,
            seed=i,
            max_retries=4,
        )
        for i in range(3)
    ]


@settings(
    max_examples=6,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_random_fault_plans_preserve_fleet_invariants(
    seed, pp2_cost_model, fleet_samples, planner_config, small_device
):
    topology = ClusterTopology.for_num_gpus(4, gpus_per_node=2, device_spec=small_device)
    plan = random_fault_plan(
        topology,
        seed=seed,
        duration_ms=60.0,
        storm_rate_per_s=50.0,
        rack_outage_probability=0.5,
        planner_fault_probability=0.25,
    )

    boundaries = {"seen": 0}

    def invariant(scheduler: FleetScheduler) -> None:
        boundaries["seen"] += 1
        allocator = scheduler.allocator
        allocator.check_consistent()
        # The 4-way partition is exact at every single event boundary.
        partition = (
            allocator.free_count
            + allocator.busy_count
            + len(allocator.failed_devices)
            + len(allocator.absent_devices)
        )
        assert partition == allocator.num_devices

    scheduler = FleetScheduler(topology, FleetConfig(on_event=invariant))
    records = [
        scheduler.submit(spec)
        for spec in fleet_specs(pp2_cost_model, fleet_samples, planner_config)
    ]
    FaultInjector(plan).apply(scheduler)
    report = scheduler.run()

    assert boundaries["seen"] > 0
    # (1) Every job reached a terminal state — nothing queued or running.
    for record in records:
        assert record.state in (JobState.FINISHED, JobState.FAILED), record.spec.name
    assert report.finished_jobs + report.failed_jobs == len(records)
    assert not scheduler._pending
    assert not scheduler._running
    # (2) Zero leaked devices once the fleet drains.
    allocator = scheduler.allocator
    allocator.check_consistent()
    assert allocator.busy_count == 0
    assert allocator.free_count == allocator.alive_count
    # A finished job always trained exactly its target iterations.
    for record in records:
        if record.state == JobState.FINISHED:
            assert record.checkpoint.completed_iterations == record.spec.num_iterations


@settings(max_examples=25, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_random_fault_plans_round_trip_through_json(seed, small_device):
    topology = ClusterTopology.for_num_gpus(8, gpus_per_node=4, device_spec=small_device)
    plan = random_fault_plan(topology, seed=seed, planner_fault_probability=0.5)
    rebuilt = FaultPlan.from_dicts(plan.to_dicts(), seed=plan.seed)
    assert rebuilt.events == plan.events
    for event in plan.events:
        assert event.time_ms >= 0.0
        if event.device is not None:
            assert 0 <= event.device < topology.num_gpus
        if event.node is not None:
            assert 0 <= event.node < topology.num_nodes
