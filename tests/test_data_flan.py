"""Tests for repro.data.flan (synthetic FLANv2-like mixture)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.flan import FLAN_TASK_SPECS, SyntheticFlanDataset


class TestTaskMixture:
    def test_mixture_covers_short_and_long_tasks(self):
        means = [spec.mean_input_tokens for spec in FLAN_TASK_SPECS]
        assert min(means) < 60  # classification-style tasks
        assert max(means) > 2000  # long-document tasks

    def test_summarization_task_matches_paper_statistics(self):
        cnn = next(s for s in FLAN_TASK_SPECS if "cnn_dailymail" in s.name)
        assert cnn.mean_input_tokens == pytest.approx(977.7)

    def test_mnli_matches_paper_statistics(self):
        mnli = next(s for s in FLAN_TASK_SPECS if "mnli" in s.name)
        assert mnli.mean_input_tokens == pytest.approx(51.6)


class TestSyntheticFlanDataset:
    def test_len_and_iteration(self):
        dataset = SyntheticFlanDataset(num_samples=500, seed=0)
        assert len(dataset) == 500
        assert len(list(dataset)) == 500
        assert dataset[0].input_tokens >= 1

    def test_reproducible_with_seed(self):
        a = SyntheticFlanDataset(num_samples=200, seed=42)
        b = SyntheticFlanDataset(num_samples=200, seed=42)
        assert a.samples == b.samples

    def test_different_seeds_differ(self):
        a = SyntheticFlanDataset(num_samples=200, seed=1)
        b = SyntheticFlanDataset(num_samples=200, seed=2)
        assert a.samples != b.samples

    def test_heavy_tailed_length_distribution(self):
        """Like FLANv2 (Fig. 1b): the p99 input length is far above the median."""
        dataset = SyntheticFlanDataset(num_samples=5000, seed=0)
        stats = dataset.input_length_statistics()
        assert stats["p99"] > 10 * stats["p50"]
        assert stats["max"] > stats["p95"]

    def test_task_histogram_covers_most_tasks(self):
        dataset = SyntheticFlanDataset(num_samples=5000, seed=0)
        histogram = dataset.task_histogram()
        assert len(histogram) >= len(FLAN_TASK_SPECS) - 1
        assert sum(histogram.values()) == 5000

    def test_short_tasks_more_frequent_than_long(self):
        dataset = SyntheticFlanDataset(num_samples=5000, seed=0)
        histogram = dataset.task_histogram()
        short = histogram.get("mnli_entailment", 0) + histogram.get("cola_grammaticality", 0)
        long = histogram.get("scientific_summarization", 0) + histogram.get("long_document_qa", 0)
        assert short > long

    def test_total_tokens_positive(self):
        dataset = SyntheticFlanDataset(num_samples=100, seed=0)
        assert dataset.total_tokens() == sum(s.total_tokens for s in dataset)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SyntheticFlanDataset(num_samples=0)
        with pytest.raises(ValueError):
            SyntheticFlanDataset(num_samples=10, task_specs=[])

    def test_custom_task_specs(self):
        from repro.data.tasks import TaskSpec

        dataset = SyntheticFlanDataset(
            num_samples=50, task_specs=[TaskSpec("only", 100.0, 10.0)], seed=0
        )
        assert set(dataset.task_histogram()) == {"only"}

    def test_mean_input_length_within_mixture_range(self):
        dataset = SyntheticFlanDataset(num_samples=5000, seed=3)
        stats = dataset.input_length_statistics()
        weighted_mean = np.average(
            [s.mean_input_tokens for s in FLAN_TASK_SPECS],
            weights=[s.weight for s in FLAN_TASK_SPECS],
        )
        assert stats["mean"] == pytest.approx(weighted_mean, rel=0.25)
