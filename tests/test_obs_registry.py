"""Unit tests for the telemetry substrate: registry, spans, events, simtrace."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.events import EventBus
from repro.obs.registry import (
    MetricsRegistry,
    aggregate_snapshots,
    merge_snapshot,
    metric_key,
)
from repro.obs.simtrace import SimTraceCollector
from repro.obs.spans import SpanRecorder, span


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


# --------------------------------------------------------------------- registry


class TestRegistry:
    def test_metric_key_labels_sorted(self):
        assert metric_key("x") == "x"
        assert metric_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"

    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["mean"] == 2.0
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 3.0

    def test_labelled_metrics_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("c", job="a").inc()
        registry.counter("c", job="b").inc(2)
        counters = registry.snapshot()["counters"]
        assert counters["c{job=a}"] == 1
        assert counters["c{job=b}"] == 2

    def test_counter_dict_is_live_and_namespaced(self):
        registry = MetricsRegistry()
        stats = registry.counter_dict("ns", ("a", "b"))
        stats["a"] += 3
        # Idempotent re-registration returns the same dict.
        again = registry.counter_dict("ns", ("a", "b", "c"))
        assert again is stats
        assert stats["c"] == 0
        counters = registry.snapshot()["counters"]
        assert counters["ns.a"] == 3
        assert counters["ns.b"] == 0

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        stats = registry.counter_dict("ns", ("a",))
        counter.inc(7)
        stats["a"] += 7
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert counter.value == 0
        assert stats["a"] == 0
        assert registry.snapshot()["histograms"]["h"]["count"] == 0
        # The registered objects stay live after reset.
        counter.inc()
        stats["a"] += 1
        counters = registry.snapshot()["counters"]
        assert counters["c"] == 1 and counters["ns.a"] == 1

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(2.0)
        json.dumps(registry.snapshot())

    def test_merge_and_aggregate_snapshots(self):
        a = {
            "counters": {"x": 2, "y": 1},
            "gauges": {"g": 1.0},
            "histograms": {"h": {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0}},
        }
        b = {
            "counters": {"x": 3},
            "gauges": {"g": 5.0},
            "histograms": {"h": {"count": 1, "sum": 5.0, "min": 5.0, "max": 5.0, "mean": 5.0}},
        }
        combined = aggregate_snapshots([a, b])
        assert combined["counters"] == {"x": 5, "y": 1}
        assert combined["gauges"]["g"] == 5.0  # last-writer-wins
        hist = combined["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["sum"] == 9.0
        assert hist["min"] == 1.0 and hist["max"] == 5.0
        assert hist["mean"] == 3.0

    def test_merge_snapshot_empty_histogram(self):
        empty = {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        full = {"count": 1, "sum": 2.0, "min": 2.0, "max": 2.0, "mean": 2.0}
        into = merge_snapshot({}, {"histograms": {"h": empty}})
        merge_snapshot(into, {"histograms": {"h": full}})
        assert into["histograms"]["h"]["count"] == 1
        merge_snapshot(into, {"histograms": {"h": empty}})
        assert into["histograms"]["h"]["count"] == 1


# ------------------------------------------------------------------------ spans


class TestSpans:
    def test_disabled_span_is_noop_singleton(self):
        assert not obs.enabled()
        first = span("plan")
        second = span("execute", job="x")
        assert first is second  # shared singleton: no allocation when off
        with first:
            pass
        assert obs.RECORDER.spans() == []

    def test_nesting_and_attrs(self):
        obs.enable()
        with span("outer", job="j"):
            with span("inner", iteration=3):
                pass
        records = obs.RECORDER.spans()
        assert [r.name for r in records] == ["inner", "outer"]
        inner, outer = records
        assert inner.depth == 1 and outer.depth == 0
        assert inner.parent_id == outer.span_id
        assert inner.attrs == {"iteration": 3}
        assert outer.attrs == {"job": "j"}
        assert outer.start_s <= inner.start_s <= inner.end_s <= outer.end_s

    def test_structure_is_timestamp_free(self):
        obs.enable()
        with span("a", k=1):
            pass
        assert obs.RECORDER.structure() == [(0, "a", (("k", 1),))]

    def test_extend_dicts_rebases_ids(self):
        recorder = SpanRecorder()
        shipped = [
            {"span_id": 100, "parent_id": None, "name": "plan", "start_s": 1.0,
             "end_s": 2.0, "depth": 0, "attrs": {}, "origin": ""},
            {"span_id": 101, "parent_id": 100, "name": "order_search", "start_s": 1.2,
             "end_s": 1.8, "depth": 1, "attrs": {}, "origin": ""},
        ]
        recorder.extend_dicts(shipped, origin="planner-0")
        records = recorder.spans()
        assert len(records) == 2
        parent, child = records
        assert child.parent_id == parent.span_id
        assert {r.origin for r in records} == {"planner-0"}
        # Ids were re-based into the local sequence, not copied verbatim.
        assert parent.span_id < 100

    def test_drain_dicts_clears_and_stamps_origin(self):
        obs.enable()
        with span("plan"):
            pass
        drained = obs.RECORDER.drain_dicts(origin="w0")
        assert [d["name"] for d in drained] == ["plan"]
        assert drained[0]["origin"] == "w0"
        assert obs.RECORDER.spans() == []

    def test_ring_buffer_bounded(self):
        recorder = SpanRecorder(capacity=4)
        for index in range(10):
            recorder.extend_dicts(
                [{"span_id": index, "parent_id": None, "name": f"s{index}",
                  "start_s": 0.0, "end_s": 1.0, "depth": 0, "attrs": {}, "origin": ""}]
            )
        assert len(recorder.spans()) == 4
        assert recorder.spans()[-1].name == "s9"

    def test_jsonl_export(self, tmp_path):
        obs.enable()
        with span("plan", iteration=1):
            pass
        path = obs.spans_to_jsonl(tmp_path / "spans.jsonl", obs.RECORDER.spans())
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "plan"


# ------------------------------------------------------------------------ events


class TestEventBus:
    def test_publish_gated_on_flag(self):
        obs.publish("job_submitted", time_ms=0.0, job="a")
        assert obs.events() == []
        obs.enable()
        obs.publish("job_submitted", time_ms=0.0, job="a")
        assert [e.kind for e in obs.events()] == ["job_submitted"]

    def test_kind_filter_and_fields(self):
        obs.enable()
        obs.publish("a", time_ms=1.0, x=1)
        obs.publish("b", time_ms=2.0)
        assert [e.kind for e in obs.events("a")] == ["a"]
        event = obs.events("a")[0]
        assert event.time_ms == 1.0 and event.fields == {"x": 1}
        assert event.to_dict()["x"] == 1

    def test_subscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish("k", time_ms=0.0)
        assert [e.kind for e in seen] == ["k"]
        bus.unsubscribe(seen.append)
        bus.publish("k2", time_ms=0.0)
        assert len(seen) == 1

    def test_structure_and_jsonl(self, tmp_path):
        bus = EventBus()
        bus.publish("k", time_ms=3.0, b=2, a=1)
        assert bus.structure() == [("k", 3.0, (("a", 1), ("b", 2)))]
        path = bus.export_jsonl(tmp_path / "events.jsonl")
        assert json.loads(path.read_text().strip())["kind"] == "k"

    def test_ring_buffer_bounded(self):
        bus = EventBus(capacity=3)
        for index in range(6):
            bus.publish(f"k{index}", time_ms=float(index))
        assert [e.kind for e in bus.events()] == ["k3", "k4", "k5"]


# ---------------------------------------------------------------------- simtrace


class _FakeOp:
    def __init__(self, device, start_ms, end_ms):
        self.device = device
        self.name = "F0"
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.category = "compute"
        self.microbatch = 0


class TestSimTraceCollector:
    def test_add_and_query(self):
        collector = SimTraceCollector()
        collector.add("job-a", 0, start_ms=10.0, replica_traces=[[_FakeOp(0, 0.0, 1.0)]])
        collector.add("job-b", 0, start_ms=0.0, replica_traces=[[_FakeOp(0, 0.0, 1.0)]])
        assert collector.jobs() == ["job-a", "job-b"]
        traces = collector.traces("job-a")
        assert len(traces) == 1
        assert traces[0].start_ms == 10.0
        assert len(traces[0].replicas[0]) == 1

    def test_duck_types_execution_trace(self):
        class FakeTrace:
            events = [_FakeOp(0, 0.0, 1.0), _FakeOp(1, 1.0, 2.0)]

        collector = SimTraceCollector()
        collector.add("j", 0, start_ms=0.0, replica_traces=[FakeTrace()])
        assert len(collector.traces("j")[0].replicas[0]) == 2

    def test_bounded_with_drop_accounting(self):
        collector = SimTraceCollector(max_events=3)
        collector.add("j", 0, start_ms=0.0, replica_traces=[[_FakeOp(0, 0.0, 1.0)] * 2])
        collector.add("j", 1, start_ms=1.0, replica_traces=[[_FakeOp(0, 0.0, 1.0)] * 2])
        assert len(collector.traces("j")) == 1  # second iteration dropped whole
        assert collector.dropped_events == 2
        collector.clear()
        assert collector.dropped_events == 0 and collector.traces() == []


# -------------------------------------------------------------------- state flag


class TestStateFlag:
    def test_enable_disable_and_context(self):
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()
        obs.disable()
        with obs.telemetry():
            assert obs.enabled()
        assert not obs.enabled()
        obs.enable()
        with obs.telemetry(False):
            assert not obs.enabled()
        assert obs.enabled()
