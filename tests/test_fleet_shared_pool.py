"""Fleet-wide shared planner pool ("planning cluster") tests.

The acceptance bar: a fleet run with ``shared_planner_pool=True`` spawns
exactly one pool's workers for the whole fleet, survives injected device
failures and job retries with no cross-job plan/failure leakage, and its
per-job reports are bit-identical to per-attempt pools and to inline
planning.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.planner import PlannerConfig
from repro.core.recomputation import OutOfMemoryError
from repro.fleet import FleetConfig, FleetScheduler, JobSpec, JobState
from repro.parallel.config import ParallelConfig

from test_fleet_scheduler import assert_records_identical, standalone_records

#: The three planning modes whose per-job reports must agree bit for bit.
MODES = {
    "inline": dict(planner_processes=0),
    "per_attempt": dict(planner_processes=1, planner_backend="thread"),
    "shared": dict(
        planner_processes=1, planner_backend="thread", shared_planner_pool=True
    ),
}


@pytest.fixture(scope="module")
def planner_config():
    return PlannerConfig(order_search=False, tmax_sample_count=8)


def build_specs(pp2_cost_model, fleet_samples, planner_config):
    """Three dp1-pp2 jobs; a 4-GPU cluster runs two at a time."""
    return [
        JobSpec(
            name=f"job{index}",
            cost_model=pp2_cost_model,
            samples=fleet_samples,
            global_batch_tokens=4096 if index % 2 else 8192,
            parallel=ParallelConfig(1, 2, 1),
            num_iterations=3,
            planner_config=planner_config,
            seed=index,
        )
        for index in range(3)
    ]


def run_fleet(pp2_cost_model, fleet_samples, planner_config, small_device, **config):
    topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
    scheduler = FleetScheduler(topology, FleetConfig(**config))
    for spec in build_specs(pp2_cost_model, fleet_samples, planner_config):
        scheduler.submit(spec)
    # Mid-run failure: preempts whichever gang owns device 0 at t=10 ms and
    # forces a checkpoint-boundary retry — under the shared pool that means
    # one stream is retired mid-flight while co-tenant streams keep planning.
    scheduler.inject_device_failure(10.0, 0)
    return scheduler, scheduler.run()


@pytest.fixture(scope="module")
def fleet_runs(pp2_cost_model, fleet_samples, planner_config, small_device):
    return {
        mode: run_fleet(
            pp2_cost_model, fleet_samples, planner_config, small_device, **config
        )
        for mode, config in MODES.items()
    }


class TestSharedPoolBitIdentity:
    def test_all_jobs_finish_in_every_mode(self, fleet_runs):
        for mode, (_, report) in fleet_runs.items():
            assert report.finished_jobs == 3, mode
            assert report.total_preemptions == 1, mode

    def test_reports_bit_identical_across_planning_modes(self, fleet_runs):
        """The planning transport (inline / private pools / planning
        cluster) must be invisible in the results: per-job records agree
        bit for bit across all three modes."""
        baseline_scheduler, _ = fleet_runs["inline"]
        for mode in ("per_attempt", "shared"):
            scheduler, _ = fleet_runs[mode]
            for name, record in baseline_scheduler.jobs.items():
                assert_records_identical(
                    scheduler.jobs[name].checkpoint.records, record.checkpoint.records
                )

    def test_shared_mode_matches_standalone_runs(self, fleet_runs):
        """Transitively implied by the cross-mode test, but pinned directly:
        uninterrupted shared-pool jobs equal standalone sessions."""
        scheduler, _ = fleet_runs["shared"]
        uninterrupted = [
            record
            for record in scheduler.jobs.values()
            if len(record.attempts) == 1 and record.preemptions == 0
        ]
        assert uninterrupted, "scenario should leave some jobs untouched"
        record = uninterrupted[0]
        expected = standalone_records(record.spec, record.attempts[0].data_parallel)
        assert_records_identical(record.checkpoint.records, expected)

    def test_one_pool_for_the_whole_fleet(self, fleet_runs):
        """Worker-spawn amortisation: the shared run spawns exactly one
        pool's workers; per-attempt mode pays one pool per attempt."""
        _, shared_report = fleet_runs["shared"]
        _, per_attempt_report = fleet_runs["per_attempt"]
        _, inline_report = fleet_runs["inline"]
        total_attempts = sum(job.attempts for job in shared_report.jobs)
        assert total_attempts == 4  # 3 first admissions + 1 retry
        assert shared_report.planner_workers_spawned == 1
        assert per_attempt_report.planner_workers_spawned == total_attempts
        assert inline_report.planner_workers_spawned == 0

    def test_shared_pool_torn_down_and_store_clean(self, fleet_runs):
        """After the run the planning cluster is stopped and every attempt's
        stream retired — no live workers, no store residue."""
        scheduler, _ = fleet_runs["shared"]
        pool = scheduler._shared_pool
        assert pool is not None and pool.started
        assert pool.live_workers() == 0
        assert pool.job_names() == []  # every stream retired
        assert scheduler.store is not None
        assert len(scheduler.store) == 0
        assert scheduler.store.jobs() == []


class _ExplodingPlanner:
    """A planner that can never produce a plan (picklable-free, thread mode)."""

    def __init__(self, cost_model, data_parallel_size):
        self.cost_model = cost_model
        self.data_parallel_size = data_parallel_size

    def plan(self, samples, iteration=0):
        raise OutOfMemoryError("synthetic planning failure")


class TestSharedPoolIsolation:
    def test_doomed_job_never_perturbs_neighbours(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """One job's planning failures (failure markers in the shared store)
        must stay in its own namespace: the healthy co-tenant finishes with
        records bit-identical to a standalone run."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(
            topology,
            FleetConfig(
                planner_processes=1,
                planner_backend="thread",
                shared_planner_pool=True,
            ),
        )
        scheduler.submit(
            JobSpec(
                name="doomed",
                cost_model=pp2_cost_model,
                samples=fleet_samples,
                global_batch_tokens=4096,
                parallel=ParallelConfig(1, 2, 1),
                num_iterations=3,
                planner_config=planner_config,
                max_retries=1,
                planner_factory=lambda spec, dp: _ExplodingPlanner(spec.cost_model, dp),
            )
        )
        healthy = scheduler.submit(
            JobSpec(
                name="healthy",
                cost_model=pp2_cost_model,
                samples=fleet_samples,
                global_batch_tokens=4096,
                parallel=ParallelConfig(1, 2, 1),
                num_iterations=3,
                planner_config=planner_config,
                seed=1,
            )
        )
        report = scheduler.run()
        states = {job.name: job.state for job in report.jobs}
        assert states == {"doomed": JobState.FAILED, "healthy": JobState.FINISHED}
        assert "planning failed" in scheduler.jobs["doomed"].failure_reason
        assert_records_identical(
            healthy.checkpoint.records, standalone_records(healthy.spec, 1)
        )
        # The failed attempts' markers were evicted with their streams.
        assert scheduler.store.jobs() == []
        assert scheduler._shared_pool.live_workers() == 0

    def test_shared_pool_with_process_backend(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """The planning cluster also runs on real worker processes (the
        default backend): one spawned worker serves two jobs' streams and
        the results equal inline planning."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(
            topology,
            FleetConfig(planner_processes=1, shared_planner_pool=True),
        )
        specs = build_specs(pp2_cost_model, fleet_samples, planner_config)[:2]
        for spec in specs:
            scheduler.submit(spec)
        report = scheduler.run()
        assert report.finished_jobs == 2
        assert report.planner_workers_spawned == 1
        assert scheduler._shared_pool.live_workers() == 0
        for spec in specs:
            record = scheduler.jobs[spec.name]
            expected = standalone_records(spec, spec.parallel.data_parallel)
            assert_records_identical(record.checkpoint.records, expected)
