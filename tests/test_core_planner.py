"""Tests for the end-to-end DynaPipe planner (paper §3–§7)."""

from __future__ import annotations

import pytest

from repro.comm.deadlock import check_comm_order
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.core.recomputation import OutOfMemoryError
from repro.core.adaptive_schedule import ScheduleKind
from repro.core.ordering import OrderingMethod
from repro.costmodel.cost_model import CostModel
from repro.model.memory import RecomputeMode
from repro.simulator.executor import InstructionExecutor


@pytest.fixture(scope="module")
def fast_config():
    return PlannerConfig(order_search=False, tmax_sample_count=8)


@pytest.fixture(scope="module")
def gpt_planner(gpt_cost_model, fast_config):
    return DynaPipePlanner(gpt_cost_model, config=fast_config)


class TestPlanStructure:
    def test_single_replica_plan(self, gpt_planner, flan_samples_gpt):
        plan = gpt_planner.plan(flan_samples_gpt[:60], iteration=3)
        assert len(plan.replicas) == 1
        assert plan.num_microbatches >= 1
        assert plan.predicted_iteration_ms > 0
        assert plan.planning_time_s > 0
        assert plan.plans[0].metadata.iteration == 3

    def test_all_samples_planned(self, gpt_planner, flan_samples_gpt):
        samples = flan_samples_gpt[:60]
        plan = gpt_planner.plan(samples)
        planned = sorted(s for mb in plan.all_micro_batches() for s in mb.samples())
        assert planned == sorted(samples)

    def test_empty_minibatch_rejected(self, gpt_planner):
        with pytest.raises(ValueError):
            gpt_planner.plan([])

    def test_instruction_streams_per_stage(self, gpt_planner, flan_samples_gpt):
        plan = gpt_planner.plan(flan_samples_gpt[:40])
        replica_plan = plan.plans[0]
        assert replica_plan.num_stages == gpt_planner.cost_model.num_stages
        assert replica_plan.metadata.num_microbatches == len(replica_plan.microbatch_shapes)

    def test_comm_order_consistent(self, gpt_planner, flan_samples_gpt):
        plan = gpt_planner.plan(flan_samples_gpt[:50])
        for replica in plan.replicas:
            assert check_comm_order(replica.plan.device_instructions).consistent

    def test_plans_execute_on_instruction_executor(self, gpt_planner, flan_samples_gpt):
        plan = gpt_planner.plan(flan_samples_gpt[:50])
        cost_model = gpt_planner.cost_model

        def duration(instr):
            cost = cost_model.stage_cost(instr.stage, instr.shape, instr.recompute)
            return cost.forward_ms if type(instr).__name__ == "ForwardPass" else cost.backward_ms

        executor = InstructionExecutor(compute_duration_fn=duration)
        result = executor.run(plan.plans[0].device_instructions)
        assert result.makespan_ms > 0

    def test_padding_stats_reported(self, gpt_planner, flan_samples_gpt):
        plan = gpt_planner.plan(flan_samples_gpt[:60])
        assert 0.5 < plan.padding.overall_efficiency <= 1.0

    def test_predicted_memory_within_capacity(self, gpt_planner, flan_samples_gpt):
        plan = gpt_planner.plan(flan_samples_gpt[:60])
        for replica in plan.replicas:
            assert all(
                peak <= gpt_planner.device_memory_bytes * (1 + 1e-9)
                for peak in replica.plan.metadata.predicted_peak_memory_bytes
            )


class TestDataParallel:
    def test_microbatches_distributed_across_replicas(self, gpt_cost_model, flan_samples_gpt, fast_config):
        planner = DynaPipePlanner(gpt_cost_model, data_parallel_size=2, config=fast_config)
        plan = planner.plan(flan_samples_gpt[:80])
        assert len(plan.replicas) == 2
        assert all(replica.micro_batches for replica in plan.replicas)
        assert plan.data_parallel_comm_ms > 0

    def test_replica_loads_balanced(self, gpt_cost_model, flan_samples_gpt, fast_config):
        planner = DynaPipePlanner(gpt_cost_model, data_parallel_size=2, config=fast_config)
        plan = planner.plan(flan_samples_gpt[:120])
        loads = []
        for replica in plan.replicas:
            loads.append(
                sum(
                    gpt_cost_model.microbatch_time_ms(mb.shape(), plan.recompute)
                    for mb in replica.micro_batches
                )
            )
        assert max(loads) <= 1.6 * min(loads)

    def test_single_replica_has_no_dp_comm(self, gpt_planner, flan_samples_gpt):
        plan = gpt_planner.plan(flan_samples_gpt[:40])
        assert plan.data_parallel_comm_ms == 0.0


class TestConfiguration:
    def test_order_search_enabled(self, gpt_cost_model, flan_samples_gpt):
        planner = DynaPipePlanner(
            gpt_cost_model,
            config=PlannerConfig(order_search=True, num_time_clusters=3, tmax_sample_count=8),
        )
        plan = planner.plan(flan_samples_gpt[:60])
        replica = plan.replicas[0]
        if len(replica.micro_batches) > 1:
            assert replica.ordering_search is not None
            assert replica.ordering_search.evaluated >= 1

    def test_1f1b_schedule_kind(self, gpt_cost_model, flan_samples_gpt):
        planner = DynaPipePlanner(
            gpt_cost_model,
            config=PlannerConfig(
                schedule_kind=ScheduleKind.ONE_F_ONE_B, order_search=False, tmax_sample_count=8
            ),
        )
        plan = planner.plan(flan_samples_gpt[:40])
        assert plan.plans[0].metadata.schedule_name == "1f1b"

    def test_fixed_recompute_mode(self, gpt_cost_model, flan_samples_gpt):
        planner = DynaPipePlanner(
            gpt_cost_model,
            config=PlannerConfig(
                dynamic_recompute=False,
                recompute=RecomputeMode.FULL,
                order_search=False,
                tmax_sample_count=8,
            ),
        )
        plan = planner.plan(flan_samples_gpt[:40])
        assert plan.recompute is RecomputeMode.FULL

    def test_tsp_ordering_config(self, gpt_cost_model, flan_samples_gpt):
        planner = DynaPipePlanner(
            gpt_cost_model,
            config=PlannerConfig(
                ordering_method=OrderingMethod.TSP, order_search=False, tmax_sample_count=8
            ),
        )
        plan = planner.plan(flan_samples_gpt[:40])
        assert plan.num_microbatches >= 1

    def test_static_memory_overflow_rejected_at_construction(self, tiny_gpt_config):
        """A model too large for the device is rejected up front."""
        tiny_device_model = CostModel(
            tiny_gpt_config,
            num_stages=2,
            max_profile_batch_size=4,
            max_profile_seq_len=128,
        )
        with pytest.raises(OutOfMemoryError):
            DynaPipePlanner(
                tiny_device_model,
                config=PlannerConfig(device_memory_bytes=1 * 1024**2),
            )

    def test_dynamic_recompute_under_memory_pressure(self, tiny_gpt_config, small_device, flan_samples_gpt):
        """With a tight device the planner falls back to a recomputation mode
        heavier than NONE (dynamic recomputation, §7)."""
        cost_model = CostModel(
            tiny_gpt_config,
            num_stages=4,
            device_spec=small_device,
            max_profile_batch_size=32,
            max_profile_seq_len=2048,
        )
        static = max(cost_model.stage_static_bytes(j) for j in range(4))
        planner = DynaPipePlanner(
            cost_model,
            config=PlannerConfig(
                order_search=False,
                tmax_sample_count=8,
                device_memory_bytes=static + 150 * 1024**2,
            ),
        )
        long_samples = sorted(flan_samples_gpt, key=lambda s: s.total_tokens)[-40:]
        plan = planner.plan(long_samples)
        assert plan.recompute in (RecomputeMode.SELECTIVE, RecomputeMode.FULL)

    def test_t5_planner(self, t5_cost_model, flan_samples, fast_config):
        planner = DynaPipePlanner(t5_cost_model, config=fast_config)
        plan = planner.plan(flan_samples[:60])
        assert plan.num_microbatches >= 1
        assert plan.padding.decoder_efficiency is not None
