"""Tests for the instruction-level executor (NCCL-like channel semantics)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

import strategies_instructions
from repro.comm.planner import build_instruction_streams, build_naive_instruction_streams
from repro.comm.shapes import TransferShapes
from repro.instructions.ops import (
    BackwardPass,
    ForwardPass,
    RecvActStart,
    SendActStart,
    WaitRecvAct,
    _CommStart,
)
from repro.model.transformer import MicroBatchShape
from repro.schedule.cyclic import cyclic_schedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.simulator.engine import simulate_schedule
from repro.simulator.executor import CommunicationDeadlockError, InstructionExecutor

SHAPE = MicroBatchShape(batch_size=1, enc_seq_len=64)


def unit_duration(instr) -> float:
    return 1.0 if isinstance(instr, ForwardPass) else 2.0


def make_transfer_shapes(num_microbatches: int, num_stages: int) -> TransferShapes:
    activation = [[100.0] * num_stages for _ in range(num_microbatches)]
    gradient = [[100.0] * num_stages for _ in range(num_microbatches)]
    return TransferShapes(activation_bytes=activation, gradient_bytes=gradient)


class TestBasicExecution:
    def test_two_stage_hand_built_streams(self):
        """A minimal hand-written two-device program executes and times out
        the transfer correctly."""
        streams = [
            [
                ForwardPass(microbatch=0, stage=0, shape=SHAPE),
                SendActStart(microbatch=0, stage=0, peer=1, nbytes=10.0),
            ],
            [
                RecvActStart(microbatch=0, stage=1, peer=0, nbytes=10.0),
                WaitRecvAct(microbatch=0, stage=1, peer=0),
                ForwardPass(microbatch=0, stage=1, shape=SHAPE),
            ],
        ]
        executor = InstructionExecutor(
            compute_duration_fn=unit_duration, transfer_time_fn=lambda n, s, d: 0.5
        )
        result = executor.run(streams)
        # Device 1 waits for device 0's forward (1 ms) + transfer (0.5 ms).
        assert result.makespan_ms == pytest.approx(2.5)
        assert len(result.transfer_log) == 1

    def test_memory_tracking(self):
        streams = [
            [
                ForwardPass(microbatch=0, stage=0, shape=SHAPE),
                ForwardPass(microbatch=1, stage=0, shape=SHAPE),
                BackwardPass(microbatch=0, stage=0, shape=SHAPE),
                BackwardPass(microbatch=1, stage=0, shape=SHAPE),
            ]
        ]
        executor = InstructionExecutor(
            compute_duration_fn=unit_duration,
            activation_bytes_fn=lambda instr: 10.0,
            static_bytes=[5.0],
        )
        result = executor.run(streams)
        assert result.peak_memory_bytes[0] == pytest.approx(25.0)

    def test_compute_busy_time(self):
        streams = [[ForwardPass(0, 0, shape=SHAPE), BackwardPass(0, 0, shape=SHAPE)]]
        result = InstructionExecutor(compute_duration_fn=unit_duration).run(streams)
        assert result.device_compute_ms[0] == pytest.approx(3.0)
        assert result.bubble_fraction == pytest.approx(0.0)


class TestPlannedStreamsExecute:
    @pytest.mark.parametrize("num_stages,num_microbatches", [(2, 3), (4, 6), (4, 12)])
    def test_1f1b_planned_streams_run_to_completion(self, num_stages, num_microbatches):
        schedule = one_f_one_b_schedule(num_stages, num_microbatches)
        shapes = [SHAPE] * num_microbatches
        transfer_shapes = make_transfer_shapes(num_microbatches, num_stages)
        sim = simulate_schedule(schedule, lambda op: 1.0)
        streams = build_instruction_streams(schedule, sim.op_times, shapes, transfer_shapes)
        result = InstructionExecutor(compute_duration_fn=lambda i: 1.0).run(streams)
        assert result.makespan_ms >= sim.makespan_ms - 1e-6
        # Every adjacent stage pair exchanges 2 transfers per micro-batch.
        assert len(result.transfer_log) == 2 * (num_stages - 1) * num_microbatches

    def test_adaptive_planned_streams_run_to_completion(self):
        num_stages, num_microbatches = 4, 10
        activation = [[1.0] * num_stages for _ in range(num_microbatches)]
        schedule = cyclic_schedule(num_stages, activation, memory_limits=[3.0] * num_stages)
        shapes = [SHAPE] * num_microbatches
        transfer_shapes = make_transfer_shapes(num_microbatches, num_stages)
        sim = simulate_schedule(schedule, lambda op: 1.0)
        streams = build_instruction_streams(schedule, sim.op_times, shapes, transfer_shapes)
        result = InstructionExecutor(compute_duration_fn=lambda i: 1.0).run(streams)
        assert result.makespan_ms > 0

    def test_execution_with_noise_still_completes(self):
        """The planned communication order must stay deadlock-free even when
        actual execution times differ from the planning-time estimates."""
        import numpy as np

        rng = np.random.default_rng(0)
        num_stages, num_microbatches = 4, 8
        activation = [[1.0] * num_stages for _ in range(num_microbatches)]
        schedule = cyclic_schedule(num_stages, activation)
        shapes = [SHAPE] * num_microbatches
        transfer_shapes = make_transfer_shapes(num_microbatches, num_stages)
        sim = simulate_schedule(schedule, lambda op: 1.0)
        streams = build_instruction_streams(schedule, sim.op_times, shapes, transfer_shapes)
        noisy = InstructionExecutor(
            compute_duration_fn=lambda i: float(rng.uniform(0.1, 3.0)),
            transfer_time_fn=lambda n, s, d: float(rng.uniform(0.0, 0.5)),
        )
        result = noisy.run(streams)
        assert result.makespan_ms > 0


class TestDeadlockDetection:
    def test_mismatched_orders_deadlock(self):
        """Two devices posting transfers in opposite orders deadlock."""
        streams = [
            [
                ForwardPass(0, 0, shape=SHAPE),
                ForwardPass(1, 0, shape=SHAPE),
                SendActStart(microbatch=0, stage=0, peer=1, nbytes=1.0),
                SendActStart(microbatch=1, stage=0, peer=1, nbytes=1.0),
            ],
            [
                RecvActStart(microbatch=1, stage=1, peer=0, nbytes=1.0),
                WaitRecvAct(microbatch=1, stage=1, peer=0),
                ForwardPass(1, 1, shape=SHAPE),
                RecvActStart(microbatch=0, stage=1, peer=0, nbytes=1.0),
                WaitRecvAct(microbatch=0, stage=1, peer=0),
                ForwardPass(0, 1, shape=SHAPE),
            ],
        ]
        with pytest.raises(CommunicationDeadlockError):
            InstructionExecutor(compute_duration_fn=unit_duration).run(streams)

    def test_missing_peer_post_deadlocks(self):
        streams = [
            [ForwardPass(0, 0, shape=SHAPE)],
            [
                RecvActStart(microbatch=0, stage=1, peer=0, nbytes=1.0),
                WaitRecvAct(microbatch=0, stage=1, peer=0),
                ForwardPass(0, 1, shape=SHAPE),
            ],
        ]
        with pytest.raises(CommunicationDeadlockError) as excinfo:
            InstructionExecutor(compute_duration_fn=unit_duration).run(streams)
        assert 1 in excinfo.value.blocked_devices

    def test_naive_ordering_deadlocks_on_dynamic_schedule(self):
        """The paper's §6 motivation: naive send-after-produce /
        receive-before-use ordering deadlocks for non-1F1B dynamic schedules
        (here: an adaptive schedule with early injection), while the planned
        ordering (previous tests) does not."""
        num_stages, num_microbatches = 4, 8
        activation = [[1.0] * num_stages for _ in range(num_microbatches)]
        schedule = cyclic_schedule(num_stages, activation)
        shapes = [SHAPE] * num_microbatches
        transfer_shapes = make_transfer_shapes(num_microbatches, num_stages)
        naive_streams = build_naive_instruction_streams(schedule, shapes, transfer_shapes)
        with pytest.raises(CommunicationDeadlockError):
            InstructionExecutor(compute_duration_fn=lambda i: 1.0).run(naive_streams)

    def test_naive_ordering_works_without_crossings(self):
        """With a single micro-batch there are no crossing send pairs, so
        even the naive ordering is consistent.  (With more micro-batches
        1F1B's crossing send pairs require the fused operators real systems
        use, which the strict single-channel model deliberately omits; see
        DESIGN.md "Known deviations".)"""
        num_stages, num_microbatches = 4, 1
        schedule = one_f_one_b_schedule(num_stages, num_microbatches)
        shapes = [SHAPE] * num_microbatches
        transfer_shapes = make_transfer_shapes(num_microbatches, num_stages)
        naive_streams = build_naive_instruction_streams(schedule, shapes, transfer_shapes)
        result = InstructionExecutor(compute_duration_fn=lambda i: 1.0).run(naive_streams)
        assert result.makespan_ms > 0

    def test_planned_ordering_fixes_deep_1f1b(self):
        """Deeper 1F1B pipelines have crossing send pairs that real systems
        fuse; without fusion the naive order mismatches while DynaPipe's
        planned order executes cleanly."""
        num_stages, num_microbatches = 4, 8
        schedule = one_f_one_b_schedule(num_stages, num_microbatches)
        shapes = [SHAPE] * num_microbatches
        transfer_shapes = make_transfer_shapes(num_microbatches, num_stages)
        sim = simulate_schedule(schedule, lambda op: 1.0)
        planned = build_instruction_streams(schedule, sim.op_times, shapes, transfer_shapes)
        result = InstructionExecutor(compute_duration_fn=lambda i: 1.0).run(planned)
        assert result.makespan_ms > 0


class TestGeneratedStreams:
    """Property tests over the shared stream strategies
    (``tests/strategies_instructions.py``), which the conformance suite
    reuses to compare backends on the same program distribution."""

    @given(strategies_instructions.planned_streams())
    @settings(max_examples=30, deadline=None)
    def test_planned_streams_never_deadlock(self, streams):
        executor = InstructionExecutor(
            compute_duration_fn=lambda i: 1.0, transfer_time_fn=lambda n, s, d: 0.1
        )
        result = executor.run(streams)
        total_starts = sum(
            1
            for stream in streams
            for instr in stream
            if isinstance(instr, _CommStart) and instr.is_send
        )
        assert len(result.transfer_log) == total_starts

    @given(strategies_instructions.head_mismatched_streams())
    @settings(max_examples=30, deadline=None)
    def test_head_mismatched_streams_always_deadlock(self, corrupted):
        streams, _where = corrupted
        executor = InstructionExecutor(
            compute_duration_fn=lambda i: 1.0, transfer_time_fn=lambda n, s, d: 0.1
        )
        with pytest.raises(CommunicationDeadlockError) as excinfo:
            executor.run(streams)
        assert excinfo.value.blocked_devices

    @given(strategies_instructions.naive_streams())
    @settings(max_examples=20, deadline=None)
    def test_naive_streams_complete_or_deadlock_cleanly(self, streams):
        executor = InstructionExecutor(
            compute_duration_fn=lambda i: 1.0, transfer_time_fn=lambda n, s, d: 0.1
        )
        try:
            executor.run(streams)
        except CommunicationDeadlockError as err:
            assert err.blocked_devices and err.blocked_detail


class TestDeadlockDiagnostics:
    """The executor's deadlock report names the blocked *instruction*, not
    just the device, so mis-planned streams are debuggable."""

    def test_blocked_detail_names_wait_instruction(self):
        streams, (device, i, j) = strategies_instructions.known_head_mismatch_streams()
        with pytest.raises(CommunicationDeadlockError) as excinfo:
            InstructionExecutor(compute_duration_fn=unit_duration).run(streams)
        err = excinfo.value
        assert err.blocked_devices
        assert len(err.blocked_detail) == len(err.blocked_devices)
        for entry in err.blocked_detail:
            assert entry["device"] in err.blocked_devices
            assert entry["kind"].startswith("wait_")
            assert entry["microbatch"] >= 0
            assert entry["stage"] >= 0
            assert entry["peer"] >= 0

    def test_blocked_detail_pinpoints_missing_peer(self):
        streams = [
            [ForwardPass(0, 0, shape=SHAPE)],
            [
                RecvActStart(microbatch=3, stage=1, peer=0, nbytes=1.0),
                WaitRecvAct(microbatch=3, stage=1, peer=0),
                ForwardPass(3, 1, shape=SHAPE),
            ],
        ]
        with pytest.raises(CommunicationDeadlockError) as excinfo:
            InstructionExecutor(compute_duration_fn=unit_duration).run(streams)
        (entry,) = excinfo.value.blocked_detail
        assert entry == {
            "device": 1,
            "kind": "wait_recv_act",
            "microbatch": 3,
            "stage": 1,
            "peer": 0,
        }
        # The message itself names micro-batch and stage for log-only users.
        assert "microbatch=3" in str(excinfo.value)
        assert "stage=1" in str(excinfo.value)
