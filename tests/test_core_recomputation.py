"""Tests for dynamic recomputation selection (paper §7)."""

from __future__ import annotations

import pytest

from repro.core.adaptive_schedule import AdaptiveScheduler, ScheduleKind
from repro.core.recomputation import OutOfMemoryError, select_recompute_mode
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape


def small_shapes():
    return [MicroBatchShape(batch_size=2, enc_seq_len=128)] * 4


def large_shapes():
    return [MicroBatchShape(batch_size=16, enc_seq_len=1024)] * 8


class TestSelection:
    def test_abundant_memory_selects_none(self, gpt_cost_model):
        """With plenty of memory the cheapest mode (no recomputation) wins."""
        scheduler = AdaptiveScheduler(gpt_cost_model, device_memory_bytes=400 * 1024**3)
        decision = select_recompute_mode(scheduler, small_shapes())
        assert decision.mode is RecomputeMode.NONE
        assert not decision.rejected

    def test_memory_pressure_selects_heavier_mode(self, gpt_cost_model):
        """When the iteration cannot fit without checkpointing, a heavier
        recomputation mode is selected instead of failing."""
        static = max(
            gpt_cost_model.stage_static_bytes(j) for j in range(gpt_cost_model.num_stages)
        )
        shapes = large_shapes()
        full_activation = max(
            gpt_cost_model.microbatch_activation_bytes(s, RecomputeMode.FULL) for s in shapes
        )
        none_activation = max(
            gpt_cost_model.microbatch_activation_bytes(s, RecomputeMode.NONE) for s in shapes
        )
        # Enough room for one FULL-mode activation but not one NONE-mode activation.
        device_memory = static + (full_activation + none_activation) / 2
        scheduler = AdaptiveScheduler(gpt_cost_model, device_memory_bytes=device_memory)
        decision = select_recompute_mode(scheduler, shapes)
        assert decision.mode in (RecomputeMode.SELECTIVE, RecomputeMode.FULL)
        assert RecomputeMode.NONE in decision.rejected

    def test_impossible_memory_raises(self, gpt_cost_model):
        static = max(
            gpt_cost_model.stage_static_bytes(j) for j in range(gpt_cost_model.num_stages)
        )
        scheduler = AdaptiveScheduler(gpt_cost_model, device_memory_bytes=static * 1.0001)
        with pytest.raises(OutOfMemoryError):
            select_recompute_mode(scheduler, large_shapes())

    def test_peak_memory_within_budget(self, gpt_cost_model):
        scheduler = AdaptiveScheduler(gpt_cost_model)
        decision = select_recompute_mode(scheduler, large_shapes())
        assert all(
            peak <= scheduler.device_memory_bytes * (1 + 1e-9)
            for peak in decision.peak_memory_bytes
        )

    def test_decision_contains_simulation(self, gpt_cost_model):
        scheduler = AdaptiveScheduler(gpt_cost_model)
        decision = select_recompute_mode(scheduler, small_shapes())
        assert decision.simulation.makespan_ms > 0
        assert decision.build.schedule.num_microbatches == len(small_shapes())

    def test_respects_injection_order(self, gpt_cost_model):
        scheduler = AdaptiveScheduler(gpt_cost_model, device_memory_bytes=400 * 1024**3)
        order = [3, 2, 1, 0]
        decision = select_recompute_mode(
            scheduler, small_shapes(), kind=ScheduleKind.ADAPTIVE, injection_order=order
        )
        assert decision.build.schedule.injection_order() == order

    def test_1f1b_kind_supported(self, gpt_cost_model):
        scheduler = AdaptiveScheduler(gpt_cost_model, device_memory_bytes=400 * 1024**3)
        decision = select_recompute_mode(scheduler, small_shapes(), kind=ScheduleKind.ONE_F_ONE_B)
        assert decision.build.schedule.name == "1f1b"
