"""Tests for repro.costmodel.cost_model."""

from __future__ import annotations

import pytest

from repro.costmodel.cost_model import CostModel
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape


class TestStageCost:
    def test_all_stages_positive(self, gpt_cost_model):
        shape = MicroBatchShape(batch_size=2, enc_seq_len=256)
        for stage in range(gpt_cost_model.num_stages):
            cost = gpt_cost_model.stage_cost(stage, shape)
            assert cost.forward_ms > 0
            assert cost.backward_ms > cost.forward_ms
            assert cost.activation_bytes > 0

    def test_total_ms_is_sum(self, gpt_cost_model):
        shape = MicroBatchShape(batch_size=2, enc_seq_len=256)
        cost = gpt_cost_model.stage_cost(0, shape)
        assert cost.total_ms == pytest.approx(cost.forward_ms + cost.backward_ms)

    def test_stage_out_of_range(self, gpt_cost_model):
        with pytest.raises(ValueError):
            gpt_cost_model.stage_cost(99, MicroBatchShape(1, 64))

    def test_longer_sequence_costs_more(self, gpt_cost_model):
        short = gpt_cost_model.stage_cost(0, MicroBatchShape(2, 128))
        long = gpt_cost_model.stage_cost(0, MicroBatchShape(2, 1024))
        assert long.forward_ms > short.forward_ms
        assert long.activation_bytes > short.activation_bytes

    def test_recompute_shrinks_memory_grows_time(self, gpt_cost_model):
        shape = MicroBatchShape(batch_size=4, enc_seq_len=512)
        plain = gpt_cost_model.stage_cost(0, shape, RecomputeMode.NONE)
        full = gpt_cost_model.stage_cost(0, shape, RecomputeMode.FULL)
        assert full.activation_bytes < plain.activation_bytes
        assert full.backward_ms > plain.backward_ms

    def test_t5_decoder_stage_uses_both_lengths(self, t5_cost_model):
        last = t5_cost_model.num_stages - 1
        base = t5_cost_model.stage_cost(last, MicroBatchShape(2, 128, 64))
        longer_src = t5_cost_model.stage_cost(last, MicroBatchShape(2, 512, 64))
        assert longer_src.forward_ms > base.forward_ms

    def test_t5_encoder_stage_ignores_decoder_length(self, t5_cost_model):
        a = t5_cost_model.stage_cost(0, MicroBatchShape(2, 256, 32))
        b = t5_cost_model.stage_cost(0, MicroBatchShape(2, 256, 256))
        assert a.forward_ms == pytest.approx(b.forward_ms)


class TestAggregates:
    def test_microbatch_time_is_max_over_stages(self, gpt_cost_model):
        shape = MicroBatchShape(batch_size=2, enc_seq_len=256)
        per_stage = [
            gpt_cost_model.stage_cost(stage, shape).total_ms
            for stage in range(gpt_cost_model.num_stages)
        ]
        assert gpt_cost_model.microbatch_time_ms(shape) == pytest.approx(max(per_stage))

    def test_iteration_time_eq1(self, gpt_cost_model):
        """Eq. 1: (c-1) * max t + sum t."""
        shapes = [MicroBatchShape(2, 128), MicroBatchShape(2, 512), MicroBatchShape(1, 1024)]
        times = [gpt_cost_model.microbatch_time_ms(s) for s in shapes]
        expected = (gpt_cost_model.num_stages - 1) * max(times) + sum(times)
        assert gpt_cost_model.iteration_time_ms(shapes) == pytest.approx(expected)

    def test_iteration_time_empty(self, gpt_cost_model):
        assert gpt_cost_model.iteration_time_ms([]) == 0.0

    def test_iteration_time_single_microbatch(self, gpt_cost_model):
        shape = MicroBatchShape(2, 256)
        t = gpt_cost_model.microbatch_time_ms(shape)
        assert gpt_cost_model.iteration_time_ms([shape]) == pytest.approx(
            gpt_cost_model.num_stages * t
        )


class TestMemory:
    def test_static_bytes_cached_and_positive(self, gpt_cost_model):
        first = gpt_cost_model.stage_static_bytes(0)
        second = gpt_cost_model.stage_static_bytes(0)
        assert first == second > 0

    def test_activation_budget_subtracts_static(self, gpt_cost_model):
        budget = gpt_cost_model.activation_budget_bytes(0, device_memory=64 * 1024**3)
        assert budget == pytest.approx(
            64 * 1024**3 - gpt_cost_model.stage_static_bytes(0)
        )

    def test_activation_budget_clamped_at_zero(self, gpt_cost_model):
        assert gpt_cost_model.activation_budget_bytes(0, device_memory=1.0) == 0.0

    def test_peak_memory_with_window(self, gpt_cost_model):
        shapes = [MicroBatchShape(2, 256)] * 6
        small_window = gpt_cost_model.peak_memory_bytes(shapes, in_flight=1)
        big_window = gpt_cost_model.peak_memory_bytes(shapes, in_flight=4)
        assert big_window > small_window

    def test_peak_memory_no_shapes_is_static(self, gpt_cost_model):
        expected = max(
            gpt_cost_model.stage_static_bytes(stage)
            for stage in range(gpt_cost_model.num_stages)
        )
        assert gpt_cost_model.peak_memory_bytes([]) == pytest.approx(expected)


class TestBoundaryTensors:
    def test_gpt_boundary_scales_with_tokens(self, gpt_cost_model):
        small = gpt_cost_model.boundary_tensor_bytes(0, MicroBatchShape(1, 128))
        large = gpt_cost_model.boundary_tensor_bytes(0, MicroBatchShape(2, 128))
        assert large == pytest.approx(2 * small)

    def test_t5_decoder_stage_sends_more(self, t5_cost_model):
        """Stages that already run decoder layers forward both the encoder
        output and the decoder activation."""
        shape = MicroBatchShape(2, 256, 64)
        encoder_stage = t5_cost_model.boundary_tensor_bytes(0, shape)
        decoder_stage = t5_cost_model.boundary_tensor_bytes(
            t5_cost_model.num_stages - 1, shape
        )
        assert decoder_stage > encoder_stage


class TestExternalDatabase:
    def test_prebuilt_database_reused(self, tiny_gpt_config, small_device):
        from repro.costmodel.profiler import LayerProfiler

        profiler = LayerProfiler(tiny_gpt_config, device_spec=small_device)
        database = profiler.build_database(max_batch_size=4, max_seq_len=256)
        model = CostModel(
            tiny_gpt_config, num_stages=2, device_spec=small_device, database=database
        )
        assert model.database is database
        assert model.stage_cost(0, MicroBatchShape(2, 128)).forward_ms > 0


class TestBatchedQueriesAndCaches:
    def test_batched_matches_scalar(self, gpt_cost_model, t5_cost_model):
        """Batched per-stage and bottleneck queries are bit-identical to the
        scalar reference chain."""
        for cm, shapes in (
            (
                gpt_cost_model,
                [MicroBatchShape(b, e) for b, e in [(1, 33), (4, 700), (16, 2048), (2, 8)]],
            ),
            (
                t5_cost_model,
                [
                    MicroBatchShape(b, e, d)
                    for b, e, d in [(1, 33, 17), (4, 700, 120), (16, 2048, 300)]
                ],
            ),
        ):
            for mode in (RecomputeMode.NONE, RecomputeMode.FULL):
                times = cm.microbatch_times_ms(shapes, mode)
                acts = cm.microbatch_activation_bytes_many(shapes, mode)
                for i, shape in enumerate(shapes):
                    scalar_time = max(
                        cm.stage_cost(stage, shape, mode).total_ms
                        for stage in range(cm.num_stages)
                    )
                    scalar_act = max(
                        cm.stage_cost(stage, shape, mode).activation_bytes
                        for stage in range(cm.num_stages)
                    )
                    assert times[i] == scalar_time
                    assert acts[i] == scalar_act
                for stage in range(cm.num_stages):
                    batched = cm.stage_costs_many(stage, shapes, mode)
                    for shape, cost in zip(shapes, batched):
                        assert cost == cm.stage_cost(stage, shape, mode)

    def test_cache_guard_clear_keeps_results_consistent(self, tiny_gpt_config, monkeypatch):
        """When the soft cache cap fires mid-query, previously cached shapes
        must still be returned (regression: the clear used to cause KeyError)."""
        import repro.costmodel.cost_model as cost_model_module

        monkeypatch.setattr(cost_model_module, "_CACHE_LIMIT", 3)
        cm = CostModel(
            tiny_gpt_config, num_stages=2, max_profile_batch_size=4, max_profile_seq_len=64
        )
        cached = [MicroBatchShape(1, 32), MicroBatchShape(2, 32), MicroBatchShape(3, 32)]
        expected_times = cm.microbatch_times_ms(cached)
        expected_stage = cm.stage_costs_many(0, cached)
        fresh = [MicroBatchShape(4, 48), MicroBatchShape(4, 64)]
        mixed = cached + fresh
        times = cm.microbatch_times_ms(mixed)
        assert list(times[: len(cached)]) == list(expected_times)
        stage_costs = cm.stage_costs_many(0, mixed)
        assert stage_costs[: len(cached)] == expected_stage

    def test_static_bytes_cache_is_per_instance(self, tiny_gpt_config):
        """stage_static_bytes no longer uses lru_cache on the method, which
        pinned every CostModel instance in a module-global cache."""
        import gc
        import weakref

        cm = CostModel(
            tiny_gpt_config, num_stages=2, max_profile_batch_size=4, max_profile_seq_len=64
        )
        cm.stage_static_bytes(0)
        assert cm.stage_static_bytes(0) == cm.stage_static_bytes(0)
        ref = weakref.ref(cm)
        del cm
        gc.collect()
        assert ref() is None
