"""Hypothesis strategies generating instruction streams for backend tests.

Shared by the simulator unit tests and the differential ISA-conformance
suite (``tests/test_backend_conformance.py``) so both test layers draw from
the same distribution of programs:

* :func:`planned_streams` — well-formed streams from the ahead-of-time
  communication planner over random 1F1B / cyclic schedules.  These are
  deadlock-free by construction (paper §6) and every backend must run them
  to completion.
* :func:`naive_streams` — streams with the naive send-after-produce /
  recv-before-consume ordering.  May or may not deadlock depending on the
  schedule; backends must agree on the verdict either way.
* :func:`head_mismatched_streams` — well-formed planned streams corrupted
  by swapping two same-channel Start ops with distinct transfer keys.  The
  corrupted channel's two sides then post in different orders, so the
  streams are *guaranteed* to deadlock: either the heads mismatch
  permanently or a device blocks forever on a Wait whose transfer can
  never reach the head.
* :func:`known_head_mismatch_streams` — a fixed (non-hypothesis) instance
  of the above for deterministic regression tests and CI timeout guards.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.comm.planner import build_instruction_streams, build_naive_instruction_streams
from repro.comm.shapes import TransferShapes
from repro.instructions.ops import PipelineInstruction, _CommStart
from repro.model.transformer import MicroBatchShape
from repro.schedule.cyclic import cyclic_schedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.simulator.engine import simulate_schedule
from repro.simulator.executor import _transfer_key_for_start

SHAPE = MicroBatchShape(batch_size=1, enc_seq_len=64)


def uniform_transfer_shapes(num_microbatches: int, num_stages: int) -> TransferShapes:
    """Uniform 64-byte transfers for every micro-batch and stage boundary."""
    return TransferShapes(
        activation_bytes=[[64.0] * num_stages for _ in range(num_microbatches)],
        gradient_bytes=[[64.0] * num_stages for _ in range(num_microbatches)],
    )


def streams_from_schedule(schedule) -> list[list[PipelineInstruction]]:
    """Planned (deadlock-free) streams for a schedule with unit compute."""
    shapes = [SHAPE] * schedule.num_microbatches
    transfer_shapes = uniform_transfer_shapes(
        schedule.num_microbatches, schedule.num_stages
    )
    sim = simulate_schedule(schedule, lambda op: 1.0)
    return build_instruction_streams(schedule, sim.op_times, shapes, transfer_shapes)


def naive_streams_from_schedule(schedule) -> list[list[PipelineInstruction]]:
    """Naive-order streams (may deadlock on dynamic schedules)."""
    shapes = [SHAPE] * schedule.num_microbatches
    transfer_shapes = uniform_transfer_shapes(
        schedule.num_microbatches, schedule.num_stages
    )
    return build_naive_instruction_streams(schedule, shapes, transfer_shapes)


@st.composite
def schedules(draw):
    """A random small pipeline schedule (1F1B or memory-limited cyclic)."""
    num_stages = draw(st.integers(min_value=2, max_value=4))
    num_microbatches = draw(st.integers(min_value=2, max_value=6))
    kind = draw(st.sampled_from(["1f1b", "cyclic"]))
    if kind == "1f1b":
        return one_f_one_b_schedule(num_stages, num_microbatches)
    # Heterogeneous activation footprints + a tight memory limit produce the
    # dynamic (non-1F1B) orderings where naive communication deadlocks.
    activation_bytes = [
        [float(draw(st.integers(min_value=1, max_value=4))) for _ in range(num_stages)]
        for _ in range(num_microbatches)
    ]
    limit = float(draw(st.integers(min_value=6, max_value=12)))
    return cyclic_schedule(
        num_stages, activation_bytes, memory_limits=[limit] * num_stages
    )


@st.composite
def planned_streams(draw):
    """Well-formed planner-produced streams: must execute on every backend."""
    return streams_from_schedule(draw(schedules()))


@st.composite
def naive_streams(draw):
    """Naive-order streams: backends must agree on the deadlock verdict."""
    return naive_streams_from_schedule(draw(schedules()))


def _swappable_start_pairs(
    streams,
) -> list[tuple[int, int, int]]:
    """All (device, i, j) where stream positions i<j hold Start ops on the
    same channel with distinct transfer keys — swapping them corrupts the
    channel's posting order."""
    pairs = []
    for device, stream in enumerate(streams):
        starts = [
            (pos, instr)
            for pos, instr in enumerate(stream)
            if isinstance(instr, _CommStart)
        ]
        for a in range(len(starts)):
            for b in range(a + 1, len(starts)):
                (i, first), (j, second) = starts[a], starts[b]
                if first.peer != second.peer:
                    continue
                if _transfer_key_for_start(first) == _transfer_key_for_start(second):
                    continue
                pairs.append((device, i, j))
    return pairs


def swap_starts(streams, device: int, i: int, j: int):
    """Copy of ``streams`` with positions ``i`` and ``j`` of ``device``'s
    stream exchanged."""
    corrupted = [list(stream) for stream in streams]
    corrupted[device][i], corrupted[device][j] = (
        corrupted[device][j],
        corrupted[device][i],
    )
    return corrupted


@st.composite
def head_mismatched_streams(draw):
    """Planned streams corrupted into a guaranteed channel-order mismatch.

    Returns ``(streams, (device, i, j))`` where the swap happened, so tests
    can assert the deadlock diagnostics point at the corrupted channel.
    """
    streams = streams_from_schedule(draw(schedules()))
    pairs = _swappable_start_pairs(streams)
    # Any planned schedule with >= 2 micro-batches has at least the two
    # forward sends out of stage 0 to swap.
    assert pairs, "generated schedule has no swappable Start pair"
    device, i, j = draw(st.sampled_from(pairs))
    return swap_starts(streams, device, i, j), (device, i, j)


def known_head_mismatch_streams():
    """Deterministic corrupted streams for regression tests.

    A 2-stage, 3-micro-batch 1F1B program with the first two activation
    sends out of stage 0 swapped: stage 0 posts act(1) before act(0) while
    stage 1 still expects act(0) first, so the channel's heads mismatch
    permanently and the program can never complete.
    """
    streams = streams_from_schedule(one_f_one_b_schedule(2, 3))
    device, i, j = _swappable_start_pairs(streams)[0]
    return swap_starts(streams, device, i, j), (device, i, j)
