"""Tests for repro.cluster.device."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.device import A100_40GB, DeviceSpec, SimulatedGPU


class TestDeviceSpec:
    def test_a100_constants(self):
        assert A100_40GB.peak_flops == pytest.approx(312e12)
        assert A100_40GB.memory_capacity == 40 * 1024**3

    def test_achievable_rates_below_peak(self):
        assert A100_40GB.achievable_flops < A100_40GB.peak_flops
        assert A100_40GB.achievable_bandwidth < A100_40GB.memory_bandwidth

    def test_with_memory_capacity(self):
        smaller = A100_40GB.with_memory_capacity(10 * 1024**3)
        assert smaller.memory_capacity == 10 * 1024**3
        assert smaller.peak_flops == A100_40GB.peak_flops

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", peak_flops=0, memory_bandwidth=1, memory_capacity=1)
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", peak_flops=1, memory_bandwidth=-1, memory_capacity=1)


class TestSimulatedGPU:
    def test_compute_bound_kernel(self):
        gpu = SimulatedGPU(A100_40GB)
        # Very high arithmetic intensity -> time dominated by FLOPs.
        flops = A100_40GB.achievable_flops  # one second of compute
        time_ms = gpu.kernel_time_ms(flops, bytes_moved=1.0)
        assert time_ms == pytest.approx(1000.0, rel=1e-3)

    def test_memory_bound_kernel(self):
        gpu = SimulatedGPU(A100_40GB)
        nbytes = A100_40GB.achievable_bandwidth  # one second of traffic
        time_ms = gpu.kernel_time_ms(flops=1.0, bytes_moved=nbytes)
        assert time_ms == pytest.approx(1000.0, rel=1e-3)

    def test_kernel_overhead_added(self):
        gpu = SimulatedGPU(A100_40GB)
        base = gpu.kernel_time_ms(0.0, 0.0, kernels=1)
        assert base == pytest.approx(A100_40GB.kernel_overhead_ms)
        assert gpu.kernel_time_ms(0.0, 0.0, kernels=5) == pytest.approx(5 * base)

    def test_noise_free_is_deterministic(self):
        gpu = SimulatedGPU(A100_40GB, noise_std=0.0)
        a = gpu.kernel_time_ms(1e12, 1e9)
        b = gpu.kernel_time_ms(1e12, 1e9)
        assert a == b

    def test_noise_changes_time_but_stays_positive(self):
        gpu = SimulatedGPU(A100_40GB, noise_std=0.5, seed=0)
        times = [gpu.kernel_time_ms(1e12, 1e9) for _ in range(50)]
        assert len(set(times)) > 1
        assert all(t > 0 for t in times)

    def test_noise_reproducible_with_seed(self):
        a = SimulatedGPU(A100_40GB, noise_std=0.2, seed=11)
        b = SimulatedGPU(A100_40GB, noise_std=0.2, seed=11)
        assert [a.kernel_time_ms(1e12, 1e9) for _ in range(5)] == [
            b.kernel_time_ms(1e12, 1e9) for _ in range(5)
        ]

    def test_negative_inputs_rejected(self):
        gpu = SimulatedGPU(A100_40GB)
        with pytest.raises(ValueError):
            gpu.kernel_time_ms(-1.0, 0.0)
        with pytest.raises(ValueError):
            gpu.kernel_time_ms(0.0, -1.0)
        with pytest.raises(ValueError):
            gpu.kernel_time_ms(0.0, 0.0, kernels=0)

    @given(
        flops=st.floats(min_value=0, max_value=1e18),
        nbytes=st.floats(min_value=0, max_value=1e15),
    )
    def test_time_monotone_in_work(self, flops, nbytes):
        gpu = SimulatedGPU(A100_40GB)
        base = gpu.kernel_time_ms(flops, nbytes)
        more_flops = gpu.kernel_time_ms(flops * 2, nbytes)
        more_bytes = gpu.kernel_time_ms(flops, nbytes * 2)
        assert more_flops >= base
        assert more_bytes >= base
