"""Tests for the safety-stock analysis (paper §5)."""

from __future__ import annotations

from repro.schedule.cyclic import cyclic_schedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.schedule.safety_stock import safety_stock_profile
from repro.simulator.engine import simulate_schedule


def simulate(schedule, duration: float = 1.0):
    return simulate_schedule(schedule, lambda op: duration)


class TestSafetyStock:
    def test_first_stage_of_1f1b_starts_with_stock(self):
        """The first stage has all micro-batches ready up front, so its early
        safety stock is positive."""
        schedule = one_f_one_b_schedule(4, 8)
        profile = safety_stock_profile(schedule, simulate(schedule).op_times)
        assert max(profile.per_stage_samples[0]) > 0

    def test_1f1b_steady_state_has_zero_stock_downstream(self):
        """Paper §5: downstream stages of 1F1B hit zero safety stock in the
        steady state — the reason time variation causes bubbles."""
        schedule = one_f_one_b_schedule(4, 12)
        profile = safety_stock_profile(schedule, simulate(schedule).op_times)
        for stage in range(1, 4):
            assert profile.per_stage_minimum[stage] == 0

    def test_adaptive_early_injection_raises_stock(self):
        """Injecting all micro-batches early (unlimited-memory adaptive
        schedule) keeps a higher mean safety stock than 1F1B on the middle
        stages."""
        stages, microbatches = 4, 12
        activation = [[1.0] * stages for _ in range(microbatches)]
        adaptive = cyclic_schedule(stages, activation)
        one_f = one_f_one_b_schedule(stages, microbatches)
        adaptive_profile = safety_stock_profile(adaptive, simulate(adaptive).op_times)
        one_f_profile = safety_stock_profile(one_f, simulate(one_f).op_times)
        assert (
            sum(adaptive_profile.per_stage_mean[1:3])
            > sum(one_f_profile.per_stage_mean[1:3])
        )

    def test_profile_shapes(self):
        schedule = one_f_one_b_schedule(3, 5)
        profile = safety_stock_profile(schedule, simulate(schedule).op_times)
        assert len(profile.per_stage_samples) == 3
        assert len(profile.per_stage_minimum) == 3
        assert len(profile.per_stage_mean) == 3
        # One sample per op except the first op of each stage.
        assert all(len(samples) == 2 * 5 - 1 for samples in profile.per_stage_samples)

    def test_single_stage_has_full_stock(self):
        """On a single-stage pipeline later ops are always ready (except at
        the very end of the iteration when the buffer naturally drains)."""
        schedule = one_f_one_b_schedule(1, 4)
        profile = safety_stock_profile(schedule, simulate(schedule).op_times)
        samples = profile.per_stage_samples[0]
        assert max(samples) >= 2
        assert profile.per_stage_mean[0] > 1.0
