"""Tests for the Karmarkar–Karp replica balancing (paper §4)."""

from __future__ import annotations

import heapq
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.replica_balance import ReplicaAssignment, karmarkar_karp_partition


def _karmarkar_karp_reference(values, num_parts) -> ReplicaAssignment:
    """The original (pre-tightening) formulation — naive lambda sort keys and
    a separate spread negation — kept verbatim as the bit-identity reference
    for the optimised merge loop."""
    if num_parts < 1:
        raise ValueError(f"num_parts must be >= 1, got {num_parts}")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    if num_parts == 1:
        return ReplicaAssignment(groups=[list(range(len(values)))], sums=[float(sum(values))])
    if not values:
        return ReplicaAssignment(groups=[[] for _ in range(num_parts)], sums=[0.0] * num_parts)

    counter = itertools.count()
    heap: list[tuple[float, int, list[tuple[float, list[int]]]]] = []
    for index, value in enumerate(values):
        groups: list[tuple[float, list[int]]] = [(float(value), [index])]
        groups.extend((0.0, []) for _ in range(num_parts - 1))
        spread = float(value)
        heapq.heappush(heap, (-spread, next(counter), groups))

    while len(heap) > 1:
        _, _, groups_a = heapq.heappop(heap)
        _, _, groups_b = heapq.heappop(heap)
        groups_a.sort(key=lambda g: g[0], reverse=True)
        groups_b.sort(key=lambda g: g[0])
        merged = [
            (sum_a + sum_b, items_a + items_b)
            for (sum_a, items_a), (sum_b, items_b) in zip(groups_a, groups_b)
        ]
        spread = max(s for s, _ in merged) - min(s for s, _ in merged)
        heapq.heappush(heap, (-spread, next(counter), merged))

    _, _, final_groups = heap[0]
    final_groups.sort(key=lambda g: g[0], reverse=True)
    return ReplicaAssignment(
        groups=[sorted(items) for _, items in final_groups],
        sums=[float(s) for s, _ in final_groups],
    )


class TestTightenedMergeEquivalence:
    """The tightened merge loop (hoisted ``itemgetter`` key, fused spread)
    must be bit-identical to the original formulation."""

    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=0, max_size=48),
        parts=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=120, deadline=None)
    def test_bit_identical_to_reference(self, values, parts):
        fast = karmarkar_karp_partition(values, parts)
        reference = _karmarkar_karp_reference(values, parts)
        assert fast.groups == reference.groups
        # Exact float equality: same additions in the same order.
        assert fast.sums == reference.sums

    @given(
        values=st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=40),
        parts=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_under_heavy_ties(self, values, parts):
        """Quantised values force equal sums, exercising the stable-sort
        tie-breaking that must match Python's stable sort exactly."""
        floats = [float(v) for v in values]
        fast = karmarkar_karp_partition(floats, parts)
        reference = _karmarkar_karp_reference(floats, parts)
        assert fast.groups == reference.groups
        assert fast.sums == reference.sums


class TestBasics:
    def test_single_part_gets_everything(self):
        result = karmarkar_karp_partition([3.0, 1.0, 2.0], 1)
        assert result.groups == [[0, 1, 2]]
        assert result.sums == [6.0]

    def test_empty_values(self):
        result = karmarkar_karp_partition([], 4)
        assert result.groups == [[], [], [], []]
        assert result.sums == [0.0] * 4

    def test_every_item_assigned_exactly_once(self):
        values = [5.0, 3.0, 8.0, 1.0, 7.0, 2.0]
        result = karmarkar_karp_partition(values, 3)
        assigned = sorted(i for group in result.groups for i in group)
        assert assigned == list(range(len(values)))

    def test_sums_match_groups(self):
        values = [5.0, 3.0, 8.0, 1.0, 7.0, 2.0]
        result = karmarkar_karp_partition(values, 2)
        for group, total in zip(result.groups, result.sums):
            assert total == pytest.approx(sum(values[i] for i in group))

    def test_perfectly_splittable(self):
        result = karmarkar_karp_partition([4.0, 4.0, 4.0, 4.0], 2)
        assert result.sums == [8.0, 8.0]
        assert result.imbalance == 0.0

    def test_classic_example(self):
        """KK on {8,7,6,5,4} with 2 parts yields the textbook difference of 2
        (the differencing method is a heuristic; the true optimum is 0)."""
        result = karmarkar_karp_partition([8.0, 7.0, 6.0, 5.0, 4.0], 2)
        assert result.imbalance == pytest.approx(2.0)
        assert result.makespan == pytest.approx(16.0)

    def test_more_parts_than_items(self):
        result = karmarkar_karp_partition([3.0, 5.0], 4)
        assert sorted(map(len, result.groups)) == [0, 0, 1, 1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            karmarkar_karp_partition([1.0], 0)
        with pytest.raises(ValueError):
            karmarkar_karp_partition([-1.0], 2)

    def test_groups_sorted_by_descending_load(self):
        result = karmarkar_karp_partition([9.0, 1.0, 1.0], 2)
        assert result.sums == sorted(result.sums, reverse=True)
        assert result.makespan == max(result.sums)


class TestQuality:
    def test_better_than_worst_case(self):
        """KK's makespan is no worse than putting everything on one replica."""
        values = [10.0, 2.0, 7.0, 3.0, 9.0, 1.0, 4.0]
        result = karmarkar_karp_partition(values, 3)
        assert result.makespan < sum(values)

    def test_close_to_lower_bound_on_uniform_values(self):
        values = [1.0] * 64
        result = karmarkar_karp_partition(values, 4)
        assert result.makespan == pytest.approx(16.0)

    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=0, max_size=40),
        parts=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_partition_invariants(self, values, parts):
        """Property: the partition covers every index once, preserves total
        load, and its makespan is between the trivial lower and upper bounds."""
        result = karmarkar_karp_partition(values, parts)
        assigned = sorted(i for group in result.groups for i in group)
        assert assigned == list(range(len(values)))
        assert sum(result.sums) == pytest.approx(sum(values), rel=1e-9, abs=1e-6)
        if values:
            lower = max(max(values), sum(values) / parts)
            assert result.makespan >= lower - 1e-6
            assert result.makespan <= sum(values) + 1e-6

    @given(
        values=st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=8, max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_way_split_not_worse_than_greedy_lpt_worst_case(self, values):
        """KK's 2-way imbalance never exceeds the largest item (a well-known
        guarantee of the differencing method)."""
        result = karmarkar_karp_partition(values, 2)
        assert result.imbalance <= max(values) + 1e-6
