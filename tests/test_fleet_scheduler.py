"""End-to-end tests of the fleet scheduler (admission, elasticity, resume).

The acceptance scenario mirrors the issue's bar: eight jobs share one
simulated cluster, two device failures strike mid-run, and every job must
reach a terminal state with uninterrupted jobs bit-identical to standalone
runs and preempted jobs matching their checkpoint-boundary restarts.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.planner import PlannerConfig
from repro.fleet import FleetConfig, FleetScheduler, JobSpec, JobState
from repro.fleet.job import JobCheckpoint, JobRecord
from repro.parallel.config import ParallelConfig
from repro.training.trainer import TrainingSession

#: Record fields that must match bit-for-bit between fleet and standalone
#: runs (planning_time_s is wall-clock and legitimately differs).
_DETERMINISTIC_FIELDS = (
    "iteration",
    "actual_tokens",
    "padded_tokens",
    "predicted_ms",
    "measured_ms",
    "predicted_peak_bytes",
    "measured_peak_bytes",
    "num_microbatches",
    "recompute",
)


def assert_records_identical(fleet_records, standalone_records):
    assert len(fleet_records) == len(standalone_records)
    for ours, theirs in zip(fleet_records, standalone_records):
        for field in _DETERMINISTIC_FIELDS:
            assert getattr(ours, field) == getattr(theirs, field), field


def standalone_records(spec: JobSpec, data_parallel: int, start_iteration: int = 0):
    """Records of the same job run outside the fleet (optionally resumed)."""
    session = TrainingSession(
        spec.build_planner(data_parallel),
        spec.samples,
        global_batch_tokens=spec.global_batch_tokens,
        config=spec.trainer_config(start_iteration),
        system_name=spec.name,
    )
    return session.run().records


@pytest.fixture(scope="module")
def planner_config():
    return PlannerConfig(order_search=False, tmax_sample_count=8)


@pytest.fixture(scope="module")
def acceptance_fleet(pp2_cost_model, fleet_samples, planner_config, small_device):
    """Eight jobs on an 8-GPU cluster with two mid-run device failures."""
    topology = ClusterTopology.for_num_gpus(8, device_spec=small_device)
    scheduler = FleetScheduler(topology, FleetConfig(policy="fifo"))
    shapes = [
        ParallelConfig(2, 2, 1), ParallelConfig(1, 2, 1), ParallelConfig(1, 2, 1),
        ParallelConfig(2, 2, 1), ParallelConfig(1, 2, 1), ParallelConfig(2, 2, 1),
        ParallelConfig(1, 2, 1), ParallelConfig(1, 2, 1),
    ]
    for index, shape in enumerate(shapes):
        scheduler.submit(
            JobSpec(
                name=f"job{index}",
                cost_model=pp2_cost_model,
                samples=fleet_samples,
                global_batch_tokens=4096 if index % 2 else 8192,
                parallel=shape,
                num_iterations=3,
                planner_config=planner_config,
                seed=index,
            )
        )
    # Two failures while the cluster is saturated: each interrupts the gang
    # occupying that device at the time (verified below).
    scheduler.inject_device_failure(10.0, 0)
    scheduler.inject_device_failure(25.0, 5)
    report = scheduler.run()
    return scheduler, report


class TestAcceptanceScenario:
    def test_every_job_reaches_a_terminal_state(self, acceptance_fleet):
        scheduler, report = acceptance_fleet
        assert len(report.jobs) == 8
        for job in report.jobs:
            assert job.state in (JobState.FINISHED, JobState.FAILED)
            if job.state == JobState.FINISHED:
                assert job.iterations_completed == job.target_iterations
        assert report.failed_devices == [0, 5]
        assert report.finished_jobs == 8

    def test_failures_preempted_running_jobs(self, acceptance_fleet):
        _, report = acceptance_fleet
        assert report.total_preemptions == 2
        assert report.total_retries == 2
        preempted = [job for job in report.jobs if job.preemptions]
        assert len(preempted) == 2
        for job in preempted:
            assert job.attempts == 2
            assert job.state == JobState.FINISHED

    def test_no_device_leaked(self, acceptance_fleet):
        scheduler, report = acceptance_fleet
        allocator = scheduler.allocator
        allocator.check_consistent()
        assert allocator.busy_count == 0
        assert allocator.failed_devices == {0, 5}
        assert allocator.free_count == scheduler.topology.num_gpus - 2

    def test_fleet_metrics_are_sane(self, acceptance_fleet):
        _, report = acceptance_fleet
        assert report.makespan_ms > 0
        assert 0 < report.device_utilization <= 1
        assert report.mean_queueing_delay_ms >= 0
        assert report.max_queueing_delay_ms >= report.mean_queueing_delay_ms
        summary = report.summary()
        assert summary["jobs"] == 8
        assert summary["finished"] == 8

    def test_uninterrupted_jobs_match_standalone_runs(self, acceptance_fleet):
        scheduler, report = acceptance_fleet
        uninterrupted = [
            record
            for record in scheduler.jobs.values()
            if len(record.attempts) == 1 and record.preemptions == 0
        ]
        assert uninterrupted, "scenario should leave some jobs untouched"
        # One dp1 and one dp2 job keep the check cheap but representative.
        by_dp = {record.attempts[0].data_parallel: record for record in uninterrupted}
        for data_parallel, record in sorted(by_dp.items()):
            expected = standalone_records(record.spec, data_parallel)
            assert_records_identical(record.checkpoint.records, expected)

    def test_preempted_jobs_match_checkpoint_boundary_restart(self, acceptance_fleet):
        scheduler, _ = acceptance_fleet
        preempted = [r for r in scheduler.jobs.values() if r.preemptions]
        assert len(preempted) == 2
        for record in preempted:
            resume = record.attempts[-1]
            boundary = resume.start_iteration
            expected = standalone_records(
                record.spec, resume.data_parallel, start_iteration=boundary
            )
            assert_records_identical(record.checkpoint.records[boundary:], expected)

    def test_occupancy_trace_covers_committed_iterations(self, acceptance_fleet, tmp_path):
        scheduler, report = acceptance_fleet
        committed = sum(job.iterations_completed for job in report.jobs)
        traced_jobs = {event.name.split(":")[0] for event in report.trace.events}
        assert traced_jobs == set(scheduler.jobs)
        # One event per gang device per committed iteration.
        assert len(report.trace.events) == sum(
            attempt.iterations_completed * len(attempt.devices)
            for record in scheduler.jobs.values()
            for attempt in record.attempts
        )
        assert committed == 8 * 3
        path = report.save_chrome_trace(tmp_path / "fleet.json")
        assert path.exists() and path.stat().st_size > 0


class TestElasticResume:
    def test_job_shrinks_after_permanent_capacity_loss(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """A dp2 job on a 4-GPU cluster loses a device: the alive cluster can
        only ever host dp1, so the retry re-plans on a 2-device gang from the
        checkpoint boundary."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        spec = JobSpec(
            name="elastic",
            cost_model=pp2_cost_model,
            samples=fleet_samples,
            global_batch_tokens=4096,
            parallel=ParallelConfig(2, 2, 1),
            num_iterations=4,
            planner_config=planner_config,
            seed=3,
        )
        record = scheduler.submit(spec)
        scheduler.inject_device_failure(2.0, 1)
        report = scheduler.run()
        assert report.jobs[0].state == JobState.FINISHED
        assert record.attempts[0].data_parallel == 2
        assert record.attempts[0].outcome == "device_failure"
        resumed = record.attempts[1]
        assert resumed.data_parallel == 1
        assert 1 not in resumed.devices
        expected = standalone_records(spec, 1, start_iteration=resumed.start_iteration)
        assert_records_identical(
            record.checkpoint.records[resumed.start_iteration :], expected
        )

    def test_non_elastic_job_fails_when_gang_cannot_fit(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        record = scheduler.submit(
            JobSpec(
                name="rigid",
                cost_model=pp2_cost_model,
                samples=fleet_samples,
                global_batch_tokens=4096,
                parallel=ParallelConfig(2, 2, 1),
                num_iterations=4,
                planner_config=planner_config,
                elastic=False,
                submit_time_ms=5.0,
            )
        )
        scheduler.inject_device_failure(0.0, 0)
        report = scheduler.run()
        assert report.jobs[0].state == JobState.FAILED
        assert "unschedulable" in record.failure_reason
        assert record.first_admitted_ms is None


class TestSchedulingBehaviour:
    def test_delayed_submission_waits_for_its_arrival(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(topology)

        def spec(name, submit_ms):
            return JobSpec(
                name=name,
                cost_model=pp2_cost_model,
                samples=fleet_samples,
                global_batch_tokens=4096,
                parallel=ParallelConfig(1, 2, 1),
                num_iterations=2,
                planner_config=planner_config,
                submit_time_ms=submit_ms,
            )

        scheduler.submit(spec("first", 0.0))
        late = scheduler.submit(spec("late", 1000.0))
        report = scheduler.run()
        assert report.finished_jobs == 2
        assert late.first_admitted_ms >= 1000.0
        # The cluster idles between the first job's end and the arrival, so
        # the late job starts the moment it arrives: zero queueing delay.
        assert late.queueing_delay_ms == pytest.approx(0.0)

    def test_arrival_before_failure_is_admitted_then_preempted(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """Regression: with a job running, an arrival at t=5 must be admitted
        before a failure at t=10 is applied — the late job starts on the free
        devices at its arrival time and is then preempted by the failure,
        not silently deferred until the first job finishes.  The long job's
        iteration (~75 ms) outlasts both the arrival and the failure, which
        is exactly the window where the old failure-before-arrival ordering
        went wrong."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)

        def spec(name, submit_ms, iterations, tokens):
            return JobSpec(
                name=name,
                cost_model=pp2_cost_model,
                samples=fleet_samples,
                global_batch_tokens=tokens,
                parallel=ParallelConfig(1, 2, 1),
                num_iterations=iterations,
                planner_config=planner_config,
                submit_time_ms=submit_ms,
            )

        scheduler.submit(spec("long", 0.0, 2, 32768))
        late = scheduler.submit(spec("late", 5.0, 3, 4096))
        scheduler.inject_device_failure(10.0, 2)  # inside late's gang (2, 3)
        report = scheduler.run()
        assert report.finished_jobs == 2
        assert late.first_admitted_ms == pytest.approx(5.0)
        assert late.queueing_delay_ms == pytest.approx(0.0)
        assert late.attempts[0].devices == (2, 3)
        assert late.preemptions == 1
        assert late.attempts[0].outcome == "device_failure"

    def test_srw_runs_short_job_before_long_backlog(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """With one 2-device cluster and jobs submitted long-first, SRW
        admits the short job ahead of the queued long one."""
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)

        def build(policy):
            scheduler = FleetScheduler(topology, FleetConfig(policy=policy))
            for name, iterations, submit in (("long", 6, 0.0), ("short", 1, 0.0)):
                scheduler.submit(
                    JobSpec(
                        name=name,
                        cost_model=pp2_cost_model,
                        samples=fleet_samples,
                        global_batch_tokens=4096,
                        parallel=ParallelConfig(1, 2, 1),
                        num_iterations=iterations,
                        planner_config=planner_config,
                        est_iteration_ms=1000.0 * iterations,
                    )
                )
            return scheduler.run()

        fifo = build("fifo")
        srw = build("srw")
        assert fifo.policy == "fifo" and srw.policy == "srw"
        fifo_short = next(job for job in fifo.jobs if job.name == "short")
        srw_short = next(job for job in srw.jobs if job.name == "short")
        assert srw_short.queueing_delay_ms == pytest.approx(0.0)
        assert fifo_short.queueing_delay_ms > 0
        assert srw.mean_queueing_delay_ms < fifo.mean_queueing_delay_ms

    def test_duplicate_names_and_post_run_submission_rejected(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        spec = JobSpec(
            name="only",
            cost_model=pp2_cost_model,
            samples=fleet_samples,
            global_batch_tokens=4096,
            parallel=ParallelConfig(1, 2, 1),
            num_iterations=1,
            planner_config=planner_config,
        )
        scheduler.submit(spec)
        with pytest.raises(ValueError, match="duplicate"):
            scheduler.submit(spec)
        with pytest.raises(ValueError, match="pipeline stages"):
            scheduler.submit(
                JobSpec(
                    name="bad-shape",
                    cost_model=pp2_cost_model,
                    samples=fleet_samples,
                    global_batch_tokens=4096,
                    parallel=ParallelConfig(1, 4, 1),
                    num_iterations=1,
                )
            )
        scheduler.run()
        with pytest.raises(RuntimeError):
            scheduler.submit(spec)
        with pytest.raises(RuntimeError):
            scheduler.run()


class TestCheckpoint:
    def test_checkpoint_round_trip(self, acceptance_fleet):
        scheduler, _ = acceptance_fleet
        record = next(iter(scheduler.jobs.values()))
        checkpoint = record.checkpoint
        rebuilt = JobCheckpoint.from_dict(checkpoint.to_dict())
        assert rebuilt == checkpoint

    def test_training_report_matches_standalone_shape(self, acceptance_fleet):
        scheduler, _ = acceptance_fleet
        record: JobRecord = scheduler.jobs["job2"]
        report = record.training_report()
        assert report.system == "job2"
        assert len(report.records) == record.spec.num_iterations
        assert report.throughput_tokens_per_s > 0
        assert report.encoder_padding_efficiency > 0
