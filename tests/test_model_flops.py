"""Tests for repro.model.flops."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.config import ModelArch, ModelConfig
from repro.model.flops import (
    LayerFlops,
    decoder_layer_flops,
    embedding_flops,
    encoder_layer_flops,
)


@pytest.fixture(scope="module")
def config() -> ModelConfig:
    return ModelConfig("test", ModelArch.T5, 4, 1024, 16, 64, 4096)


class TestLayerFlops:
    def test_scaled(self):
        cost = LayerFlops(100.0, 10.0, 3)
        doubled = cost.scaled(2.0)
        assert doubled.flops == 200.0
        assert doubled.bytes_moved == 20.0
        assert doubled.kernels == 3

    def test_add(self):
        total = LayerFlops(1.0, 2.0, 3) + LayerFlops(10.0, 20.0, 30)
        assert (total.flops, total.bytes_moved, total.kernels) == (11.0, 22.0, 33)


class TestEncoderLayerFlops:
    def test_zero_seq_len_is_free(self, config):
        cost = encoder_layer_flops(config, batch=4, seq_len=0)
        assert cost.flops == 0.0

    def test_linear_in_batch(self, config):
        one = encoder_layer_flops(config, batch=1, seq_len=256)
        four = encoder_layer_flops(config, batch=4, seq_len=256)
        assert four.flops == pytest.approx(4 * one.flops)

    def test_superlinear_in_seq_len(self, config):
        """Doubling the sequence length more than doubles the FLOPs because of
        the quadratic attention term (the effect behind the paper's Fig. 3)."""
        short = encoder_layer_flops(config, batch=1, seq_len=1024)
        long = encoder_layer_flops(config, batch=1, seq_len=2048)
        assert long.flops > 2.0 * short.flops

    def test_attention_share_grows_with_seq_len(self, config):
        """At long sequence lengths the per-token cost keeps rising."""
        per_token_short = encoder_layer_flops(config, 1, 512).flops / 512
        per_token_long = encoder_layer_flops(config, 1, 8192).flops / 8192
        assert per_token_long > per_token_short

    def test_invalid_batch(self, config):
        with pytest.raises(ValueError):
            encoder_layer_flops(config, batch=0, seq_len=128)

    @given(seq=st.integers(min_value=1, max_value=4096))
    @settings(max_examples=25, deadline=None)
    def test_flops_positive_and_monotone(self, seq):
        small_config = ModelConfig("test", ModelArch.GPT, 2, 512, 8, 64, 2048)
        shorter = encoder_layer_flops(small_config, 2, seq)
        longer = encoder_layer_flops(small_config, 2, seq + 32)
        assert shorter.flops > 0
        assert longer.flops > shorter.flops


class TestDecoderLayerFlops:
    def test_cross_attention_adds_cost(self, config):
        """A decoder layer with a long source sequence costs more than one
        with a short source (cross attention scales with source length)."""
        short_source = decoder_layer_flops(config, 2, target_len=128, source_len=64)
        long_source = decoder_layer_flops(config, 2, target_len=128, source_len=2048)
        assert long_source.flops > short_source.flops

    def test_zero_target_is_free(self, config):
        assert decoder_layer_flops(config, 2, 0, 512).flops == 0.0

    def test_decoder_more_expensive_than_encoder_same_lengths(self, config):
        enc = encoder_layer_flops(config, 2, 256)
        dec = decoder_layer_flops(config, 2, 256, 256)
        assert dec.flops > enc.flops


class TestEmbeddingFlops:
    def test_scales_with_vocab(self):
        small = ModelConfig("s", ModelArch.GPT, 2, 512, 8, 64, 2048, vocab_size=1000)
        large = ModelConfig("l", ModelArch.GPT, 2, 512, 8, 64, 2048, vocab_size=32000)
        assert embedding_flops(large, 1, 128).flops == pytest.approx(
            32 * embedding_flops(small, 1, 128).flops
        )
