"""Vectorized-engine equivalence and incremental re-simulation tests.

The vectorized timeline solver must be *bit-identical* to the scalar oracle
(op start/end times, makespan, busy/idle, peak activation memory), and the
incremental order-search scorer must match the legacy build-and-simulate
path exactly.  These properties are pinned with hypothesis over random
schedules and with the real GPT/T5 cost models across recompute modes.
"""

from __future__ import annotations

import itertools
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.network import NetworkModel
from repro.comm.shapes import TransferShapes
from repro.core.adaptive_schedule import AdaptiveScheduler, ScheduleKind
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape
from repro.schedule.cyclic import ScheduleDeadlockError, cyclic_schedule
from repro.schedule.events import OpType, PipelineSchedule, StageSchedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.simulator.compiled import SimulationError
from repro.simulator.engine import (
    clear_geometry_cache,
    engine_stats,
    reset_engine_stats,
    simulate_schedule,
    simulate_schedule_scalar,
)
from repro.simulator.incremental import IncrementalOrderSimulator


def _random_case(rng: random.Random):
    """One random schedule + simulation inputs derived from a seed."""
    num_stages = rng.randint(1, 5)
    num_microbatches = rng.randint(1, 8)
    activation = [
        [rng.uniform(1.0, 100.0) for _ in range(num_stages)]
        for _ in range(num_microbatches)
    ]
    if rng.random() < 0.4:
        schedule = one_f_one_b_schedule(num_stages, num_microbatches)
    else:
        order = list(range(num_microbatches))
        rng.shuffle(order)
        limits = None
        if rng.random() < 0.5:
            limits = [
                max(max(row[j] for row in activation) * rng.uniform(1.0, 3.0), 1.0)
                for j in range(num_stages)
            ]
        schedule = cyclic_schedule(
            num_stages, activation, memory_limits=limits, injection_order=order
        )
    durations = {}
    for op in schedule.all_ops():
        roll = rng.random()
        if roll < 0.05:
            durations[op] = 0.0  # exercise zero-length ops
        elif roll < 0.1:
            durations[op] = -rng.uniform(0.0, 1.0)  # engine clamps to zero
        else:
            durations[op] = rng.uniform(0.05, 10.0)
    comm_table = {
        (mb, src, dst, grad): rng.uniform(0.0, 2.0)
        for mb in range(num_microbatches)
        for src in range(num_stages)
        for dst in (src - 1, src + 1)
        for grad in (False, True)
        if 0 <= dst < num_stages
    }
    comm_time = (
        (lambda mb, src, dst, grad: comm_table[(mb, src, dst, grad)])
        if rng.random() < 0.7
        else None
    )
    static = (
        [rng.uniform(0.0, 50.0) for _ in range(num_stages)]
        if rng.random() < 0.5
        else None
    )
    return schedule, durations, comm_time, activation, static


class TestVectorScalarBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_schedules(self, seed):
        rng = random.Random(seed)
        schedule, durations, comm_time, activation, static = _random_case(rng)
        vector = simulate_schedule(
            schedule, durations, comm_time, activation, static, engine="vector"
        )
        scalar = simulate_schedule_scalar(
            schedule, durations, comm_time, activation, static
        )
        assert vector.makespan_ms == scalar.makespan_ms
        assert vector.device_busy_ms == scalar.device_busy_ms
        assert vector.device_idle_ms == scalar.device_idle_ms
        assert vector.peak_activation_bytes == scalar.peak_activation_bytes
        assert vector.op_times == scalar.op_times
        assert len(vector.trace.events) == len(scalar.trace.events)
        assert vector.bubble_fraction == scalar.bubble_fraction

    @pytest.mark.parametrize("model", ["gpt", "t5"])
    @pytest.mark.parametrize("recompute", [RecomputeMode.NONE, RecomputeMode.FULL])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_real_cost_models(self, request, model, recompute, seed):
        cost_model = request.getfixturevalue(f"{model}_cost_model")
        rng = random.Random(seed)
        num_microbatches = rng.randint(3, 6)
        shapes = [
            MicroBatchShape(
                batch_size=rng.randint(1, 8),
                enc_seq_len=rng.choice([128, 256, 512, 1024]),
                dec_seq_len=rng.choice([32, 64, 128]) if model == "t5" else 0,
            )
            for _ in range(num_microbatches)
        ]
        scheduler = AdaptiveScheduler(cost_model)
        build = scheduler.build(
            shapes, kind=ScheduleKind.MEMORY_AWARE_ADAPTIVE, recompute=recompute
        )
        transfer_shapes = TransferShapes.from_cost_model(cost_model, shapes)
        network = NetworkModel()

        def comm_time(mb, src, dst, is_grad):
            nbytes = (
                transfer_shapes.grad_bytes(mb, src)
                if is_grad
                else transfer_shapes.act_bytes(mb, src)
            )
            return network.p2p_time_ms(nbytes, same_node=True)

        static = [
            cost_model.stage_static_bytes(j) for j in range(cost_model.num_stages)
        ]
        vector = simulate_schedule(
            build.schedule, build.durations, comm_time, build.activation_bytes, static,
            engine="vector",
        )
        scalar = simulate_schedule_scalar(
            build.schedule, build.durations, comm_time, build.activation_bytes, static
        )
        assert vector.makespan_ms == scalar.makespan_ms
        assert vector.device_busy_ms == scalar.device_busy_ms
        assert vector.device_idle_ms == scalar.device_idle_ms
        assert vector.peak_activation_bytes == scalar.peak_activation_bytes
        assert vector.op_times == scalar.op_times

    def test_scalar_engine_selectable_via_argument(self):
        schedule = one_f_one_b_schedule(2, 3)
        scalar = simulate_schedule(schedule, lambda op: 1.0, engine="scalar")
        vector = simulate_schedule(schedule, lambda op: 1.0, engine="vector")
        assert scalar.makespan_ms == vector.makespan_ms

    def test_scalar_engine_selectable_via_env(self, monkeypatch):
        schedule = one_f_one_b_schedule(2, 3)
        reset_engine_stats()
        monkeypatch.setenv("REPRO_SIM_ENGINE", "scalar")
        simulate_schedule(schedule, lambda op: 1.0)
        stats = engine_stats()
        assert stats["scalar_simulations"] == 1
        assert stats["vector_simulations"] == 0

    def test_unknown_engine_rejected(self):
        schedule = one_f_one_b_schedule(2, 2)
        with pytest.raises(ValueError):
            simulate_schedule(schedule, lambda op: 1.0, engine="quantum")

    def test_duplicate_op_schedules_fall_back_to_scalar(self):
        # The scalar engine tolerates duplicate ops (last execution wins in
        # op_times); the vector path must preserve that behaviour.
        stages = [StageSchedule(stage=0)]
        stages[0].append(0, OpType.FORWARD)
        stages[0].append(0, OpType.FORWARD)
        stages[0].append(0, OpType.BACKWARD)
        schedule = PipelineSchedule(stages=stages, num_microbatches=1)
        vector = simulate_schedule(schedule, lambda op: 1.0, engine="vector")
        scalar = simulate_schedule_scalar(schedule, lambda op: 1.0)
        assert vector.op_times == scalar.op_times
        assert vector.makespan_ms == scalar.makespan_ms


class TestGeometryCache:
    def test_structural_reuse_across_schedule_objects(self):
        clear_geometry_cache()
        reset_engine_stats()
        activation = [[10.0, 10.0] for _ in range(4)]
        first = cyclic_schedule(2, activation)
        second = cyclic_schedule(2, activation)  # fresh, structurally identical
        simulate_schedule(first, lambda op: 1.0)
        assert engine_stats()["geometry_compiles"] == 1
        simulate_schedule(second, lambda op: 2.0)
        stats = engine_stats()
        assert stats["geometry_compiles"] == 1
        assert stats["geometry_cache_hits"] == 1
        # Same-object re-simulation (fleet iterations over one plan).
        simulate_schedule(first, lambda op: 3.0)
        stats = engine_stats()
        assert stats["geometry_compiles"] == 1
        assert stats["geometry_cache_hits"] == 2
        assert stats["timeline_solves"] == 3


class TestDeadlockDiagnostics:
    def _missing_dependency_schedule(self) -> PipelineSchedule:
        # Stage 0 runs micro-batch 1 only, stage 1 runs micro-batch 0 only:
        # B1@0 waits for B1@1 which never appears.
        stages = [StageSchedule(stage=0), StageSchedule(stage=1)]
        stages[0].append(1, OpType.FORWARD)
        stages[0].append(1, OpType.BACKWARD)
        stages[1].append(0, OpType.FORWARD)
        stages[1].append(0, OpType.BACKWARD)
        return PipelineSchedule(stages=stages, num_microbatches=2)

    def _misordered_schedule(self) -> PipelineSchedule:
        # Last stage lists the backward before its own forward.
        stages = [StageSchedule(stage=0), StageSchedule(stage=1)]
        stages[0].append(0, OpType.FORWARD)
        stages[0].append(0, OpType.BACKWARD)
        stages[1].append(0, OpType.BACKWARD)
        stages[1].append(0, OpType.FORWARD)
        return PipelineSchedule(stages=stages, num_microbatches=1)

    @pytest.mark.parametrize("engine", ["vector", "scalar"])
    def test_missing_dependency_named(self, engine):
        schedule = self._missing_dependency_schedule()
        with pytest.raises(SimulationError) as excinfo:
            simulate_schedule(schedule, lambda op: 1.0, engine=engine)
        message = str(excinfo.value)
        assert "B1@0" in message
        assert "B1@1" in message
        assert "never appears in the schedule" in message

    @pytest.mark.parametrize("engine", ["vector", "scalar"])
    def test_misordered_dependency_named(self, engine):
        schedule = self._misordered_schedule()
        with pytest.raises(SimulationError) as excinfo:
            simulate_schedule(schedule, lambda op: 1.0, engine=engine)
        message = str(excinfo.value)
        assert "B0@0" in message or "B0@1" in message
        assert "circular or misordered" in message


class TestIncrementalOrderSimulator:
    def _legacy_score(
        self, num_stages, activation, forward_ms, backward_ms, act_comm, grad_comm,
        limits, static, device_memory, order,
    ) -> float:
        try:
            schedule = cyclic_schedule(
                num_stages, activation, memory_limits=limits, injection_order=list(order)
            )
        except ScheduleDeadlockError:
            return float("inf")
        durations = {
            op: (
                forward_ms[op.microbatch, op.stage]
                if op.op_type is OpType.FORWARD
                else backward_ms[op.microbatch, op.stage]
            )
            for op in schedule.all_ops()
        }

        def comm_time(mb, src, dst, is_grad):
            return grad_comm[mb, src] if is_grad else act_comm[mb, src]

        result = simulate_schedule_scalar(
            schedule, durations, comm_time, activation, static
        )
        if device_memory is not None and any(
            peak > device_memory * (1.0 + 1e-9)
            for peak in result.peak_activation_bytes
        ):
            return float("inf")
        return result.makespan_ms

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_matches_from_scratch_after_perturbations(self, seed):
        rng = random.Random(seed)
        num_stages = rng.randint(2, 4)
        num_microbatches = rng.randint(2, 6)
        shape = (num_microbatches, num_stages)
        activation = np.array(
            [[rng.uniform(1, 100) for _ in range(num_stages)] for _ in range(num_microbatches)]
        )
        forward_ms = np.array(
            [[rng.uniform(0.5, 5) for _ in range(num_stages)] for _ in range(num_microbatches)]
        )
        backward_ms = forward_ms * rng.uniform(1.5, 2.5)
        act_comm = np.array(
            [[rng.uniform(0, 1) for _ in range(num_stages)] for _ in range(num_microbatches)]
        )
        grad_comm = np.array(
            [[rng.uniform(0, 1) for _ in range(num_stages)] for _ in range(num_microbatches)]
        )
        limits = None
        if rng.random() < 0.6:
            limits = [
                max(activation[:, j].max() * rng.uniform(1.0, 2.5), 1.0)
                for j in range(num_stages)
            ]
        static = [rng.uniform(0, 30) for _ in range(num_stages)]
        device_memory = rng.uniform(100, 400) if rng.random() < 0.5 else None
        simulator = IncrementalOrderSimulator(
            num_stages, activation, forward_ms, backward_ms, act_comm, grad_comm,
            memory_limits=limits, static_bytes=static,
            device_memory_bytes=device_memory,
        )
        orders = list(itertools.permutations(range(num_microbatches)))
        rng.shuffle(orders)
        for order in orders[:6]:
            incremental = simulator.score(order)
            legacy = self._legacy_score(
                num_stages, activation, forward_ms, backward_ms, act_comm, grad_comm,
                limits, static, device_memory, order,
            )
            assert incremental == legacy
        assert simulator.compiles <= simulator.solves


class TestPlannerIncrementalSearch:
    @pytest.fixture(scope="class")
    def search_samples(self, flan_samples_gpt):
        return flan_samples_gpt[:60]

    def test_incremental_matches_legacy_plan(self, gpt_cost_model, search_samples):
        base = dict(order_search=True, tmax_sample_count=8, max_order_permutations=12)
        incremental = DynaPipePlanner(
            gpt_cost_model,
            config=PlannerConfig(incremental_order_search=True, **base),
        ).plan(search_samples)
        legacy = DynaPipePlanner(
            gpt_cost_model,
            config=PlannerConfig(incremental_order_search=False, **base),
        ).plan(search_samples)
        assert incremental.predicted_iteration_ms == legacy.predicted_iteration_ms
        assert incremental.recompute == legacy.recompute
        for inc_replica, leg_replica in zip(incremental.replicas, legacy.replicas):
            assert inc_replica.ordering_search is not None
            assert leg_replica.ordering_search is not None
            assert inc_replica.ordering_search.order == leg_replica.ordering_search.order
            assert (
                inc_replica.ordering_search.makespan_ms
                == leg_replica.ordering_search.makespan_ms
            )
            assert (
                inc_replica.simulation.makespan_ms == leg_replica.simulation.makespan_ms
            )

    def test_search_does_not_rebuild_schedule_per_permutation(
        self, gpt_cost_model, search_samples
    ):
        planner = DynaPipePlanner(
            gpt_cost_model,
            config=PlannerConfig(
                order_search=True, tmax_sample_count=8, max_order_permutations=12
            ),
        )
        build_calls = {"count": 0}
        original_build = planner.scheduler.build

        def counting_build(*args, **kwargs):
            build_calls["count"] += 1
            return original_build(*args, **kwargs)

        planner.scheduler.build = counting_build
        plan = planner.plan(search_samples)
        searches = [
            replica.ordering_search
            for replica in plan.replicas
            if replica.ordering_search is not None
        ]
        assert searches, "expected the order search to run"
        evaluated = sum(search.evaluated for search in searches)
        assert evaluated > 1
        # The incremental path never rebuilds the schedule while scoring:
        # builds happen only for feasibility checks and the final chosen
        # order, bounded well below one-build-per-permutation.
        assert build_calls["count"] < evaluated
        for search in searches:
            assert search.geometry_compiles is not None
            assert search.timeline_solves is not None
            assert search.timeline_solves == search.evaluated
            assert 1 <= search.geometry_compiles <= search.timeline_solves

    def test_engine_counter_shows_geometry_reuse(self, gpt_cost_model, search_samples):
        planner = DynaPipePlanner(
            gpt_cost_model,
            config=PlannerConfig(
                order_search=True, tmax_sample_count=8, max_order_permutations=12
            ),
        )
        reset_engine_stats()
        plan = planner.plan(search_samples)
        stats = engine_stats()
        searches = [
            replica.ordering_search
            for replica in plan.replicas
            if replica.ordering_search is not None and replica.ordering_search.evaluated > 1
        ]
        assert searches
        # Solves grow with permutations scored; compiled geometries do not.
        assert stats["timeline_solves"] > stats["geometry_compiles"]
