"""Chaos-harness tests: fault plans, storms, planner faults, backoff, aging.

Covers the fault-injection side of the crash-resilience tentpole — the
fault-plan grammar and its generators, the injector lowering onto the
scheduler's event machinery, the seeded storm + rack-outage acceptance
scenario (≥10 jobs, all terminal, no leaked devices, MTTR accounting) —
plus the graceful-degradation satellites: planner-worker kills falling
back to inline planning, transient store plan losses driving the retry
path, planning backoff/deadline semantics, regrowth hysteresis and
priority aging.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.core.recomputation import OutOfMemoryError
from repro.data.sampler import MiniBatchSampler
from repro.fleet import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FleetConfig,
    FleetScheduler,
    JobSpec,
    JobState,
    PreemptivePriorityPolicy,
    failure_storm,
    rack_outage,
    random_fault_plan,
)
from repro.instructions.store import InstructionStore, PlanFailedError
from repro.parallel.config import ParallelConfig
from repro.runtime.planner_pool import PlannerPool

from test_fleet_checkpoint import assert_reports_identical


@pytest.fixture(scope="module")
def planner_config():
    return PlannerConfig(order_search=False, tmax_sample_count=8)


def make_spec(pp2_cost_model, fleet_samples, planner_config, **overrides):
    defaults = dict(
        name="job",
        cost_model=pp2_cost_model,
        samples=fleet_samples,
        global_batch_tokens=4096,
        parallel=ParallelConfig(1, 2, 1),
        num_iterations=3,
        planner_config=planner_config,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


# ---------------------------------------------------------------------- grammar


class TestFaultPlanGrammar:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="time_ms"):
            FaultEvent(time_ms=-1.0, kind="failure", device=0)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(time_ms=0.0, kind="meteor", device=0)
        with pytest.raises(ValueError, match="device"):
            FaultEvent(time_ms=0.0, kind="failure")
        with pytest.raises(ValueError, match="node"):
            FaultEvent(time_ms=0.0, kind="rack_outage")
        with pytest.raises(ValueError, match="count"):
            FaultEvent(time_ms=0.0, kind="planner_kill", count=0)
        with pytest.raises(ValueError, match="repair_after_ms"):
            FaultEvent(time_ms=0.0, kind="failure", device=0, repair_after_ms=0.0)

    def test_to_dict_omits_defaults(self):
        assert FaultEvent(time_ms=1.0, kind="failure", device=3).to_dict() == {
            "time_ms": 1.0,
            "kind": "failure",
            "device": 3,
        }
        full = FaultEvent(
            time_ms=2.0, kind="rack_outage", node=1, repair_after_ms=5.0
        ).to_dict()
        assert full == {
            "time_ms": 2.0,
            "kind": "rack_outage",
            "node": 1,
            "repair_after_ms": 5.0,
        }

    def test_plan_round_trips_through_dicts(self):
        plan = FaultPlan(
            events=[
                FaultEvent(time_ms=1.0, kind="failure", device=0, repair_after_ms=4.0),
                FaultEvent(time_ms=2.0, kind="planner_kill", count=2),
                FaultEvent(time_ms=3.0, kind="rack_outage", node=0),
            ],
            seed=7,
            description="scripted",
        )
        rebuilt = FaultPlan.from_dicts(plan.to_dicts(), seed=7, description="scripted")
        assert rebuilt.events == plan.events
        assert rebuilt.seed == plan.seed
        assert len(rebuilt) == 3

    def test_merge_sorts_by_time_stably(self):
        first = FaultPlan(
            events=[
                FaultEvent(time_ms=5.0, kind="failure", device=0),
                FaultEvent(time_ms=1.0, kind="failure", device=1),
            ],
            description="a",
        )
        second = FaultPlan(
            events=[FaultEvent(time_ms=5.0, kind="repair", device=0)], description="b"
        )
        merged = first.merge(second)
        assert [e.time_ms for e in merged.events] == [1.0, 5.0, 5.0]
        # Stable: at the tied instant, first-plan events precede second-plan.
        assert [e.kind for e in merged.events] == ["failure", "failure", "repair"]
        assert merged.description == "a + b"

    def test_counts(self):
        plan = FaultPlan(
            events=[
                FaultEvent(time_ms=0.0, kind="failure", device=0),
                FaultEvent(time_ms=1.0, kind="failure", device=1),
                FaultEvent(time_ms=2.0, kind="store_error"),
            ]
        )
        assert plan.counts() == {"failure": 2, "store_error": 1}


class TestFaultGenerators:
    def test_storm_is_seed_deterministic(self):
        first = failure_storm(8, seed=11, duration_ms=50_000.0)
        second = failure_storm(8, seed=11, duration_ms=50_000.0)
        assert first.events == second.events
        assert first.seed == 11
        assert failure_storm(8, seed=12, duration_ms=50_000.0).events != first.events

    def test_storm_respects_window_and_device_range(self):
        plan = failure_storm(
            4, seed=3, start_ms=10.0, duration_ms=30_000.0, rate_per_s=1.0
        )
        assert len(plan) > 0
        for event in plan.events:
            assert event.kind == "failure"
            assert 10.0 <= event.time_ms < 10.0 + 30_000.0
            assert 0 <= event.device < 4
            assert event.repair_after_ms == 5_000.0

    def test_storm_validation(self):
        with pytest.raises(ValueError, match="num_devices"):
            failure_storm(0, seed=1)
        with pytest.raises(ValueError, match="rate_per_s"):
            failure_storm(4, seed=1, rate_per_s=0.0)

    def test_rack_outage_plan(self):
        plan = rack_outage(node=1, time_ms=30.0, repair_after_ms=10.0)
        assert len(plan) == 1
        assert plan.events[0].kind == "rack_outage"
        assert plan.events[0].node == 1

    def test_random_fault_plan_is_seed_deterministic(self, small_device):
        topology = ClusterTopology.for_num_gpus(8, gpus_per_node=4, device_spec=small_device)
        first = random_fault_plan(topology, seed=5)
        second = random_fault_plan(topology, seed=5)
        assert first.events == second.events
        assert first.seed == 5


class TestFaultInjectorLowering:
    def test_plan_lowers_to_scheduler_events(self, small_device):
        topology = ClusterTopology.for_num_gpus(8, gpus_per_node=4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        plan = FaultPlan(
            events=[
                FaultEvent(time_ms=1.0, kind="failure", device=0, repair_after_ms=4.0),
                FaultEvent(time_ms=2.0, kind="rack_outage", node=1, repair_after_ms=6.0),
                FaultEvent(time_ms=3.0, kind="arrival", device=2),
                FaultEvent(time_ms=4.0, kind="repair", device=3),
                FaultEvent(time_ms=5.0, kind="planner_kill", count=2),
                FaultEvent(time_ms=6.0, kind="store_error"),
            ]
        )
        counts = FaultInjector(plan).apply(scheduler)
        # rack_outage of a 4-GPU node lowers to 4 failures + 4 repairs.
        assert len(scheduler._failures) == 1 + 4
        assert len(scheduler._repairs) == 1 + 4 + 1
        assert len(scheduler._arrivals) == 1
        assert len(scheduler._planner_faults) == 2
        assert counts == plan.counts()

    def test_apply_after_run_raises(self, small_device):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        scheduler.run()
        plan = FaultPlan(events=[FaultEvent(time_ms=1.0, kind="failure", device=0)])
        with pytest.raises(RuntimeError):
            FaultInjector(plan).apply(scheduler)


# ---------------------------------------------------------------------- storm scenario


def storm_specs(pp2_cost_model, fleet_samples, planner_config):
    """Ten dp1-pp2 jobs — the acceptance scenario's workload."""
    return [
        make_spec(
            pp2_cost_model,
            fleet_samples,
            planner_config,
            name=f"job{i}",
            num_iterations=2,
            seed=i,
            max_retries=4,
        )
        for i in range(10)
    ]


def run_storm(pp2_cost_model, fleet_samples, planner_config, small_device):
    topology = ClusterTopology.for_num_gpus(8, gpus_per_node=4, device_spec=small_device)
    plan = failure_storm(
        8, seed=17, start_ms=5.0, duration_ms=80.0, rate_per_s=60.0, repair_after_ms=12.0
    ).merge(rack_outage(node=1, time_ms=35.0, repair_after_ms=15.0))

    def invariant(scheduler: FleetScheduler) -> None:
        # The 4-way device partition (free/busy/failed/absent) must hold
        # at *every* event boundary, not just at the end.
        scheduler.allocator.check_consistent()

    scheduler = FleetScheduler(topology, FleetConfig(on_event=invariant))
    for spec in storm_specs(pp2_cost_model, fleet_samples, planner_config):
        scheduler.submit(spec)
    counts = FaultInjector(plan).apply(scheduler)
    return scheduler, scheduler.run(), counts


@pytest.fixture(scope="module")
def storm_run(pp2_cost_model, fleet_samples, planner_config, small_device):
    return run_storm(pp2_cost_model, fleet_samples, planner_config, small_device)


class TestStormScenario:
    """Seeded storm + correlated rack outage over a 10-job fleet."""

    def test_storm_actually_stormed(self, storm_run):
        _, report, counts = storm_run
        assert counts["failure"] >= 3
        assert counts["rack_outage"] == 1
        assert report.total_preemptions >= 1

    def test_every_job_reaches_a_terminal_state(self, storm_run):
        scheduler, report, _ = storm_run
        assert len(report.jobs) == 10
        for job in report.jobs:
            assert job.state in (JobState.FINISHED, JobState.FAILED), job.name
        assert report.finished_jobs + report.failed_jobs == 10
        assert report.finished_jobs >= 1
        assert not scheduler._pending and not scheduler._running

    def test_no_devices_leaked(self, storm_run):
        scheduler, _, _ = storm_run
        allocator = scheduler.allocator
        allocator.check_consistent()
        assert allocator.busy_count == 0
        assert allocator.free_count == allocator.alive_count

    def test_mttr_and_fault_accounting(self, storm_run):
        _, report, _ = storm_run
        assert report.devices_repaired >= 1
        assert len(report.repair_durations_ms) == report.devices_repaired
        assert report.mttr_ms > 0.0
        assert all(d > 0.0 for d in report.repair_durations_ms)
        summary = report.summary()
        assert summary["mttr_ms"] == report.mttr_ms
        assert "planner_faults" in summary
        assert summary["devices_repaired"] == report.devices_repaired

    def test_storm_replays_bit_identically(
        self, storm_run, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        _, report, _ = storm_run
        _, replay, _ = run_storm(
            pp2_cost_model, fleet_samples, planner_config, small_device
        )
        assert_reports_identical(replay, report)


# ---------------------------------------------------------------------- planner faults


class TestPlannerKillDegradation:
    def test_dead_pool_degrades_to_inline_planning(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """Killing every planning-cluster worker mid-run degrades the
        fleet to inline planning instead of failing jobs."""
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(
            topology,
            FleetConfig(
                shared_planner_pool=True, planner_processes=2, planner_backend="thread"
            ),
        )
        record = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config, num_iterations=4
            )
        )
        scheduler.inject_planner_fault(16.0, "planner_kill", count=2)
        report = scheduler.run()
        assert record.state == JobState.FINISHED
        assert record.degraded_iterations >= 1
        assert report.total_degraded_iterations == record.degraded_iterations
        assert report.planner_faults_injected == 1
        [fault] = report.fault_log
        assert fault["kind"] == "planner_kill"
        assert fault["applied"] >= 1
        assert report.jobs[0].degraded_iterations == record.degraded_iterations

    def test_kill_validation(self, small_device):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        with pytest.raises(ValueError, match="kind"):
            scheduler.inject_planner_fault(1.0, "segfault")
        with pytest.raises(ValueError):
            scheduler.inject_planner_fault(-1.0, "planner_kill")
        with pytest.raises(ValueError):
            scheduler.inject_planner_fault(1.0, "planner_kill", count=0)


class TestStoreErrorFault:
    def test_plan_loss_is_retried_to_completion(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """A transient store error poisons the pending plan; the job's
        attempt fails planning, retries and finishes."""
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(
            topology,
            FleetConfig(
                shared_planner_pool=True, planner_processes=1, planner_backend="thread"
            ),
        )
        record = scheduler.submit(
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                num_iterations=4,
                max_retries=3,
            )
        )
        scheduler.inject_planner_fault(16.0, "store_error")
        report = scheduler.run()
        assert record.state == JobState.FINISHED
        assert record.retries >= 1
        assert any(a.outcome == "plan_failure" for a in record.attempts)
        [fault] = report.fault_log
        assert fault["kind"] == "store_error"
        assert fault["applied"] >= 1
        # Committed progress survives the poisoned attempt: the job still
        # trains exactly its target number of iterations.
        assert record.checkpoint.completed_iterations == 4


# ---------------------------------------------------------------------- backoff / deadline


class _FlakyPlanner:
    """Fails the first ``failures`` plan() calls, then delegates."""

    def __init__(self, inner, box):
        self._inner = inner
        self._box = box

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def plan(self, samples, iteration=0):
        if self._box[0] > 0:
            self._box[0] -= 1
            raise OutOfMemoryError("synthetic transient planning failure")
        return self._inner.plan(samples, iteration)


def flaky_factory(failures: int):
    box = [failures]

    def factory(spec, data_parallel):
        return _FlakyPlanner(
            DynaPipePlanner(
                spec.cost_model,
                data_parallel_size=data_parallel,
                config=spec.planner_config,
            ),
            box,
        )

    return factory


class _ExplodingPlanner:
    """A planner that can never produce a plan."""

    def __init__(self, cost_model, data_parallel_size):
        self.cost_model = cost_model
        self.data_parallel_size = data_parallel_size

    def plan(self, samples, iteration=0):
        raise OutOfMemoryError("synthetic planning failure")


class TestPlanningBackoff:
    def test_backoff_delays_grow_exponentially(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(
            topology,
            FleetConfig(planning_backoff_base_ms=8.0, planning_backoff_factor=2.0),
        )
        record = scheduler.submit(
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                max_retries=5,
                planner_factory=flaky_factory(2),
            )
        )
        scheduler.run()
        assert record.state == JobState.FINISHED
        assert record.planning_retries == 2
        # Without a deadline the retry budget is still charged.
        assert record.retries == 2
        # The streak resets once an iteration commits.
        assert record.planning_failure_streak == 0
        assert record.planning_failed_since_ms is None
        failures, success = record.attempts[:2], record.attempts[2]
        assert [a.outcome for a in failures] == ["plan_failure", "plan_failure"]
        # 1st retry waits >= base, 2nd >= base × factor.
        assert failures[1].admitted_ms - failures[0].ended_ms >= 8.0
        assert success.admitted_ms - failures[1].ended_ms >= 16.0
        assert success.outcome == "finished"

    def test_backoff_jitter_is_seed_deterministic(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        def run_once():
            topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
            scheduler = FleetScheduler(
                topology,
                FleetConfig(
                    planning_backoff_base_ms=8.0,
                    planning_backoff_jitter=0.5,
                    seed=42,
                ),
            )
            record = scheduler.submit(
                make_spec(
                    pp2_cost_model,
                    fleet_samples,
                    planner_config,
                    max_retries=5,
                    planner_factory=flaky_factory(2),
                )
            )
            scheduler.run()
            return record

        first, second = run_once(), run_once()
        assert first.state == JobState.FINISHED
        assert [a.admitted_ms for a in first.attempts] == [
            a.admitted_ms for a in second.attempts
        ]
        # Jitter actually stretched the waits beyond the un-jittered delay.
        assert first.attempts[1].admitted_ms - first.attempts[0].ended_ms >= 8.0


class TestPlanningDeadline:
    def test_deadline_bounds_wall_time_not_retry_budget(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(
            topology,
            FleetConfig(planning_backoff_base_ms=4.0, planning_backoff_factor=2.0),
        )
        record = scheduler.submit(
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                name="doomed",
                max_retries=0,
                planning_deadline_ms=50.0,
                planner_factory=lambda spec, dp: _ExplodingPlanner(spec.cost_model, dp),
            )
        )
        report = scheduler.run()
        assert record.state == JobState.FAILED
        assert "planning deadline exceeded" in record.failure_reason
        # Wall time, not the retry budget, bounded the job: with
        # max_retries=0 the legacy path would have failed it on the first
        # planning error.
        assert record.retries == 0
        assert record.planning_retries >= 2
        assert record.finished_ms >= 50.0
        assert report.failed_jobs == 1
        scheduler.allocator.check_consistent()
        assert scheduler.allocator.busy_count == 0

    def test_deadline_requires_backoff(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """A deadline without backoff would livelock (retry at the same
        instant forever); submit() rejects the combination."""
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        with pytest.raises(ValueError, match="planning_backoff_base_ms"):
            scheduler.submit(
                make_spec(
                    pp2_cost_model,
                    fleet_samples,
                    planner_config,
                    planning_deadline_ms=50.0,
                )
            )


# ---------------------------------------------------------------------- hysteresis / aging


class TestRegrowthHysteresis:
    def test_hysteresis_defers_regrowth(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """With ``regrow_min_boundaries=3`` a shrunk job must commit three
        boundaries before regrowing; by default it regrows at the first
        boundary after capacity returns."""

        def run_once(**config_overrides):
            topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
            scheduler = FleetScheduler(
                topology, FleetConfig(repair_delay_ms=10.0, **config_overrides)
            )
            record = scheduler.submit(
                make_spec(
                    pp2_cost_model,
                    fleet_samples,
                    planner_config,
                    name="elastic",
                    parallel=ParallelConfig(2, 2, 1),
                    global_batch_tokens=8192,
                    num_iterations=6,
                    elastic=True,
                )
            )
            scheduler.inject_device_failure(2.0, 1)
            return record, scheduler.run()

        eager_record, eager_report = run_once()
        damped_record, damped_report = run_once(regrow_min_boundaries=3)
        assert eager_report.total_regrows == 1
        assert damped_report.total_regrows == 1
        eager_shrunk = eager_record.attempts[1]
        damped_shrunk = damped_record.attempts[1]
        assert eager_shrunk.iterations_completed < 3
        assert damped_shrunk.iterations_completed >= 3
        # The damped job regrows later but still finishes every iteration.
        assert damped_record.state == JobState.FINISHED
        assert damped_record.checkpoint.completed_iterations == 6

    def test_validation(self, small_device):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        with pytest.raises(ValueError, match="regrow_min_boundaries"):
            FleetScheduler(topology, FleetConfig(regrow_min_boundaries=-1))


class TestPriorityAging:
    def _specs(self, pp2_cost_model, fleet_samples, planner_config):
        return [
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                name="filler",
                priority=5,
                num_iterations=3,
            ),
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                name="lo",
                priority=0,
                num_iterations=2,
            ),
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                name="hi",
                priority=3,
                num_iterations=2,
                submit_time_ms=40.0,
            ),
        ]

    def _run(self, pp2_cost_model, fleet_samples, planner_config, small_device, aging):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(
            topology, FleetConfig(policy="priority", priority_aging_ms=aging)
        )
        for spec in self._specs(pp2_cost_model, fleet_samples, planner_config):
            scheduler.submit(spec)
        report = scheduler.run()
        return scheduler, report

    def test_aging_prevents_starvation_by_newer_high_priority_jobs(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """Without aging the late high-priority job always outranks the
        long-waiting background job; with aging the background job's
        waiting time wins it the seat."""
        strict, strict_report = self._run(
            pp2_cost_model, fleet_samples, planner_config, small_device, None
        )
        aged, aged_report = self._run(
            pp2_cost_model, fleet_samples, planner_config, small_device, 12.0
        )
        assert strict_report.finished_jobs == 3
        assert aged_report.finished_jobs == 3
        strict_lo = strict.jobs["lo"]
        strict_hi = strict.jobs["hi"]
        aged_lo = aged.jobs["lo"]
        aged_hi = aged.jobs["hi"]
        assert strict_hi.first_admitted_ms < strict_lo.first_admitted_ms
        assert aged_lo.first_admitted_ms < aged_hi.first_admitted_ms

    def test_effective_priority_grows_with_waiting(self):
        policy = PreemptivePriorityPolicy(aging_ms=10.0)

        class _FakeSpec:
            priority = 1

        class _FakeRecord:
            spec = _FakeSpec()
            last_queued_ms = 0.0

        record = _FakeRecord()
        assert policy.effective_priority(record, 0.0) == 1.0
        assert policy.effective_priority(record, 25.0) == pytest.approx(3.5)

    def test_validation(self, small_device):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        with pytest.raises(ValueError, match="priority"):
            FleetScheduler(
                topology, FleetConfig(policy="fifo", priority_aging_ms=10.0)
            )
        with pytest.raises(ValueError, match="aging_ms"):
            PreemptivePriorityPolicy(aging_ms=0.0)


# ---------------------------------------------------------------------- pool primitives


@pytest.fixture(scope="module")
def pool_planner(pp2_cost_model):
    return DynaPipePlanner(
        pp2_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
    )


@pytest.fixture(scope="module")
def pool_minibatches(fleet_samples):
    sampler = MiniBatchSampler(fleet_samples, 4096, seed=0)
    batches = []
    for minibatch in sampler.epoch(0):
        batches.append(minibatch.samples)
        if len(batches) >= 4:
            break
    return batches


def _wait_until(predicate, timeout=60.0):
    deadline = time.time() + timeout
    while not predicate() and time.time() < deadline:
        time.sleep(0.01)
    return predicate()


class TestPlannerPoolChaosPrimitives:
    def test_kill_workers_counts_and_stops_planning(self, pool_planner, pool_minibatches):
        pool = PlannerPool(
            planner=pool_planner,
            minibatches=pool_minibatches,
            num_workers=2,
            backend="thread",
            lookahead=1,
        )
        assert pool.kill_workers() == 0  # not started yet: nothing to kill
        pool.start()
        try:
            assert "replicas" in pool.wait_payload(0)
            killed = pool.kill_workers(1)
            assert killed == 1
            assert pool.live_workers() == 1
            assert pool.kill_workers() == 1
            assert pool.live_workers() == 0
        finally:
            pool.stop()

    def test_wait_payload_fails_fast_when_every_worker_is_dead(
        self, pool_planner, pool_minibatches
    ):
        pool = PlannerPool(
            planner=pool_planner,
            minibatches=pool_minibatches,
            num_workers=1,
            backend="thread",
            lookahead=1,
        )
        pool.start()
        try:
            pool.wait_payload(0)
            pool.kill_workers()
            # Iteration 3 is beyond the lookahead window, so it was never
            # planned; a dead pool must fail fast, not spin out the timeout.
            started = time.perf_counter()
            with pytest.raises(PlanFailedError, match="workers are dead"):
                pool.wait_payload(3, timeout=60.0)
            assert time.perf_counter() - started < 30.0
        finally:
            pool.stop()

    def test_inject_plan_loss_poisons_exactly_one_iteration(
        self, pool_planner, pool_minibatches
    ):
        store = InstructionStore()
        pool = PlannerPool(num_workers=1, backend="thread", store=store)
        pool.submit_job("victim", pool_planner, pool_minibatches, lookahead=4)
        pool.start()
        try:
            assert _wait_until(
                lambda: len(pool.planned_iterations(job="victim")) >= 2
            )
            assert pool.inject_plan_loss("victim", 1) is True
            with pytest.raises(PlanFailedError):
                pool.wait_payload(1, job="victim", timeout=10.0)
            # Iteration 0 is untouched.
            assert "replicas" in pool.wait_payload(0, job="victim")
            # Re-poisoning the failed iteration is a no-op.
            assert pool.inject_plan_loss("victim", 1) is False
            # Unknown streams and out-of-range iterations are no-ops.
            assert pool.inject_plan_loss("nobody", 0) is False
            assert pool.inject_plan_loss("victim", 99) is False
        finally:
            pool.stop()

    def test_inject_plan_loss_skips_consumed_iterations(
        self, pool_planner, pool_minibatches
    ):
        store = InstructionStore()
        pool = PlannerPool(num_workers=1, backend="thread", store=store)
        pool.submit_job("victim", pool_planner, pool_minibatches, lookahead=4)
        pool.start()
        try:
            pool.wait_payload(0, job="victim")
            pool.notify_consumed(0, job="victim")
            assert pool.inject_plan_loss("victim", 0) is False
        finally:
            pool.stop()
