"""Tests for repro.model.memory."""

from __future__ import annotations

import pytest

from repro.model.config import ModelArch, ModelConfig
from repro.model.memory import (
    RecomputeMode,
    activation_bytes_per_layer,
    activation_components,
    optimizer_state_bytes,
    parameter_bytes,
    static_stage_bytes,
    weight_gradient_bytes,
)


@pytest.fixture(scope="module")
def config() -> ModelConfig:
    return ModelConfig("test", ModelArch.GPT, 8, 1024, 16, 64, 4096)


class TestRecomputeMode:
    def test_backward_factors_ordered(self):
        assert (
            RecomputeMode.NONE.backward_flop_factor
            < RecomputeMode.SELECTIVE.backward_flop_factor
            < RecomputeMode.FULL.backward_flop_factor
        )

    def test_full_factor_is_three(self):
        assert RecomputeMode.FULL.backward_flop_factor == pytest.approx(3.0)


class TestStaticMemory:
    def test_parameter_bytes_scale_with_layers(self, config):
        assert parameter_bytes(config, 4) == pytest.approx(2 * parameter_bytes(config, 2))

    def test_tensor_parallel_shards_parameters(self, config):
        assert parameter_bytes(config, 4, tensor_parallel=2) == pytest.approx(
            parameter_bytes(config, 4) / 2
        )

    def test_optimizer_state_larger_than_params(self, config):
        """Adam fp32 state (12 B/param) dominates fp16 weights (2 B/param)."""
        assert optimizer_state_bytes(config, 4) == pytest.approx(6 * parameter_bytes(config, 4))

    def test_zero_shards_reduce_optimizer_state(self, config):
        full = optimizer_state_bytes(config, 4)
        sharded = optimizer_state_bytes(config, 4, zero_shards=4)
        assert sharded == pytest.approx(full / 4)

    def test_gradient_bytes_equal_parameter_bytes(self, config):
        # Both are 2 bytes per parameter in fp16.
        assert weight_gradient_bytes(config, 4) == pytest.approx(parameter_bytes(config, 4))

    def test_static_stage_bytes_sum(self, config):
        total = static_stage_bytes(config, 4, workspace_bytes=0.0)
        expected = (
            parameter_bytes(config, 4)
            + weight_gradient_bytes(config, 4)
            + optimizer_state_bytes(config, 4)
        )
        assert total == pytest.approx(expected)

    def test_invalid_inputs(self, config):
        with pytest.raises(ValueError):
            parameter_bytes(config, 0)
        with pytest.raises(ValueError):
            optimizer_state_bytes(config, 2, zero_shards=0)


class TestActivationMemory:
    def test_components_total_ordering(self, config):
        components = activation_components(config, batch=2, seq_len=512)
        none = components.total(RecomputeMode.NONE)
        selective = components.total(RecomputeMode.SELECTIVE)
        full = components.total(RecomputeMode.FULL)
        assert full < selective < none

    def test_full_recompute_keeps_only_boundary(self, config):
        components = activation_components(config, batch=2, seq_len=512)
        assert components.total(RecomputeMode.FULL) == pytest.approx(components.boundary)

    def test_selective_drops_quadratic_term(self, config):
        components = activation_components(config, batch=2, seq_len=512)
        assert components.total(RecomputeMode.SELECTIVE) == pytest.approx(
            components.boundary + components.attention_linear + components.ffn
        )

    def test_scores_scale_quadratically(self, config):
        short = activation_components(config, 1, 512).attention_scores
        long = activation_components(config, 1, 1024).attention_scores
        assert long == pytest.approx(4 * short)

    def test_boundary_scales_linearly(self, config):
        short = activation_components(config, 1, 512).boundary
        long = activation_components(config, 1, 1024).boundary
        assert long == pytest.approx(2 * short)

    def test_zero_seq_len(self, config):
        assert activation_bytes_per_layer(config, 1, 0) == 0.0

    def test_bool_compatibility(self, config):
        """The boolean ``recompute`` argument maps to NONE/FULL."""
        assert activation_bytes_per_layer(config, 2, 256, recompute=True) == pytest.approx(
            activation_bytes_per_layer(config, 2, 256, recompute=RecomputeMode.FULL)
        )
        assert activation_bytes_per_layer(config, 2, 256, recompute=False) == pytest.approx(
            activation_bytes_per_layer(config, 2, 256, recompute=RecomputeMode.NONE)
        )

    def test_tensor_parallel_shards_non_boundary(self, config):
        full = activation_components(config, 2, 512, tensor_parallel=1)
        sharded = activation_components(config, 2, 512, tensor_parallel=4)
        assert sharded.boundary == pytest.approx(full.boundary)
        assert sharded.ffn == pytest.approx(full.ffn / 4)
        assert sharded.attention_scores == pytest.approx(full.attention_scores / 4)

    def test_cross_attention_kv_len(self, config):
        """Decoder cross-attention activation grows with the source length."""
        short = activation_bytes_per_layer(config, 2, 128, kv_len=128)
        long = activation_bytes_per_layer(config, 2, 128, kv_len=2048)
        assert long > short
