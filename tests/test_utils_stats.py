"""Tests for repro.utils.stats."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    RunningStat,
    geometric_mean,
    mean,
    mean_percentage_error,
    percentile,
)


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert mean([5.0]) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_accepts_generator(self):
        assert mean(x for x in (2.0, 4.0)) == pytest.approx(3.0)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identical_values(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == pytest.approx(2.0)

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_single_element(self):
        assert percentile([7.0], 75) == 7.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestMeanPercentageError:
    def test_exact_predictions(self):
        assert mean_percentage_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_error(self):
        # 10% and 30% absolute errors -> mean 20%.
        assert mean_percentage_error([1.1, 0.7], [1.0, 1.0]) == pytest.approx(20.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_percentage_error([1.0], [1.0, 2.0])

    def test_zero_measurement_rejected(self):
        with pytest.raises(ValueError):
            mean_percentage_error([1.0], [0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_percentage_error([], [])


class TestRunningStat:
    def test_mean_and_std(self):
        stat = RunningStat()
        stat.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stat.mean == pytest.approx(5.0)
        assert stat.std == pytest.approx(2.0)

    def test_min_max(self):
        stat = RunningStat()
        stat.extend([3.0, -1.0, 10.0])
        assert stat.min_value == -1.0
        assert stat.max_value == 10.0

    def test_empty_stat(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.variance == 0.0

    def test_merge_matches_bulk(self):
        a, b, c = RunningStat(), RunningStat(), RunningStat()
        a.extend([1.0, 2.0, 3.0])
        b.extend([10.0, 20.0])
        c.extend([1.0, 2.0, 3.0, 10.0, 20.0])
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean)
        assert merged.variance == pytest.approx(c.variance)

    def test_merge_with_empty(self):
        a, b = RunningStat(), RunningStat()
        a.extend([1.0, 2.0])
        merged = a.merge(b)
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_mean_matches_numpy_definition(self, values):
        stat = RunningStat()
        stat.extend(values)
        assert stat.mean == pytest.approx(sum(values) / len(values), rel=1e-9, abs=1e-6)

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30),
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30),
    )
    def test_merge_is_equivalent_to_concatenation(self, left, right):
        a, b, c = RunningStat(), RunningStat(), RunningStat()
        a.extend(left)
        b.extend(right)
        c.extend(left + right)
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-6)
        assert math.sqrt(max(merged.variance, 0.0)) == pytest.approx(c.std, rel=1e-6, abs=1e-3)
