"""Tests for repro.simulator.memory_tracker and repro.simulator.trace."""

from __future__ import annotations

import pytest

from repro.simulator.memory_tracker import MemoryAccountingError, MemoryTracker
from repro.simulator.trace import ExecutionTrace, TraceEvent


class TestMemoryTracker:
    def test_peak_tracking(self):
        tracker = MemoryTracker()
        tracker.allocate("a", 10)
        tracker.allocate("b", 20)
        tracker.free("a")
        tracker.allocate("c", 5)
        assert tracker.peak_bytes == 30
        assert tracker.current_bytes == 25

    def test_static_bytes_included(self):
        tracker = MemoryTracker(static_bytes=100)
        assert tracker.current_bytes == 100
        tracker.allocate("a", 50)
        assert tracker.peak_bytes == 150

    def test_free_returns_size(self):
        tracker = MemoryTracker()
        tracker.allocate("a", 42)
        assert tracker.free("a") == 42

    def test_double_allocate_rejected(self):
        tracker = MemoryTracker()
        tracker.allocate("a", 1)
        with pytest.raises(MemoryAccountingError):
            tracker.allocate("a", 1)

    def test_free_unknown_rejected(self):
        with pytest.raises(MemoryAccountingError):
            MemoryTracker().free("missing")

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker().allocate("a", -1)

    def test_capacity_exceeded_flag(self):
        tracker = MemoryTracker(capacity=100)
        tracker.allocate("a", 60)
        assert not tracker.exceeded_capacity
        tracker.allocate("b", 60)
        assert tracker.exceeded_capacity

    def test_live_allocations(self):
        tracker = MemoryTracker()
        tracker.allocate("a", 1)
        tracker.allocate("b", 1)
        tracker.free("a")
        assert tracker.live_allocations == 1


class TestExecutionTrace:
    def make_trace(self) -> ExecutionTrace:
        trace = ExecutionTrace()
        trace.add(TraceEvent(device=0, name="F0", start_ms=0, end_ms=2, microbatch=0))
        trace.add(TraceEvent(device=0, name="B0", start_ms=4, end_ms=6, microbatch=0))
        trace.add(TraceEvent(device=1, name="F0", start_ms=2, end_ms=4, microbatch=0))
        trace.add(
            TraceEvent(device=0, name="send-act-0", start_ms=2, end_ms=3, category="comm", microbatch=0)
        )
        return trace

    def test_makespan(self):
        assert self.make_trace().makespan_ms() == 6

    def test_empty_trace(self):
        assert ExecutionTrace().makespan_ms() == 0.0
        assert ExecutionTrace().render_gantt() == "(empty trace)"

    def test_device_events_sorted(self):
        events = self.make_trace().device_events(0)
        assert [e.start_ms for e in events] == sorted(e.start_ms for e in events)

    def test_device_busy_by_category(self):
        trace = self.make_trace()
        assert trace.device_busy_ms(0, "compute") == 4
        assert trace.device_busy_ms(0, "comm") == 1

    def test_num_devices(self):
        assert self.make_trace().num_devices() == 2

    def test_to_dicts(self):
        payload = self.make_trace().to_dicts()
        assert len(payload) == 4
        assert {"device", "name", "start_ms", "end_ms", "category", "microbatch"} <= set(
            payload[0]
        )

    def test_render_gantt_has_one_row_per_device(self):
        rendered = self.make_trace().render_gantt(width=20)
        assert len(rendered.splitlines()) == 2
        assert "dev 0" in rendered

    def test_event_duration(self):
        event = TraceEvent(device=0, name="x", start_ms=1.0, end_ms=3.5)
        assert event.duration_ms == 2.5
