"""Tests for the memory-aware adaptive scheduler wrapper (paper §5)."""

from __future__ import annotations

import pytest

from repro.core.adaptive_schedule import AdaptiveScheduler, ScheduleKind, build_schedule
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape
from repro.schedule.events import OpType
from repro.schedule.validation import validate_schedule
from repro.simulator.engine import simulate_schedule


@pytest.fixture(scope="module")
def shapes():
    return [
        MicroBatchShape(batch_size=4, enc_seq_len=128),
        MicroBatchShape(batch_size=2, enc_seq_len=512),
        MicroBatchShape(batch_size=1, enc_seq_len=1024),
        MicroBatchShape(batch_size=8, enc_seq_len=64),
        MicroBatchShape(batch_size=2, enc_seq_len=256),
        MicroBatchShape(batch_size=1, enc_seq_len=896),
    ]


class TestInputs:
    def test_activation_matrix_shape(self, gpt_cost_model, shapes):
        scheduler = AdaptiveScheduler(gpt_cost_model)
        matrix = scheduler.activation_matrix(shapes, RecomputeMode.NONE)
        assert len(matrix) == len(shapes)
        assert all(len(row) == gpt_cost_model.num_stages for row in matrix)
        assert all(value > 0 for row in matrix for value in row)

    def test_duration_map_complete(self, gpt_cost_model, shapes):
        scheduler = AdaptiveScheduler(gpt_cost_model)
        durations = scheduler.duration_map(shapes, RecomputeMode.NONE)
        assert len(durations) == 2 * len(shapes) * gpt_cost_model.num_stages
        assert all(value > 0 for value in durations.values())

    def test_memory_limits_match_budget(self, gpt_cost_model):
        scheduler = AdaptiveScheduler(gpt_cost_model, device_memory_bytes=6 * 1024**3)
        limits = scheduler.memory_limits()
        for stage, limit in enumerate(limits):
            assert limit == pytest.approx(
                gpt_cost_model.activation_budget_bytes(stage, 6 * 1024**3)
            )


class TestBuild:
    @pytest.mark.parametrize("kind", list(ScheduleKind))
    def test_all_kinds_produce_valid_schedules(self, gpt_cost_model, shapes, kind):
        result = build_schedule(gpt_cost_model, shapes, kind=kind)
        validate_schedule(result.schedule)
        assert result.schedule.num_microbatches == len(shapes)

    def test_1f1b_has_no_memory_limits(self, gpt_cost_model, shapes):
        result = build_schedule(gpt_cost_model, shapes, kind=ScheduleKind.ONE_F_ONE_B)
        assert result.memory_limits is None
        assert result.schedule.name == "1f1b"

    def test_memory_aware_records_limits(self, gpt_cost_model, shapes):
        result = build_schedule(gpt_cost_model, shapes, kind=ScheduleKind.MEMORY_AWARE_ADAPTIVE)
        assert result.memory_limits is not None
        assert len(result.memory_limits) == gpt_cost_model.num_stages

    def test_injection_order_honoured(self, gpt_cost_model, shapes):
        order = [3, 0, 5, 1, 4, 2]
        result = build_schedule(
            gpt_cost_model, shapes, kind=ScheduleKind.ADAPTIVE, injection_order=order
        )
        assert result.schedule.injection_order() == order

    def test_empty_shapes_rejected(self, gpt_cost_model):
        with pytest.raises(ValueError):
            build_schedule(gpt_cost_model, [])

    def test_memory_aware_peak_below_1f1b_when_memory_tight(self, gpt_cost_model):
        """With a small device the memory-aware schedule's simulated peak
        activation memory stays within budget and below the unrestricted
        adaptive schedule's peak (Fig. 11c vs 11b)."""
        shapes = [MicroBatchShape(batch_size=8, enc_seq_len=512)] * 8
        scheduler = AdaptiveScheduler(gpt_cost_model)
        budget = scheduler.memory_limits()

        unrestricted = scheduler.build(shapes, kind=ScheduleKind.ADAPTIVE)
        aware = scheduler.build(shapes, kind=ScheduleKind.MEMORY_AWARE_ADAPTIVE)

        sim_unrestricted = simulate_schedule(
            unrestricted.schedule, unrestricted.durations,
            activation_bytes=unrestricted.activation_bytes,
        )
        sim_aware = simulate_schedule(
            aware.schedule, aware.durations, activation_bytes=aware.activation_bytes
        )
        assert max(sim_aware.peak_activation_bytes) <= max(
            sim_unrestricted.peak_activation_bytes
        )
        for stage, peak in enumerate(sim_aware.peak_activation_bytes):
            assert peak <= budget[stage] * (1 + 1e-9)

    def test_recompute_mode_shrinks_activations(self, gpt_cost_model, shapes):
        scheduler = AdaptiveScheduler(gpt_cost_model)
        none_matrix = scheduler.activation_matrix(shapes, RecomputeMode.NONE)
        full_matrix = scheduler.activation_matrix(shapes, RecomputeMode.FULL)
        assert all(
            full < none
            for none_row, full_row in zip(none_matrix, full_matrix)
            for none, full in zip(none_row, full_row)
        )

    def test_adaptive_injects_before_1f1b(self, gpt_cost_model, shapes):
        """The unrestricted adaptive schedule runs more forwards before the
        first backward on the first stage than 1F1B does (its safety-stock
        advantage comes from early injection)."""
        adaptive = build_schedule(gpt_cost_model, shapes * 2, kind=ScheduleKind.ADAPTIVE)
        one_f = build_schedule(gpt_cost_model, shapes * 2, kind=ScheduleKind.ONE_F_ONE_B)

        def forwards_before_first_backward(schedule):
            count = 0
            for op in schedule.stage(0).ops:
                if op.op_type is OpType.BACKWARD:
                    break
                count += 1
            return count

        assert forwards_before_first_backward(adaptive.schedule) >= forwards_before_first_backward(
            one_f.schedule
        )
