"""Tests for the 1F1B schedule and the schedule representation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.events import OpType, PipelineSchedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.schedule.validation import validate_schedule


class TestEvents:
    def test_injection_order(self):
        schedule = one_f_one_b_schedule(2, 4)
        assert schedule.injection_order() == [0, 1, 2, 3]

    def test_total_ops(self):
        schedule = one_f_one_b_schedule(3, 5)
        assert schedule.total_ops() == 2 * 3 * 5

    def test_forward_backward_positions(self):
        stage = one_f_one_b_schedule(2, 3).stage(0)
        forwards = stage.forward_positions()
        backwards = stage.backward_positions()
        assert set(forwards) == set(backwards) == {0, 1, 2}
        assert all(forwards[mb] < backwards[mb] for mb in forwards)


class TestOneFOneB:
    def test_single_stage_alternates(self):
        schedule = one_f_one_b_schedule(1, 3)
        ops = [(op.op_type, op.microbatch) for op in schedule.stage(0).ops]
        assert ops == [
            (OpType.FORWARD, 0),
            (OpType.BACKWARD, 0),
            (OpType.FORWARD, 1),
            (OpType.BACKWARD, 1),
            (OpType.FORWARD, 2),
            (OpType.BACKWARD, 2),
        ]

    def test_warmup_forward_counts(self):
        """Stage j starts with (c - j) consecutive forwards: its c-1-j warm-up
        forwards plus the first steady-state forward."""
        c, m = 4, 8
        schedule = one_f_one_b_schedule(c, m)
        for stage_index in range(c):
            ops = schedule.stage(stage_index).ops
            initial_forwards = 0
            for op in ops:
                if op.op_type is OpType.FORWARD:
                    initial_forwards += 1
                else:
                    break
            assert initial_forwards == c - stage_index

    def test_last_stage_strict_alternation(self):
        schedule = one_f_one_b_schedule(4, 6)
        ops = schedule.stage(3).ops
        types = [op.op_type for op in ops]
        assert types == [OpType.FORWARD, OpType.BACKWARD] * 6

    def test_in_flight_bounded_by_stage_distance(self):
        """Stage j never holds more than (c - j) forward activations."""
        c, m = 4, 10
        schedule = one_f_one_b_schedule(c, m)
        for j in range(c):
            in_flight = 0
            max_in_flight = 0
            for op in schedule.stage(j).ops:
                if op.op_type is OpType.FORWARD:
                    in_flight += 1
                else:
                    in_flight -= 1
                max_in_flight = max(max_in_flight, in_flight)
            assert max_in_flight <= c - j

    def test_fewer_microbatches_than_stages(self):
        schedule = one_f_one_b_schedule(4, 2)
        validate_schedule(schedule)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            one_f_one_b_schedule(0, 4)
        with pytest.raises(ValueError):
            one_f_one_b_schedule(4, 0)

    @given(stages=st.integers(1, 8), microbatches=st.integers(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_always_valid(self, stages, microbatches):
        schedule = one_f_one_b_schedule(stages, microbatches)
        validate_schedule(schedule)
        assert schedule.name == "1f1b"
