"""Tests for the MLM+DS packing baseline."""

from __future__ import annotations

import pytest

from repro.baselines.mlm_ds import BaselineConfig, MLMDeepSpeedBaseline
from repro.comm.deadlock import check_comm_order
from repro.core.recomputation import OutOfMemoryError
from repro.model.memory import RecomputeMode


@pytest.fixture(scope="module")
def baseline(gpt_cost_model):
    return MLMDeepSpeedBaseline(
        gpt_cost_model,
        config=BaselineConfig(max_seq_len=1024, micro_batch_size=2, recompute=RecomputeMode.FULL),
    )


class TestBaselinePlanning:
    def test_plan_structure(self, baseline, flan_samples_gpt):
        plan = baseline.plan(flan_samples_gpt[:80], iteration=5)
        assert len(plan.replicas) == 1
        assert plan.plans[0].metadata.schedule_name == "1f1b"
        assert plan.plans[0].metadata.iteration == 5
        assert plan.recompute is RecomputeMode.FULL
        assert plan.dp_solution is None

    def test_all_microbatch_rows_padded_to_max(self, baseline, flan_samples_gpt):
        plan = baseline.plan(flan_samples_gpt[:80])
        for mb in plan.all_micro_batches():
            assert mb.enc_seq_len == 1024

    def test_comm_order_consistent(self, baseline, flan_samples_gpt):
        plan = baseline.plan(flan_samples_gpt[:80])
        assert check_comm_order(plan.plans[0].device_instructions).consistent

    def test_micro_batch_size_respected(self, baseline, flan_samples_gpt):
        plan = baseline.plan(flan_samples_gpt[:80])
        for mb in plan.all_micro_batches():
            assert mb.batch_size <= 2

    def test_data_parallel_split(self, gpt_cost_model, flan_samples_gpt):
        baseline = MLMDeepSpeedBaseline(
            gpt_cost_model,
            data_parallel_size=2,
            config=BaselineConfig(max_seq_len=1024, micro_batch_size=2, recompute=RecomputeMode.FULL),
        )
        plan = baseline.plan(flan_samples_gpt[:120])
        assert len(plan.replicas) == 2
        assert all(replica.micro_batches for replica in plan.replicas)
        assert plan.data_parallel_comm_ms > 0

    def test_oom_for_oversized_microbatch(self, gpt_cost_model, flan_samples_gpt):
        """A huge micro-batch size at a long packing length OOMs under 1F1B,
        matching the OOM points in the paper's Fig. 5."""
        baseline = MLMDeepSpeedBaseline(
            gpt_cost_model,
            config=BaselineConfig(
                max_seq_len=2048, micro_batch_size=64, recompute=RecomputeMode.NONE
            ),
        )
        with pytest.raises(OutOfMemoryError):
            baseline.plan(list(flan_samples_gpt))

    def test_empty_minibatch_rejected(self, baseline):
        with pytest.raises(ValueError):
            baseline.plan([])

    def test_requires_config(self, gpt_cost_model):
        with pytest.raises(ValueError):
            MLMDeepSpeedBaseline(gpt_cost_model)

    def test_static_memory_overflow_rejected(self, tiny_gpt_config):
        from repro.costmodel.cost_model import CostModel

        cost_model = CostModel(
            tiny_gpt_config, num_stages=2, max_profile_batch_size=4, max_profile_seq_len=128
        )
        with pytest.raises(OutOfMemoryError):
            MLMDeepSpeedBaseline(
                cost_model,
                config=BaselineConfig(
                    max_seq_len=128, micro_batch_size=1, device_memory_bytes=1 * 1024**2
                ),
            )


class TestBaselineVsDynaPipe:
    def test_dynapipe_predicts_higher_throughput(self, gpt_cost_model, flan_samples_gpt):
        """The headline comparison (paper Fig. 13): on the same mini-batch and
        cost model, DynaPipe's predicted time per real token is lower than the
        packing baseline's."""
        from repro.core.planner import DynaPipePlanner, PlannerConfig

        samples = flan_samples_gpt[:150]
        baseline = MLMDeepSpeedBaseline(
            gpt_cost_model,
            config=BaselineConfig(max_seq_len=1024, micro_batch_size=2, recompute=RecomputeMode.FULL),
        )
        dynapipe = DynaPipePlanner(
            gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        base_plan = baseline.plan(samples)
        dyna_plan = dynapipe.plan(samples)
        tokens = sum(s.total_tokens for s in samples)
        base_time_per_token = base_plan.predicted_iteration_ms / tokens
        dyna_time_per_token = dyna_plan.predicted_iteration_ms / tokens
        assert dyna_time_per_token < base_time_per_token

    def test_t5_baseline_padding_imbalance(self, t5_cost_model, flan_samples):
        """Packing achieves much lower decoder-side padding efficiency than
        encoder-side for T5 (paper Fig. 15b)."""
        baseline = MLMDeepSpeedBaseline(
            t5_cost_model,
            config=BaselineConfig(max_seq_len=1024, micro_batch_size=2, recompute=RecomputeMode.FULL),
        )
        plan = baseline.plan(flan_samples[:150])
        assert plan.padding.decoder_efficiency is not None
        assert plan.padding.decoder_efficiency < plan.padding.encoder_efficiency
