"""Tests for the communication planner, shapes and static deadlock checker."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.deadlock import check_comm_order
from repro.comm.planner import build_instruction_streams, build_naive_instruction_streams
from repro.comm.shapes import TransferShapes
from repro.instructions.ops import (
    BackwardPass,
    ForwardPass,
    RecvActStart,
    SendActStart,
    WaitRecvAct,
    WaitRecvGrad,
    _CommStart,
)
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape
from repro.schedule.cyclic import cyclic_schedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.simulator.engine import simulate_schedule

SHAPE = MicroBatchShape(batch_size=2, enc_seq_len=128)


def uniform_transfer_shapes(num_microbatches: int, num_stages: int) -> TransferShapes:
    return TransferShapes(
        activation_bytes=[[64.0] * num_stages for _ in range(num_microbatches)],
        gradient_bytes=[[64.0] * num_stages for _ in range(num_microbatches)],
    )


def planned_streams(schedule, shapes=None):
    shapes = shapes or [SHAPE] * schedule.num_microbatches
    transfer_shapes = uniform_transfer_shapes(schedule.num_microbatches, schedule.num_stages)
    sim = simulate_schedule(schedule, lambda op: 1.0)
    return build_instruction_streams(schedule, sim.op_times, shapes, transfer_shapes)


class TestTransferShapes:
    def test_from_cost_model_gpt(self, gpt_cost_model):
        shapes = [MicroBatchShape(2, 256), MicroBatchShape(4, 128)]
        transfer = TransferShapes.from_cost_model(gpt_cost_model, shapes)
        assert transfer.act_bytes(0, 0) > 0
        # Gradient into stage j has the size of the activation out of stage j-1.
        assert transfer.grad_bytes(0, 1) == pytest.approx(transfer.act_bytes(0, 0))
        # The last stage sends no activation forward.
        last = gpt_cost_model.num_stages - 1
        assert transfer.act_bytes(0, last) == 0.0
        # The first stage receives no gradient.
        assert transfer.grad_bytes(0, 0) == 0.0

    def test_larger_microbatch_larger_transfers(self, gpt_cost_model):
        small, large = MicroBatchShape(1, 128), MicroBatchShape(4, 128)
        transfer = TransferShapes.from_cost_model(gpt_cost_model, [small, large])
        assert transfer.act_bytes(1, 0) > transfer.act_bytes(0, 0)


class TestPlannedStreams:
    def test_streams_contain_all_compute_ops(self):
        schedule = one_f_one_b_schedule(3, 4)
        streams = planned_streams(schedule)
        compute = [i for stream in streams for i in stream if i.is_compute]
        assert len(compute) == schedule.total_ops()

    def test_compute_order_preserved(self):
        schedule = cyclic_schedule(3, [[1.0] * 3 for _ in range(5)])
        streams = planned_streams(schedule)
        for device, stream in enumerate(streams):
            compute = [
                (type(i).__name__, i.microbatch) for i in stream if i.is_compute
            ]
            expected = [
                ("ForwardPass" if op.op_type.value == "F" else "BackwardPass", op.microbatch)
                for op in schedule.stage(device).ops
            ]
            assert compute == expected

    def test_every_receive_has_wait_before_consumer(self):
        schedule = one_f_one_b_schedule(3, 4)
        streams = planned_streams(schedule)
        for device in range(1, 3):
            stream = streams[device]
            for position, instr in enumerate(stream):
                if isinstance(instr, ForwardPass):
                    # The immediately preceding instruction is the WaitRecvAct.
                    assert isinstance(stream[position - 1], WaitRecvAct)
                    assert stream[position - 1].microbatch == instr.microbatch

    def test_backward_waits_for_gradient(self):
        schedule = one_f_one_b_schedule(3, 4)
        streams = planned_streams(schedule)
        for device in range(2):  # all but the last stage
            stream = streams[device]
            for position, instr in enumerate(stream):
                if isinstance(instr, BackwardPass):
                    assert isinstance(stream[position - 1], WaitRecvGrad)

    def test_sends_and_receives_balanced(self):
        schedule = cyclic_schedule(4, [[1.0] * 4 for _ in range(6)])
        streams = planned_streams(schedule)
        starts = [i for stream in streams for i in stream if isinstance(i, _CommStart)]
        sends = [i for i in starts if i.is_send]
        recvs = [i for i in starts if not i.is_send]
        # 2 transfers per adjacent pair per micro-batch, each with 1 send + 1 recv.
        assert len(sends) == len(recvs) == 2 * 3 * 6

    def test_comm_order_consistent_for_1f1b(self):
        schedule = one_f_one_b_schedule(4, 8)
        report = check_comm_order(planned_streams(schedule))
        assert report.consistent
        assert report.channels_checked == 3

    def test_comm_order_consistent_for_adaptive(self):
        schedule = cyclic_schedule(4, [[1.0] * 4 for _ in range(9)], memory_limits=[3.0] * 4)
        report = check_comm_order(planned_streams(schedule))
        assert report.consistent

    def test_recompute_mode_propagated(self):
        schedule = one_f_one_b_schedule(2, 2)
        shapes = [SHAPE, SHAPE]
        transfer_shapes = uniform_transfer_shapes(2, 2)
        sim = simulate_schedule(schedule, lambda op: 1.0)
        streams = build_instruction_streams(
            schedule, sim.op_times, shapes, transfer_shapes, recompute=RecomputeMode.FULL
        )
        compute = [i for stream in streams for i in stream if i.is_compute]
        assert all(i.recompute is RecomputeMode.FULL for i in compute)

    def test_per_microbatch_recompute_modes(self):
        schedule = one_f_one_b_schedule(2, 2)
        shapes = [SHAPE, SHAPE]
        transfer_shapes = uniform_transfer_shapes(2, 2)
        sim = simulate_schedule(schedule, lambda op: 1.0)
        streams = build_instruction_streams(
            schedule,
            sim.op_times,
            shapes,
            transfer_shapes,
            recompute=[RecomputeMode.NONE, RecomputeMode.FULL],
        )
        modes = {
            i.microbatch: i.recompute
            for stream in streams
            for i in stream
            if isinstance(i, ForwardPass)
        }
        assert modes[0] is RecomputeMode.NONE
        assert modes[1] is RecomputeMode.FULL

    def test_shape_count_mismatch_rejected(self):
        schedule = one_f_one_b_schedule(2, 3)
        transfer_shapes = uniform_transfer_shapes(3, 2)
        sim = simulate_schedule(schedule, lambda op: 1.0)
        with pytest.raises(ValueError):
            build_instruction_streams(schedule, sim.op_times, [SHAPE], transfer_shapes)

    @given(
        stages=st.integers(2, 5),
        microbatches=st.integers(1, 10),
        limit=st.floats(min_value=1.0, max_value=10.0),
        order_seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_planned_order_always_consistent(self, stages, microbatches, limit, order_seed):
        """Property (paper §6): the ahead-of-time planned communication order
        is consistent on every channel for any adaptive schedule, injection
        order and micro-batch mix."""
        import numpy as np

        rng = np.random.default_rng(order_seed)
        activation = [[float(rng.uniform(0.2, 1.0))] * stages for _ in range(microbatches)]
        order = list(rng.permutation(microbatches))
        schedule = cyclic_schedule(
            stages, activation, memory_limits=[limit] * stages, injection_order=[int(x) for x in order]
        )
        durations = {op: float(rng.uniform(0.5, 3.0)) for op in schedule.all_ops()}
        sim = simulate_schedule(schedule, durations)
        shapes = [MicroBatchShape(1, 32)] * microbatches
        transfer_shapes = uniform_transfer_shapes(microbatches, stages)
        streams = build_instruction_streams(schedule, sim.op_times, shapes, transfer_shapes)
        assert check_comm_order(streams).consistent


class TestNaiveStreams:
    def test_naive_streams_have_all_compute_ops(self):
        schedule = cyclic_schedule(3, [[1.0] * 3 for _ in range(4)])
        shapes = [SHAPE] * 4
        streams = build_naive_instruction_streams(
            schedule, shapes, uniform_transfer_shapes(4, 3)
        )
        compute = [i for stream in streams for i in stream if i.is_compute]
        assert len(compute) == schedule.total_ops()

    def test_naive_order_mismatch_detected_statically(self):
        schedule = cyclic_schedule(4, [[1.0] * 4 for _ in range(8)])
        shapes = [SHAPE] * 8
        streams = build_naive_instruction_streams(
            schedule, shapes, uniform_transfer_shapes(8, 4)
        )
        report = check_comm_order(streams)
        assert not report.consistent
        assert report.mismatches


class TestCheckCommOrder:
    def test_consistent_trivial_exchange(self):
        streams = [
            [SendActStart(microbatch=0, stage=0, peer=1, nbytes=1.0)],
            [RecvActStart(microbatch=0, stage=1, peer=0, nbytes=1.0)],
        ]
        report = check_comm_order(streams)
        assert report.consistent
        assert report.channels_checked == 1

    def test_unbalanced_channel_detected(self):
        streams = [
            [SendActStart(microbatch=0, stage=0, peer=1, nbytes=1.0)],
            [],
        ]
        report = check_comm_order(streams)
        assert not report.consistent
        assert report.mismatches[0]["reason"] == "unequal number of posted transfers"

    def test_empty_streams(self):
        report = check_comm_order([[], []])
        assert report.consistent
        assert report.channels_checked == 0
