"""Edge-case tests for the planner and baseline under unusual inputs."""

from __future__ import annotations

import pytest

from repro.baselines.mlm_ds import BaselineConfig, MLMDeepSpeedBaseline
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.data.tasks import Sample
from repro.model.memory import RecomputeMode


@pytest.fixture(scope="module")
def fast_config():
    return PlannerConfig(order_search=False, tmax_sample_count=8)


class TestTinyMiniBatches:
    def test_single_sample_minibatch(self, gpt_cost_model, fast_config):
        planner = DynaPipePlanner(gpt_cost_model, config=fast_config)
        plan = planner.plan([Sample(input_tokens=300, target_tokens=20)])
        assert plan.num_microbatches == 1
        assert plan.predicted_iteration_ms > 0

    def test_fewer_samples_than_replicas_uses_fallback(self, gpt_cost_model, fast_config):
        """With 2 replicas and 2 very different samples every replica still
        gets at least one micro-batch (the non-empty rebalance fallback)."""
        planner = DynaPipePlanner(gpt_cost_model, data_parallel_size=2, config=fast_config)
        plan = planner.plan([Sample(900, 50), Sample(30, 5)])
        assert len(plan.replicas) == 2
        assert all(replica.micro_batches for replica in plan.replicas)

    def test_more_replicas_than_samples_raises(self, gpt_cost_model, fast_config):
        from repro.core.recomputation import OutOfMemoryError

        planner = DynaPipePlanner(gpt_cost_model, data_parallel_size=4, config=fast_config)
        with pytest.raises(OutOfMemoryError):
            planner.plan([Sample(100, 10)])

    def test_identical_samples(self, gpt_cost_model, fast_config):
        planner = DynaPipePlanner(gpt_cost_model, config=fast_config)
        plan = planner.plan([Sample(256, 16)] * 32)
        assert plan.padding.overall_efficiency == pytest.approx(1.0)

    def test_extreme_length_mix(self, gpt_cost_model, fast_config):
        """One huge sample among many tiny ones still plans and isolates the
        huge sample in its own micro-batch."""
        samples = [Sample(8, 2)] * 40 + [Sample(1800, 100)]
        planner = DynaPipePlanner(gpt_cost_model, config=fast_config)
        plan = planner.plan(samples)
        shapes = plan.plans[0].microbatch_shapes
        largest = max(shapes, key=lambda s: s.enc_seq_len)
        assert largest.batch_size == 1
        assert largest.enc_seq_len >= 1900


class TestBaselineEdgeCases:
    def test_single_sample(self, gpt_cost_model):
        baseline = MLMDeepSpeedBaseline(
            gpt_cost_model,
            config=BaselineConfig(max_seq_len=1024, micro_batch_size=4, recompute=RecomputeMode.FULL),
        )
        plan = baseline.plan([Sample(200, 20)])
        assert plan.num_microbatches == 1

    def test_all_samples_longer_than_packing_budget(self, gpt_cost_model):
        """If every sample exceeds the packing length (dataloader forgot to
        truncate), packing drops them all and planning fails loudly."""
        baseline = MLMDeepSpeedBaseline(
            gpt_cost_model,
            config=BaselineConfig(max_seq_len=128, micro_batch_size=2, recompute=RecomputeMode.FULL),
        )
        with pytest.raises(ValueError):
            baseline.plan([Sample(500, 50), Sample(600, 60)])

    def test_t5_default_target_budget(self, t5_cost_model, flan_samples):
        baseline = MLMDeepSpeedBaseline(
            t5_cost_model,
            config=BaselineConfig(max_seq_len=1024, micro_batch_size=2, recompute=RecomputeMode.FULL),
        )
        plan = baseline.plan(flan_samples[:60])
        for mb in plan.all_micro_batches():
            assert mb.dec_seq_len == 1024 // 4
