"""Tests for repro.batching.base (MicroBatch)."""

from __future__ import annotations

import pytest

from repro.batching.base import BatchingResult, MicroBatch
from repro.data.tasks import Sample


class TestMicroBatchConstruction:
    def test_from_samples_one_row_each(self):
        mb = MicroBatch.from_samples([Sample(10, 2), Sample(20, 4)])
        assert mb.batch_size == 2
        assert mb.num_samples == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MicroBatch.from_samples([])
        with pytest.raises(ValueError):
            MicroBatch(rows=[[]])


class TestShapes:
    def test_encoder_decoder_shape(self):
        mb = MicroBatch.from_samples([Sample(10, 2), Sample(20, 8)], decoder_only=False)
        shape = mb.shape()
        assert shape.batch_size == 2
        assert shape.enc_seq_len == 20
        assert shape.dec_seq_len == 8

    def test_decoder_only_shape_concatenates(self):
        mb = MicroBatch.from_samples([Sample(10, 2), Sample(20, 8)], decoder_only=True)
        shape = mb.shape()
        assert shape.enc_seq_len == 28
        assert shape.dec_seq_len == 0

    def test_pad_override(self):
        mb = MicroBatch(
            rows=[[Sample(10, 2)]], decoder_only=False, pad_enc_to=128, pad_dec_to=16
        )
        assert mb.enc_seq_len == 128
        assert mb.dec_seq_len == 16

    def test_pad_override_too_small_rejected(self):
        mb = MicroBatch(rows=[[Sample(100, 2)]], pad_enc_to=50)
        with pytest.raises(ValueError):
            _ = mb.enc_seq_len

    def test_packed_row_lengths_summed(self):
        # Two samples packed into one row: the row length is the sum.
        mb = MicroBatch(rows=[[Sample(10, 2), Sample(30, 4)]], decoder_only=False)
        assert mb.enc_seq_len == 40
        assert mb.dec_seq_len == 6
        assert mb.batch_size == 1
        assert mb.num_samples == 2


class TestTokenAccounting:
    def test_actual_tokens(self):
        mb = MicroBatch.from_samples([Sample(10, 2), Sample(20, 8)])
        assert mb.actual_tokens() == 40

    def test_padded_tokens_encoder_decoder(self):
        mb = MicroBatch.from_samples([Sample(10, 2), Sample(20, 8)], decoder_only=False)
        assert mb.padded_tokens() == 2 * (20 + 8)

    def test_padding_efficiency_perfect_when_uniform(self):
        mb = MicroBatch.from_samples([Sample(16, 4), Sample(16, 4)], decoder_only=False)
        assert mb.padding_efficiency() == pytest.approx(1.0)

    def test_padding_efficiency_decreases_with_mismatch(self):
        uniform = MicroBatch.from_samples([Sample(16, 4), Sample(16, 4)])
        skewed = MicroBatch.from_samples([Sample(16, 4), Sample(160, 40)])
        assert skewed.padding_efficiency() < uniform.padding_efficiency()

    def test_enc_dec_token_split(self):
        mb = MicroBatch.from_samples([Sample(10, 2), Sample(20, 8)], decoder_only=False)
        assert mb.actual_enc_tokens() == 30
        assert mb.actual_dec_tokens() == 10

    def test_decoder_only_all_tokens_count_as_encoder(self):
        mb = MicroBatch.from_samples([Sample(10, 2)], decoder_only=True)
        assert mb.actual_enc_tokens() == 12
        assert mb.actual_dec_tokens() == 0


class TestBatchingResult:
    def test_totals(self):
        result = BatchingResult(
            micro_batches=[
                MicroBatch.from_samples([Sample(10, 0)]),
                MicroBatch.from_samples([Sample(30, 0)]),
            ]
        )
        assert result.total_actual_tokens() == 40
        assert result.total_padded_tokens() == 40
