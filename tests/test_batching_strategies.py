"""Tests for the baseline batching strategies (padding, packing, token-based,
fixed-size) and the padding metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batching.fixed_size import FixedSizeBatching
from repro.batching.metrics import padding_stats
from repro.batching.packing import PackingBatching
from repro.batching.padding import NaivePaddingBatching
from repro.batching.token_based import TokenBasedBatching, sort_by_length
from repro.data.tasks import Sample


def mixed_samples() -> list[Sample]:
    """A small mixture of short and long samples (both dimensions)."""
    return [
        Sample(20, 4, "short"),
        Sample(35, 6, "short"),
        Sample(900, 60, "summ"),
        Sample(50, 8, "qa"),
        Sample(400, 30, "summ"),
        Sample(25, 4, "short"),
        Sample(1000, 70, "summ"),
        Sample(60, 10, "qa"),
    ]


def samples_strategy():
    return st.lists(
        st.builds(
            Sample,
            input_tokens=st.integers(min_value=1, max_value=2048),
            target_tokens=st.integers(min_value=0, max_value=512),
        ),
        min_size=1,
        max_size=40,
    )


class TestNaivePadding:
    def test_every_sample_in_exactly_one_microbatch(self):
        result = NaivePaddingBatching(micro_batch_size=3).split(mixed_samples())
        assert sum(mb.num_samples for mb in result.micro_batches) == len(mixed_samples())

    def test_all_microbatches_padded_to_global_max(self):
        result = NaivePaddingBatching(micro_batch_size=3).split(mixed_samples())
        max_input = max(s.input_tokens for s in mixed_samples())
        assert all(mb.enc_seq_len == max_input for mb in result.micro_batches)

    def test_extreme_padding_waste_on_mixed_lengths(self):
        """Naive padding on FLAN-like mixtures wastes most tokens (paper §2.1)."""
        result = NaivePaddingBatching(micro_batch_size=4).split(mixed_samples())
        stats = padding_stats(result.micro_batches)
        assert stats.overall_efficiency < 0.5

    def test_micro_batch_size_respected(self):
        result = NaivePaddingBatching(micro_batch_size=3).split(mixed_samples())
        assert all(mb.batch_size <= 3 for mb in result.micro_batches)

    def test_empty_input(self):
        assert NaivePaddingBatching(4).split([]).micro_batches == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            NaivePaddingBatching(0)


class TestPacking:
    def test_rows_fit_within_budget(self):
        packer = PackingBatching(max_seq_len=1024, micro_batch_size=4)
        rows, dropped = packer.pack_rows(mixed_samples())
        assert not dropped
        for row in rows:
            assert sum(s.input_tokens for s in row) <= 1024

    def test_packing_reduces_rows_vs_samples(self):
        packer = PackingBatching(max_seq_len=1024, micro_batch_size=4)
        rows, _ = packer.pack_rows(mixed_samples())
        assert len(rows) < len(mixed_samples())

    def test_oversized_sample_dropped(self):
        packer = PackingBatching(max_seq_len=128, micro_batch_size=4)
        rows, dropped = packer.pack_rows([Sample(1000, 1), Sample(50, 1)])
        assert len(dropped) == 1
        assert dropped[0].input_tokens == 1000

    def test_padding_efficiency_better_than_naive(self):
        samples = mixed_samples() * 4
        packing = PackingBatching(max_seq_len=1024, micro_batch_size=4).split(samples)
        naive = NaivePaddingBatching(micro_batch_size=4).split(samples)
        assert (
            padding_stats(packing.micro_batches).overall_efficiency
            > padding_stats(naive.micro_batches).overall_efficiency
        )

    def test_all_rows_padded_to_max_seq_len(self):
        result = PackingBatching(max_seq_len=1024, micro_batch_size=2).split(mixed_samples())
        assert all(mb.enc_seq_len == 1024 for mb in result.micro_batches)

    def test_decoder_only_packs_concatenated_length(self):
        packer = PackingBatching(max_seq_len=100, micro_batch_size=2, decoder_only=True)
        rows, dropped = packer.pack_rows([Sample(60, 30), Sample(50, 40), Sample(5, 4)])
        assert not dropped
        for row in rows:
            assert sum(s.total_tokens for s in row) <= 100

    def test_t5_target_budget_respected(self):
        packer = PackingBatching(max_seq_len=1024, micro_batch_size=2, max_target_len=64)
        rows, _ = packer.pack_rows(mixed_samples())
        for row in rows:
            assert sum(s.target_tokens for s in row) <= 64

    @given(samples=samples_strategy())
    @settings(max_examples=50, deadline=None)
    def test_packing_conserves_samples(self, samples):
        packer = PackingBatching(max_seq_len=2048, micro_batch_size=4, max_target_len=512)
        rows, dropped = packer.pack_rows(samples)
        packed = [s for row in rows for s in row]
        assert sorted(packed + dropped) == sorted(samples)


class TestTokenBased:
    def test_budget_respected(self):
        strategy = TokenBasedBatching(tokens_per_micro_batch=2048)
        result = strategy.split(mixed_samples())
        for mb in result.micro_batches:
            if mb.batch_size > 1:
                assert mb.padded_tokens() <= 2048

    def test_single_long_sample_gets_own_microbatch(self):
        strategy = TokenBasedBatching(tokens_per_micro_batch=256)
        result = strategy.split(mixed_samples())
        # The 1000-token sample cannot share a 256-token budget; it must appear alone.
        singles = [mb for mb in result.micro_batches if mb.batch_size == 1]
        assert any(mb.samples()[0].input_tokens == 1000 for mb in singles)

    def test_all_samples_preserved(self):
        result = TokenBasedBatching(2048).split(mixed_samples())
        assert sorted(s for mb in result.micro_batches for s in mb.samples()) == sorted(
            mixed_samples()
        )

    def test_sorted_ordering_groups_similar_lengths(self):
        result = TokenBasedBatching(4096, ordering=sort_by_length).split(mixed_samples())
        stats_sorted = padding_stats(result.micro_batches)
        unsorted = TokenBasedBatching(4096, ordering=list).split(mixed_samples())
        stats_unsorted = padding_stats(unsorted.micro_batches)
        assert stats_sorted.overall_efficiency >= stats_unsorted.overall_efficiency

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            TokenBasedBatching(0)


class TestFixedSize:
    def test_chunk_sizes(self):
        result = FixedSizeBatching(micro_batch_size=3).split(mixed_samples())
        sizes = [mb.batch_size for mb in result.micro_batches]
        assert sizes == [3, 3, 2]

    def test_keeps_sampling_order_by_default(self):
        result = FixedSizeBatching(micro_batch_size=3).split(mixed_samples())
        flattened = [s for mb in result.micro_batches for s in mb.samples()]
        assert flattened == mixed_samples()

    def test_with_sorting(self):
        result = FixedSizeBatching(micro_batch_size=3, ordering=sort_by_length).split(
            mixed_samples()
        )
        flattened = [s for mb in result.micro_batches for s in mb.samples()]
        assert flattened == sort_by_length(mixed_samples())

    def test_empty(self):
        assert FixedSizeBatching(2).split([]).micro_batches == []


class TestPaddingStats:
    def test_empty(self):
        stats = padding_stats([])
        assert stats.actual_tokens == 0
        assert stats.overall_efficiency == 0.0

    def test_decoder_only_has_no_decoder_efficiency(self):
        from repro.batching.base import MicroBatch

        mb = MicroBatch.from_samples([Sample(10, 5)], decoder_only=True)
        assert padding_stats([mb]).decoder_efficiency is None

    def test_encoder_decoder_efficiencies_separate(self):
        from repro.batching.base import MicroBatch

        mb = MicroBatch.from_samples([Sample(100, 10), Sample(100, 50)], decoder_only=False)
        stats = padding_stats([mb])
        assert stats.encoder_efficiency == pytest.approx(1.0)
        assert stats.decoder_efficiency == pytest.approx(60 / 100)

    @given(samples=samples_strategy())
    @settings(max_examples=50, deadline=None)
    def test_efficiency_bounded(self, samples):
        from repro.batching.base import MicroBatch

        mb = MicroBatch.from_samples(samples, decoder_only=False)
        stats = padding_stats([mb])
        assert 0.0 < stats.overall_efficiency <= 1.0
        assert stats.actual_tokens <= stats.padded_tokens

    def test_mixed_architectures_rejected(self):
        """Folding decoder-only micro-batches (no target tensor) into an
        encoder-decoder aggregation silently skews the per-tensor
        efficiencies, so mixed inputs are an explicit error."""
        from repro.batching.base import MicroBatch

        gpt = MicroBatch.from_samples([Sample(10, 5)], decoder_only=True)
        t5 = MicroBatch.from_samples([Sample(100, 10)], decoder_only=False)
        with pytest.raises(ValueError, match="mix"):
            padding_stats([gpt, t5])
        with pytest.raises(ValueError, match="mix"):
            padding_stats([t5, gpt])

    def test_dict_roundtrip(self):
        from repro.batching.base import MicroBatch
        from repro.batching.metrics import PaddingStats

        mb = MicroBatch.from_samples([Sample(100, 10), Sample(80, 50)], decoder_only=False)
        stats = padding_stats([mb])
        assert PaddingStats.from_dict(stats.to_dict()) == stats
        gpt = padding_stats([MicroBatch.from_samples([Sample(10, 5)], decoder_only=True)])
        assert PaddingStats.from_dict(gpt.to_dict()) == gpt
        assert PaddingStats.from_dict(gpt.to_dict()).decoder_efficiency is None
