"""Tests for repro.data.truncation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.tasks import Sample
from repro.data.truncation import truncate_sample, truncate_samples


class TestTruncateSample:
    def test_no_truncation_returns_same_object(self):
        sample = Sample(100, 20)
        assert truncate_sample(sample, 1000) is sample

    def test_input_truncated(self):
        sample = Sample(5000, 20)
        truncated = truncate_sample(sample, 1024)
        assert truncated.input_tokens == 1024
        assert truncated.target_tokens == 20

    def test_target_truncated_when_limit_given(self):
        truncated = truncate_sample(Sample(100, 500), 1024, max_target_tokens=64)
        assert truncated.target_tokens == 64

    def test_task_preserved(self):
        truncated = truncate_sample(Sample(5000, 20, task="summ"), 100)
        assert truncated.task == "summ"

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            truncate_sample(Sample(10, 10), 0)
        with pytest.raises(ValueError):
            truncate_sample(Sample(10, 10), 10, max_target_tokens=-1)


class TestTruncateSamples:
    def test_encoder_decoder_independent_limits(self):
        samples = [Sample(5000, 3000), Sample(10, 10)]
        truncated = truncate_samples(samples, 1024, decoder_only=False)
        assert truncated[0].input_tokens == 1024
        assert truncated[0].target_tokens == 1024
        assert truncated[1] == samples[1]

    def test_decoder_only_concatenated_limit(self):
        samples = [Sample(5000, 3000)]
        truncated = truncate_samples(samples, 1024, decoder_only=True)
        assert truncated[0].total_tokens <= 1024

    def test_decoder_only_short_sample_untouched(self):
        samples = [Sample(500, 100)]
        assert truncate_samples(samples, 1024, decoder_only=True)[0] == samples[0]

    def test_decoder_only_preserves_some_target(self):
        """The target is not entirely squeezed out when truncating."""
        truncated = truncate_samples([Sample(5000, 300)], 1024, decoder_only=True)[0]
        assert truncated.target_tokens > 0

    def test_invalid_max_seq_len(self):
        with pytest.raises(ValueError):
            truncate_samples([Sample(10, 10)], 1)

    @given(
        input_tokens=st.integers(min_value=1, max_value=100_000),
        target_tokens=st.integers(min_value=0, max_value=50_000),
        max_seq_len=st.integers(min_value=2, max_value=8192),
        decoder_only=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_truncation_invariants(self, input_tokens, target_tokens, max_seq_len, decoder_only):
        """Truncation never lengthens a sample and always meets the limit."""
        sample = Sample(input_tokens, target_tokens)
        truncated = truncate_samples([sample], max_seq_len, decoder_only=decoder_only)[0]
        assert truncated.input_tokens <= sample.input_tokens
        assert truncated.target_tokens <= sample.target_tokens
        assert truncated.input_tokens >= 1
        if decoder_only:
            assert truncated.total_tokens <= max_seq_len
        else:
            assert truncated.input_tokens <= max_seq_len
            assert truncated.target_tokens <= max_seq_len
