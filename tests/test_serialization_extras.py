"""Tests for profile-database serialisation and Chrome-trace export."""

from __future__ import annotations

import json

import pytest

from repro.costmodel.cost_model import CostModel
from repro.costmodel.profiler import LayerProfiler
from repro.costmodel.serialization import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape
from repro.simulator.chrome_trace import save_chrome_trace, trace_to_chrome_events
from repro.simulator.engine import simulate_schedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule


class TestProfileDatabaseSerialization:
    @pytest.fixture(scope="class")
    def database(self, tiny_t5_config, small_device):
        profiler = LayerProfiler(tiny_t5_config, device_spec=small_device)
        return profiler.build_database(max_batch_size=4, max_seq_len=256)

    def test_roundtrip_preserves_queries(self, database):
        restored = database_from_dict(database_to_dict(database))
        for kind, profile in database.profiles.items():
            restored_profile = restored.get(kind)
            coords = (2, 100) if profile.dims == 2 else (2, 100, 150)
            assert restored_profile.query_forward(*coords) == pytest.approx(
                profile.query_forward(*coords)
            )
            for mode in RecomputeMode:
                assert restored_profile.query_backward(mode, *coords) == pytest.approx(
                    profile.query_backward(mode, *coords)
                )
                assert restored_profile.query_activation(mode, *coords) == pytest.approx(
                    profile.query_activation(mode, *coords)
                )

    def test_dict_is_json_compatible(self, database):
        payload = json.dumps(database_to_dict(database))
        restored = database_from_dict(json.loads(payload))
        assert set(restored.profiles) == set(database.profiles)

    def test_save_and_load(self, database, tmp_path):
        path = save_database(database, tmp_path / "profiles" / "t5.json")
        assert path.exists()
        restored = load_database(path)
        assert restored.model_name == database.model_name
        assert restored.device_name == database.device_name

    def test_cost_model_from_saved_database(self, database, tiny_t5_config, small_device, tmp_path):
        """A cost model built from a reloaded database answers the same
        queries as one built from the in-memory database."""
        path = save_database(database, tmp_path / "db.json")
        original = CostModel(
            tiny_t5_config, num_stages=2, device_spec=small_device, database=database
        )
        reloaded = CostModel(
            tiny_t5_config, num_stages=2, device_spec=small_device, database=load_database(path)
        )
        shape = MicroBatchShape(batch_size=2, enc_seq_len=200, dec_seq_len=40)
        assert reloaded.stage_cost(1, shape).forward_ms == pytest.approx(
            original.stage_cost(1, shape).forward_ms
        )


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        schedule = one_f_one_b_schedule(3, 4)
        return simulate_schedule(schedule, lambda op: 1.5).trace

    def test_events_generated(self, trace):
        events = trace_to_chrome_events(trace)
        duration_events = [e for e in events if e["ph"] == "X"]
        metadata_events = [e for e in events if e["ph"] == "M"]
        assert len(duration_events) == len(trace.events)
        assert metadata_events  # thread names present

    def test_timestamps_in_microseconds(self, trace):
        events = [e for e in trace_to_chrome_events(trace) if e["ph"] == "X"]
        makespan_us = max(e["ts"] + e["dur"] for e in events)
        assert makespan_us == pytest.approx(trace.makespan_ms() * 1000.0)

    def test_save_chrome_trace(self, trace, tmp_path):
        path = save_chrome_trace(trace, tmp_path / "traces" / "pipeline.json")
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert payload["displayTimeUnit"] == "ms"

    def test_devices_mapped_to_threads(self, trace):
        events = [e for e in trace_to_chrome_events(trace) if e["ph"] == "X"]
        tids = {e["tid"] for e in events}
        # 3 devices, compute track each (no comm events in the engine trace).
        assert tids == {0, 2, 4}
