"""Tests for profile-database serialisation and Chrome-trace export."""

from __future__ import annotations

import json

import pytest

from repro.costmodel.cost_model import CostModel
from repro.costmodel.profiler import LayerProfiler
from repro.costmodel.serialization import (
    cost_model_from_dict,
    cost_model_to_dict,
    database_from_dict,
    database_to_dict,
    device_spec_from_dict,
    device_spec_to_dict,
    load_database,
    model_config_from_dict,
    model_config_to_dict,
    save_database,
)
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape
from repro.simulator.chrome_trace import save_chrome_trace, trace_to_chrome_events
from repro.simulator.engine import simulate_schedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule


class TestProfileDatabaseSerialization:
    @pytest.fixture(scope="class")
    def database(self, tiny_t5_config, small_device):
        profiler = LayerProfiler(tiny_t5_config, device_spec=small_device)
        return profiler.build_database(max_batch_size=4, max_seq_len=256)

    def test_roundtrip_preserves_queries(self, database):
        restored = database_from_dict(database_to_dict(database))
        for kind, profile in database.profiles.items():
            restored_profile = restored.get(kind)
            coords = (2, 100) if profile.dims == 2 else (2, 100, 150)
            assert restored_profile.query_forward(*coords) == pytest.approx(
                profile.query_forward(*coords)
            )
            for mode in RecomputeMode:
                assert restored_profile.query_backward(mode, *coords) == pytest.approx(
                    profile.query_backward(mode, *coords)
                )
                assert restored_profile.query_activation(mode, *coords) == pytest.approx(
                    profile.query_activation(mode, *coords)
                )

    def test_dict_is_json_compatible(self, database):
        payload = json.dumps(database_to_dict(database))
        restored = database_from_dict(json.loads(payload))
        assert set(restored.profiles) == set(database.profiles)

    def test_save_and_load(self, database, tmp_path):
        path = save_database(database, tmp_path / "profiles" / "t5.json")
        assert path.exists()
        restored = load_database(path)
        assert restored.model_name == database.model_name
        assert restored.device_name == database.device_name

    def test_cost_model_from_saved_database(self, database, tiny_t5_config, small_device, tmp_path):
        """A cost model built from a reloaded database answers the same
        queries as one built from the in-memory database."""
        path = save_database(database, tmp_path / "db.json")
        original = CostModel(
            tiny_t5_config, num_stages=2, device_spec=small_device, database=database
        )
        reloaded = CostModel(
            tiny_t5_config, num_stages=2, device_spec=small_device, database=load_database(path)
        )
        shape = MicroBatchShape(batch_size=2, enc_seq_len=200, dec_seq_len=40)
        assert reloaded.stage_cost(1, shape).forward_ms == pytest.approx(
            original.stage_cost(1, shape).forward_ms
        )


class TestCostModelSerialization:
    """Round-trip of a whole CostModel (what planner-pool workers rebuild)."""

    @pytest.fixture(scope="class")
    def cost_model(self, tiny_t5_config, small_device):
        return CostModel(
            tiny_t5_config,
            num_stages=4,
            tensor_parallel=2,
            zero_shards=2,
            device_spec=small_device,
            max_profile_batch_size=4,
            max_profile_seq_len=256,
        )

    def test_model_config_roundtrip(self, tiny_t5_config):
        assert model_config_from_dict(model_config_to_dict(tiny_t5_config)) == tiny_t5_config

    def test_device_spec_roundtrip(self, small_device):
        assert device_spec_from_dict(device_spec_to_dict(small_device)) == small_device

    def test_roundtrip_is_bit_identical(self, cost_model):
        """Every interpolator grid must survive the round trip exactly, so a
        rebuilt cost model answers queries bit-identically (the process-pool
        bit-identical-plans guarantee rests on this)."""
        restored = cost_model_from_dict(cost_model_to_dict(cost_model))
        assert restored.num_stages == cost_model.num_stages
        assert restored.tensor_parallel == cost_model.tensor_parallel
        assert restored.zero_shards == cost_model.zero_shards
        assert restored.config == cost_model.config
        for kind, profile in cost_model.database.profiles.items():
            other = restored.database.get(kind)
            assert (other.forward_ms.values == profile.forward_ms.values).all()
            for ours, theirs in zip(profile.forward_ms.axes, other.forward_ms.axes):
                assert (ours == theirs).all()
        shape = MicroBatchShape(batch_size=3, enc_seq_len=190, dec_seq_len=70)
        for stage in range(cost_model.num_stages):
            for mode in RecomputeMode:
                ours = cost_model.stage_cost(stage, shape, mode)
                theirs = restored.stage_cost(stage, shape, mode)
                assert ours.forward_ms == theirs.forward_ms
                assert ours.backward_ms == theirs.backward_ms
                assert ours.activation_bytes == theirs.activation_bytes
        assert restored.stage_static_bytes(0) == cost_model.stage_static_bytes(0)

    def test_roundtrip_survives_json(self, cost_model):
        """JSON (re-)encoding must not perturb the grids: Python floats
        serialise via repr, which round-trips IEEE-754 doubles exactly."""
        payload = json.loads(json.dumps(cost_model_to_dict(cost_model)))
        restored = cost_model_from_dict(payload)
        shape = MicroBatchShape(batch_size=2, enc_seq_len=123, dec_seq_len=45)
        assert restored.microbatch_time_ms(shape) == cost_model.microbatch_time_ms(shape)
        assert restored.microbatch_activation_bytes(shape) == (
            cost_model.microbatch_activation_bytes(shape)
        )


class TestPlannerSpecRoundtrip:
    def test_rebuilt_planner_plans_identically(self, gpt_cost_model, flan_samples_gpt):
        from repro.core.planner import DynaPipePlanner, PlannerConfig

        planner = DynaPipePlanner(
            gpt_cost_model,
            config=PlannerConfig(order_search=False, tmax_sample_count=8),
        )
        rebuilt = DynaPipePlanner.from_spec(planner.to_spec())
        assert rebuilt.config == planner.config
        samples = list(flan_samples_gpt[:48])
        original = planner.plan(samples, iteration=0)
        clone = rebuilt.plan(samples, iteration=0)
        assert clone.recompute is original.recompute
        assert clone.predicted_iteration_ms == original.predicted_iteration_ms
        assert clone.dp_solution.boundaries == original.dp_solution.boundaries
        assert clone.dp_solution.objective == original.dp_solution.objective
        want = original.plans[0].to_dict()
        got = clone.plans[0].to_dict()
        want["metadata"]["planning_time_s"] = got["metadata"]["planning_time_s"]
        assert got == want


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        schedule = one_f_one_b_schedule(3, 4)
        return simulate_schedule(schedule, lambda op: 1.5).trace

    def test_events_generated(self, trace):
        events = trace_to_chrome_events(trace)
        duration_events = [e for e in events if e["ph"] == "X"]
        metadata_events = [e for e in events if e["ph"] == "M"]
        assert len(duration_events) == len(trace.events)
        assert metadata_events  # thread names present

    def test_timestamps_in_microseconds(self, trace):
        events = [e for e in trace_to_chrome_events(trace) if e["ph"] == "X"]
        makespan_us = max(e["ts"] + e["dur"] for e in events)
        assert makespan_us == pytest.approx(trace.makespan_ms() * 1000.0)

    def test_save_chrome_trace(self, trace, tmp_path):
        path = save_chrome_trace(trace, tmp_path / "traces" / "pipeline.json")
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert payload["displayTimeUnit"] == "ms"

    def test_devices_mapped_to_threads(self, trace):
        events = [e for e in trace_to_chrome_events(trace) if e["ph"] == "X"]
        tids = {e["tid"] for e in events}
        # 3 devices, compute track each (no comm events in the engine trace).
        assert tids == {0, 2, 4}
