"""Tests for execution plans and their serialisation / instruction store flow."""

from __future__ import annotations

import json

import pytest

from repro.core.execution_plan import ExecutionPlan, PlanMetadata
from repro.instructions.ops import ForwardPass, SendActStart
from repro.instructions.store import InstructionStore
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape


def make_plan(iteration: int = 0, replica: int = 0) -> ExecutionPlan:
    shape = MicroBatchShape(batch_size=2, enc_seq_len=128, dec_seq_len=16)
    streams = [
        [
            ForwardPass(microbatch=0, stage=0, shape=shape),
            SendActStart(microbatch=0, stage=0, peer=1, nbytes=512.0),
        ],
        [ForwardPass(microbatch=0, stage=1, shape=shape, recompute=RecomputeMode.FULL)],
    ]
    metadata = PlanMetadata(
        iteration=iteration,
        replica=replica,
        schedule_name="memory-aware-adaptive",
        recompute=RecomputeMode.FULL,
        predicted_makespan_ms=123.4,
        predicted_peak_memory_bytes=[1e9, 2e9],
        num_microbatches=1,
        planning_time_s=0.25,
    )
    return ExecutionPlan(
        device_instructions=streams, microbatch_shapes=[shape], metadata=metadata
    )


class TestExecutionPlan:
    def test_basic_properties(self):
        plan = make_plan()
        assert plan.num_stages == 2
        assert plan.total_instructions() == 3

    def test_roundtrip_through_dict(self):
        plan = make_plan()
        restored = ExecutionPlan.from_dict(plan.to_dict())
        assert restored.device_instructions == plan.device_instructions
        assert restored.microbatch_shapes == plan.microbatch_shapes
        assert restored.metadata.predicted_makespan_ms == plan.metadata.predicted_makespan_ms
        assert restored.metadata.recompute is RecomputeMode.FULL

    def test_dict_is_json_serialisable(self):
        payload = json.dumps(make_plan().to_dict())
        restored = ExecutionPlan.from_dict(json.loads(payload))
        assert restored.metadata.schedule_name == "memory-aware-adaptive"

    def test_store_roundtrip(self):
        """Planners push serialised plans; executors fetch and rebuild them."""
        store = InstructionStore()
        plan = make_plan(iteration=7, replica=1)
        store.push(7, 1, plan.to_dict())
        fetched = ExecutionPlan.from_dict(store.fetch(7, 1))
        assert fetched.metadata.iteration == 7
        assert fetched.metadata.replica == 1
        assert fetched.device_instructions == plan.device_instructions

    def test_planner_plans_serialise(self, gpt_cost_model, flan_samples_gpt):
        """Full planner output survives a serialisation round trip."""
        from repro.core.planner import DynaPipePlanner, PlannerConfig

        planner = DynaPipePlanner(
            gpt_cost_model,
            config=PlannerConfig(order_search=False, tmax_sample_count=8),
        )
        plan = planner.plan(flan_samples_gpt[:30])
        original = plan.replicas[0].plan
        restored = ExecutionPlan.from_dict(original.to_dict())
        assert restored.device_instructions == original.device_instructions
        assert restored.microbatch_shapes == original.microbatch_shapes
