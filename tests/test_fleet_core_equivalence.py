"""Bit-identity of the two scheduler cores: bitmap fast path vs object oracle.

The data-oriented rearchitecture keeps the original object/set
:class:`~repro.fleet.gang.GangAllocator` and scan-based event loop as a
selectable *oracle* (``core="object"`` / ``REPRO_FLEET_CORE=object``); the
default bitmap core must reproduce it bit for bit.  This suite pins that
contract at three levels:

* **allocator** — hypothesis-driven random operation sequences
  (allocate / release / fail / repair / absent / arrive) applied to both
  allocators in lockstep must produce identical placements, identical
  snapshots, the exact 4-way partition, and round-trip through
  ``snapshot_state``/``restore_state``;
* **scheduler** — full fleet runs over seeded random fault plans must
  produce field-identical :class:`~repro.fleet.metrics.FleetReport` s and
  equal event counts under both cores;
* **event ordering** — the tie-break contract at equal timestamps
  (completion ≤ capacity ≤ job arrival ≤ failure) is pinned by a scripted
  scenario with every event class colliding on one fleet-clock instant.

Crash-resilience rides along: a version-2 snapshot taken under one core
restores under the other (the capacity heap is canonicalised on snapshot),
finishing bit-identically to the uninterrupted reference run.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.core.planner import PlannerConfig
from repro.fleet import (
    BitmapGangAllocator,
    FaultInjector,
    FleetConfig,
    FleetScheduler,
    GangAllocator,
    JobSpec,
    SchedulerKilled,
    SyntheticTracePlanner,
    make_allocator,
    random_fault_plan,
    resolve_fleet_core,
    restore_scheduler,
    snapshot_scheduler,
    workload_cost_model,
)
from repro.fleet.workloads import GLOBAL_BATCH_TOKENS, _sample_pool
from repro.parallel.config import ParallelConfig

from test_fleet_checkpoint import assert_reports_identical


@pytest.fixture(scope="module")
def planner_config():
    return PlannerConfig(order_search=False, tmax_sample_count=8)


# ------------------------------------------------------------------- allocator


def _assert_allocators_identical(obj: GangAllocator, bit: BitmapGangAllocator):
    assert obj.snapshot_state() == bit.snapshot_state()
    assert obj.free_count == bit.free_count
    assert obj.busy_count == bit.busy_count
    assert obj.alive_count == bit.alive_count
    assert obj.failed_devices == bit.failed_devices
    assert obj.absent_devices == bit.absent_devices
    for device in range(obj.num_devices):
        owner_obj = obj.owner_of(device)
        owner_bit = bit.owner_of(device)
        assert (owner_obj is None) == (owner_bit is None), device
        if owner_obj is not None:
            assert owner_obj.job == owner_bit.job
            assert owner_obj.devices == owner_bit.devices
        assert obj.is_failed(device) == bit.is_failed(device)
        assert obj.is_absent(device) == bit.is_absent(device)
    obj.check_consistent()
    bit.check_consistent()
    # The 4-way partition is exact on both.
    for allocator in (obj, bit):
        partition = (
            allocator.free_count
            + allocator.busy_count
            + len(allocator.failed_devices)
            + len(allocator.absent_devices)
        )
        assert partition == allocator.num_devices


@settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    num_nodes=st.integers(min_value=1, max_value=4),
    gpus_per_node=st.integers(min_value=2, max_value=8),
    ops=st.lists(
        st.tuples(
            st.sampled_from(
                ["allocate", "release", "fail", "repair", "absent", "arrive"]
            ),
            st.integers(min_value=0, max_value=2**16),
        ),
        min_size=1,
        max_size=60,
    ),
)
def test_allocator_cores_equivalent_under_random_ops(
    num_nodes, gpus_per_node, ops, small_device
):
    """Random lockstep op sequences leave both allocators bit-identical."""
    topology = ClusterTopology(
        num_nodes=num_nodes, gpus_per_node=gpus_per_node, device_spec=small_device
    )
    obj = GangAllocator(topology)
    bit = BitmapGangAllocator(topology)
    gangs: list[tuple] = []  # parallel (object gang, bitmap gang) pairs
    counter = 0
    for op, arg in ops:
        if op == "allocate":
            dp = 1 + arg % 3
            pp = 1 + (arg // 3) % 2
            counter += 1
            gang_obj = obj.allocate(f"job{counter}", dp, pp, 1)
            gang_bit = bit.allocate(f"job{counter}", dp, pp, 1)
            # allocate succeeds iff the gang fits — on both cores, with the
            # exact same device choice.
            assert (gang_obj is None) == (gang_bit is None)
            if gang_obj is not None:
                assert gang_obj.devices == gang_bit.devices
                gangs.append((gang_obj, gang_bit))
        elif op == "release" and gangs:
            gang_obj, gang_bit = gangs.pop(arg % len(gangs))
            assert sorted(obj.release(gang_obj)) == sorted(bit.release(gang_bit))
        elif op == "fail":
            device = arg % topology.num_gpus
            if obj.is_failed(device) or obj.is_absent(device):
                continue
            hit_obj = obj.fail_device(device)
            hit_bit = bit.fail_device(device)
            assert (hit_obj is None) == (hit_bit is None)
            if hit_obj is not None:
                assert hit_obj.devices == hit_bit.devices
                gangs = [(o, b) for o, b in gangs if o is not hit_obj]
        elif op == "repair":
            device = arg % topology.num_gpus
            assert obj.repair_device(device) == bit.repair_device(device)
        elif op == "absent":
            device = arg % topology.num_gpus
            if obj.owner_of(device) is None and not (
                obj.is_failed(device) or obj.is_absent(device)
            ):
                obj.mark_absent(device)
                bit.mark_absent(device)
        elif op == "arrive":
            device = arg % topology.num_gpus
            if obj.is_absent(device):
                obj.arrive_device(device)
                bit.arrive_device(device)
        _assert_allocators_identical(obj, bit)
    # Snapshots round-trip across cores: either snapshot restores either
    # allocator (live gangs transfer with their currently owned devices).
    snapshot = bit.snapshot_state()
    owned = {id(o): [d for d in range(topology.num_gpus) if obj.owner_of(d) is o] for o, _ in gangs}
    fresh_obj = GangAllocator(topology)
    fresh_obj.restore_state(
        snapshot["free"],
        snapshot["failed"],
        snapshot["absent"],
        [(o, owned[id(o)]) for o, _ in gangs],
    )
    fresh_bit = BitmapGangAllocator(topology)
    fresh_bit.restore_state(
        snapshot["free"],
        snapshot["failed"],
        snapshot["absent"],
        [(o, owned[id(o)]) for o, _ in gangs],
    )
    _assert_allocators_identical(fresh_obj, fresh_bit)


def test_core_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_FLEET_CORE", raising=False)
    assert resolve_fleet_core() == "bitmap"
    assert resolve_fleet_core("object") == "object"
    monkeypatch.setenv("REPRO_FLEET_CORE", "object")
    assert resolve_fleet_core() == "object"
    # An explicit argument wins over the environment.
    assert resolve_fleet_core("bitmap") == "bitmap"
    with pytest.raises(ValueError, match="unknown fleet core"):
        resolve_fleet_core("quantum")
    topology = ClusterTopology.for_num_gpus(2, gpus_per_node=2)
    monkeypatch.delenv("REPRO_FLEET_CORE", raising=False)
    assert isinstance(make_allocator(topology), BitmapGangAllocator)
    assert type(make_allocator(topology, "object")) is GangAllocator


# ------------------------------------------------------------------- scheduler


def _chaos_specs(pp2_cost_model, fleet_samples, planner_config):
    return [
        JobSpec(
            name=f"job{i}",
            cost_model=pp2_cost_model,
            samples=fleet_samples,
            global_batch_tokens=4096,
            parallel=ParallelConfig(1 + i % 2, 2, 1),
            num_iterations=2,
            planner_config=planner_config,
            seed=i,
            priority=i % 3,
            submit_time_ms=float(5 * i),
            max_retries=3,
        )
        for i in range(4)
    ]


def _run_chaos(core, seed, pp2_cost_model, fleet_samples, planner_config, small_device):
    topology = ClusterTopology.for_num_gpus(8, gpus_per_node=4, device_spec=small_device)
    plan = random_fault_plan(
        topology,
        seed=seed,
        duration_ms=80.0,
        storm_rate_per_s=40.0,
        rack_outage_probability=0.5,
    )
    scheduler = FleetScheduler(topology, FleetConfig(policy="priority", core=core))
    for spec in _chaos_specs(pp2_cost_model, fleet_samples, planner_config):
        scheduler.submit(spec)
    FaultInjector(plan).apply(scheduler)
    return scheduler.run()


@settings(
    max_examples=4,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_scheduler_cores_bit_identical_under_chaos(
    seed, pp2_cost_model, fleet_samples, planner_config, small_device
):
    """Seeded chaos runs produce field-identical reports on both cores."""
    args = (pp2_cost_model, fleet_samples, planner_config, small_device)
    fast = _run_chaos("bitmap", seed, *args)
    oracle = _run_chaos("object", seed, *args)
    assert_reports_identical(fast, oracle)
    # Both cores walked the identical event sequence.
    assert fast.events_processed == oracle.events_processed
    assert fast.summary() == oracle.summary()


# ---------------------------------------------------------------- tie breaking


class _ConstantPlanner(SyntheticTracePlanner):
    """Synthetic planner with exact (jitter-free) iteration times."""

    def iteration_ms(self, iteration: int) -> float:
        return self.base_iteration_ms


def _constant_spec(name: str, iteration_ms: float, **overrides) -> JobSpec:
    cost_model = workload_cost_model("gpt-small")

    def factory(spec: JobSpec, data_parallel: int) -> _ConstantPlanner:
        return _ConstantPlanner(
            cost_model,
            data_parallel_size=data_parallel,
            requested_data_parallel=spec.parallel.data_parallel,
            base_iteration_ms=iteration_ms,
            seed=0,
        )

    defaults = dict(
        name=name,
        cost_model=cost_model,
        samples=_sample_pool("gpt"),
        global_batch_tokens=GLOBAL_BATCH_TOKENS,
        parallel=ParallelConfig(1, 1, 1),
        num_iterations=1,
        noise_std=0.0,
        execute_plans=False,
        planner_factory=factory,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


@pytest.mark.parametrize("core", ["bitmap", "object"])
def test_equal_time_event_ordering_contract(core, small_device):
    """Completion ≤ capacity ≤ job arrival ≤ failure at equal timestamps.

    Everything collides at t=100 on a 2-device cluster: job A's only
    iteration completes, device 1's repair fires, job B arrives, and
    device 0 fails.  The contract fixes the outcome: A finishes untouched
    (completion first), the repair lands before B is considered, B admits
    onto the cluster at t=100 with zero queueing delay, and the failure —
    processed last — preempts B's freshly started attempt, which then
    retries and still finishes.  Both cores must agree on every field.
    """
    topology = ClusterTopology.for_num_gpus(2, gpus_per_node=2, device_spec=small_device)
    scheduler = FleetScheduler(topology, FleetConfig(core=core))
    record_a = scheduler.submit(_constant_spec("job-a", 100.0))
    record_b = scheduler.submit(
        _constant_spec("job-b", 50.0, submit_time_ms=100.0, max_retries=2)
    )
    scheduler.inject_device_failure(0.0, 1)
    scheduler.inject_device_repair(100.0, 1)
    scheduler.inject_device_failure(100.0, 0)
    report = scheduler.run()

    summaries = {job.name: job for job in report.jobs}
    # Completion first: A committed its iteration untouched by the failure.
    assert summaries["job-a"].state == "finished"
    assert summaries["job-a"].preemptions == 0
    assert summaries["job-a"].attempts == 1
    # Capacity before arrival: the repaired device is visible when B is
    # admitted, so B starts at t=100 with zero queueing delay...
    assert summaries["job-b"].queueing_delay_ms == 0.0
    # ...and failure last: it preempts B's first attempt (B sits on device
    # 0, the lowest free index after A's completion freed it).
    assert summaries["job-b"].preemptions == 1
    assert summaries["job-b"].attempts == 2
    assert summaries["job-b"].state == "finished"
    # The capacity timeline pins the repair-before-failure order at t=100.
    at_100 = [e.event for e in report.capacity_timeline if e.time_ms == 100.0]
    assert at_100 == ["repair", "failure"]
    assert record_a.checkpoint.completed_iterations == 1
    assert record_b.checkpoint.completed_iterations == 1


def test_equal_time_ordering_identical_across_cores(small_device):
    def run(core):
        topology = ClusterTopology.for_num_gpus(
            2, gpus_per_node=2, device_spec=small_device
        )
        scheduler = FleetScheduler(topology, FleetConfig(core=core))
        scheduler.submit(_constant_spec("job-a", 100.0))
        scheduler.submit(
            _constant_spec("job-b", 50.0, submit_time_ms=100.0, max_retries=2)
        )
        scheduler.inject_device_failure(0.0, 1)
        scheduler.inject_device_repair(100.0, 1)
        scheduler.inject_device_failure(100.0, 0)
        return scheduler.run()

    assert_reports_identical(run("bitmap"), run("object"))


# ------------------------------------------------------------- kill / restore


def test_snapshot_restores_across_cores(
    pp2_cost_model, fleet_samples, planner_config, small_device
):
    """A snapshot taken under one core restores and finishes under the other."""
    args = (pp2_cost_model, fleet_samples, planner_config, small_device)

    def build(core, on_event=None):
        topology = ClusterTopology.for_num_gpus(
            8, gpus_per_node=4, device_spec=small_device
        )
        config = FleetConfig(policy="priority", core=core, on_event=on_event)
        scheduler = FleetScheduler(topology, config)
        specs = _chaos_specs(*args[:3])
        for spec in specs:
            scheduler.submit(spec)
        scheduler.inject_device_failure(10.0, 2)
        scheduler.inject_device_repair(40.0, 2)
        return scheduler, specs

    reference, _ = build("bitmap")
    reference_report = reference.run()

    snapshots = {}

    def kill_at_4(scheduler):
        if scheduler._events_processed == 4:
            snapshots["state"] = snapshot_scheduler(scheduler)
            raise SchedulerKilled("scripted crash")

    crashing, specs = build("bitmap", on_event=kill_at_4)
    with pytest.raises(SchedulerKilled):
        crashing.run()
    snapshot = snapshots["state"]
    assert snapshot["version"] == 2
    assert snapshot["core"] == "bitmap"

    for core in ("bitmap", "object"):
        topology = ClusterTopology.for_num_gpus(
            8, gpus_per_node=4, device_spec=small_device
        )
        restored = restore_scheduler(
            snapshot,
            topology,
            {spec.name: spec for spec in specs},
            config=FleetConfig(policy="priority", core=core),
        )
        assert restored.core == core
        report = restored.run()
        assert_reports_identical(report, reference_report)
