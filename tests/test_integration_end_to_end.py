"""End-to-end integration tests tying the whole stack together.

These tests follow a plan from raw samples through ordering, DP
partitioning, replica balancing, scheduling, communication planning,
serialisation through the instruction store, and instruction-level execution
with noise — asserting the cross-cutting invariants that unit tests cannot
see (token conservation, memory bounds, deadlock freedom, prediction
sanity).
"""

from __future__ import annotations

import pytest

from repro.baselines.mlm_ds import BaselineConfig, MLMDeepSpeedBaseline
from repro.comm.deadlock import check_comm_order
from repro.core.execution_plan import ExecutionPlan
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.instructions.ops import BackwardPass, ForwardPass
from repro.instructions.store import InstructionStore
from repro.model.memory import RecomputeMode
from repro.simulator.executor import InstructionExecutor


def _executor_for(cost_model, noise_seed=None, noise=0.0):
    from repro.cluster.device import SimulatedGPU
    from repro.model.transformer import build_stage_models

    stage_models = build_stage_models(
        cost_model.config, cost_model.num_stages, cost_model.tensor_parallel
    )
    gpu = SimulatedGPU(cost_model.device_spec, noise_std=noise, seed=noise_seed)

    def duration(instr):
        model = stage_models[instr.stage]
        if isinstance(instr, ForwardPass):
            return model.forward_time_ms(gpu, instr.shape)
        return model.backward_time_ms(gpu, instr.shape, instr.recompute)

    def activation(instr):
        return stage_models[instr.stage].activation_bytes(instr.shape, instr.recompute)

    static = [cost_model.stage_static_bytes(j) for j in range(cost_model.num_stages)]
    return InstructionExecutor(
        compute_duration_fn=duration,
        activation_bytes_fn=activation,
        static_bytes=static,
    )


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def plan(self, gpt_cost_model, flan_samples_gpt):
        planner = DynaPipePlanner(
            gpt_cost_model,
            data_parallel_size=2,
            config=PlannerConfig(order_search=True, tmax_sample_count=8),
        )
        return planner.plan(flan_samples_gpt[:120], iteration=0)

    def test_token_conservation(self, plan, flan_samples_gpt):
        """No sample is lost or duplicated anywhere in the pipeline."""
        planned = sorted(s for mb in plan.all_micro_batches() for s in mb.samples())
        assert planned == sorted(flan_samples_gpt[:120])

    def test_instruction_counts_consistent(self, plan, gpt_cost_model):
        """Each replica's instruction streams contain exactly one forward and
        one backward per (micro-batch, stage), plus matched communication."""
        for replica in plan.replicas:
            num_stages = gpt_cost_model.num_stages
            num_microbatches = len(replica.plan.microbatch_shapes)
            forwards = backwards = 0
            for stream in replica.plan.device_instructions:
                forwards += sum(isinstance(i, ForwardPass) for i in stream)
                backwards += sum(isinstance(i, BackwardPass) for i in stream)
            assert forwards == backwards == num_stages * num_microbatches
            assert check_comm_order(replica.plan.device_instructions).consistent

    def test_roundtrip_through_store_and_execute(self, plan, gpt_cost_model):
        """Plans survive serialisation through the store and execute without
        deadlock under noisy execution times, within the device memory."""
        store = InstructionStore()
        for replica in plan.replicas:
            store.push(0, replica.plan.metadata.replica, replica.plan.to_dict())
        for replica_rank in range(len(plan.replicas)):
            restored = ExecutionPlan.from_dict(store.fetch(0, replica_rank))
            executor = _executor_for(gpt_cost_model, noise_seed=replica_rank, noise=0.1)
            result = executor.run(restored.device_instructions)
            assert result.makespan_ms > 0
            assert max(result.peak_memory_bytes) <= gpt_cost_model.device_spec.memory_capacity * 1.05

    def test_prediction_matches_noise_free_execution(self, plan, gpt_cost_model):
        """With noise disabled, the measured makespan is within a modest band
        of the planner's prediction (differences come from interpolation and
        communication modelling only)."""
        replica = plan.replicas[0]
        executor = _executor_for(gpt_cost_model, noise=0.0)
        result = executor.run(replica.plan.device_instructions)
        predicted = replica.plan.metadata.predicted_makespan_ms
        assert result.makespan_ms == pytest.approx(predicted, rel=0.35)


class TestSystemsComparison:
    def test_dynapipe_vs_baseline_consistency(self, gpt_cost_model, flan_samples_gpt):
        """Both systems process identical samples and produce executable plans;
        DynaPipe never pads more than the baseline on the same mini-batch."""
        samples = flan_samples_gpt[:100]
        dynapipe = DynaPipePlanner(
            gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        ).plan(samples)
        baseline = MLMDeepSpeedBaseline(
            gpt_cost_model,
            config=BaselineConfig(max_seq_len=1024, micro_batch_size=2, recompute=RecomputeMode.FULL),
        ).plan(samples)
        assert dynapipe.padding.actual_tokens == sum(s.total_tokens for s in samples)
        assert dynapipe.padding.padded_tokens <= baseline.padding.padded_tokens * 1.1
        for iteration_plan in (dynapipe, baseline):
            for replica in iteration_plan.replicas:
                assert check_comm_order(replica.plan.device_instructions).consistent
