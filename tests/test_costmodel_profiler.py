"""Tests for repro.costmodel.profiler."""

from __future__ import annotations

import pytest

from repro.costmodel.profiler import LayerProfiler, default_profile_grid
from repro.model.memory import RecomputeMode


class TestDefaultGrid:
    def test_powers_of_two(self):
        batches, seqs = default_profile_grid(max_batch_size=16, max_seq_len=1024)
        assert batches == [1, 2, 4, 8, 16]
        assert seqs == [32, 64, 128, 256, 512, 1024]

    def test_non_power_of_two_max_included(self):
        batches, seqs = default_profile_grid(max_batch_size=12, max_seq_len=100)
        assert batches[-1] == 12
        assert seqs[-1] == 100

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            default_profile_grid(max_batch_size=0)
        with pytest.raises(ValueError):
            default_profile_grid(max_seq_len=16)


class TestEncoderProfile:
    def test_profile_contains_all_modes(self, tiny_gpt_config, small_device):
        profiler = LayerProfiler(tiny_gpt_config, device_spec=small_device)
        profile = profiler.profile_encoder_layer([1, 2, 4], [32, 64, 128])
        for mode in RecomputeMode:
            assert profile.query_backward(mode, 2, 64) > 0
            assert profile.query_activation(mode, 2, 64) > 0

    def test_grid_points_match_direct_evaluation(self, tiny_gpt_config, small_device):
        """At profiled grid points the interpolator returns the exact value."""
        from repro.cluster.device import SimulatedGPU
        from repro.model.transformer import LayerAssignment, MicroBatchShape, StageModel

        profiler = LayerProfiler(tiny_gpt_config, device_spec=small_device)
        profile = profiler.profile_encoder_layer([1, 2, 4], [32, 64, 128])
        stage = StageModel(
            tiny_gpt_config,
            LayerAssignment(stage=0, encoder_layers=1, decoder_layers=0, has_output_projection=False),
        )
        gpu = SimulatedGPU(small_device)
        direct = stage.forward_time_ms(gpu, MicroBatchShape(2, 64))
        assert profile.query_forward(2, 64) == pytest.approx(direct, rel=1e-9)

    def test_interpolated_point_between_neighbours(self, tiny_gpt_config, small_device):
        profiler = LayerProfiler(tiny_gpt_config, device_spec=small_device)
        profile = profiler.profile_encoder_layer([1, 2, 4], [32, 64, 128])
        mid = profile.query_forward(2, 96)
        low = profile.query_forward(2, 64)
        high = profile.query_forward(2, 128)
        assert low < mid < high

    def test_backward_exceeds_forward(self, tiny_gpt_config, small_device):
        profiler = LayerProfiler(tiny_gpt_config, device_spec=small_device)
        profile = profiler.profile_encoder_layer([1, 2], [32, 64])
        assert profile.query_backward(RecomputeMode.NONE, 2, 64) > profile.query_forward(2, 64)


class TestDecoderProfile:
    def test_3d_profile(self, tiny_t5_config, small_device):
        profiler = LayerProfiler(tiny_t5_config, device_spec=small_device)
        profile = profiler.profile_decoder_layer([1, 2], [32, 64], [32, 64, 128])
        assert profile.dims == 3
        assert profile.query_forward(1, 32, 64) > 0

    def test_source_length_increases_cost(self, tiny_t5_config, small_device):
        profiler = LayerProfiler(tiny_t5_config, device_spec=small_device)
        profile = profiler.profile_decoder_layer([1, 2], [32, 64], [32, 64, 128])
        assert profile.query_forward(2, 64, 128) > profile.query_forward(2, 64, 32)


class TestBuildDatabase:
    def test_gpt_database_has_only_encoder(self, tiny_gpt_config, small_device):
        profiler = LayerProfiler(tiny_gpt_config, device_spec=small_device)
        database = profiler.build_database(max_batch_size=4, max_seq_len=256)
        assert "encoder" in database.profiles
        assert "decoder" not in database.profiles

    def test_t5_database_has_both(self, tiny_t5_config, small_device):
        profiler = LayerProfiler(tiny_t5_config, device_spec=small_device)
        database = profiler.build_database(max_batch_size=4, max_seq_len=256)
        assert set(database.profiles) == {"encoder", "decoder"}

    def test_missing_kind_raises(self, tiny_gpt_config, small_device):
        profiler = LayerProfiler(tiny_gpt_config, device_spec=small_device)
        database = profiler.build_database(max_batch_size=2, max_seq_len=128)
        with pytest.raises(KeyError):
            database.get("decoder")

    def test_database_metadata(self, tiny_gpt_config, small_device):
        profiler = LayerProfiler(tiny_gpt_config, device_spec=small_device)
        database = profiler.build_database(max_batch_size=2, max_seq_len=128)
        assert database.model_name == tiny_gpt_config.name
        assert database.device_name == small_device.name
