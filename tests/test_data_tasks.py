"""Tests for repro.data.tasks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.tasks import Sample, TaskSpec


class TestSample:
    def test_total_tokens(self):
        sample = Sample(input_tokens=100, target_tokens=20, task="x")
        assert sample.total_tokens == 120
        assert sample.as_decoder_only_length() == 120

    def test_zero_target_allowed(self):
        assert Sample(input_tokens=5, target_tokens=0).total_tokens == 5

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            Sample(input_tokens=0, target_tokens=1)
        with pytest.raises(ValueError):
            Sample(input_tokens=1, target_tokens=-1)

    def test_ordering_by_lengths(self):
        short = Sample(input_tokens=10, target_tokens=1)
        long = Sample(input_tokens=100, target_tokens=1)
        assert short < long

    def test_hashable_and_frozen(self):
        sample = Sample(10, 5, "t")
        assert hash(sample) == hash(Sample(10, 5, "t"))
        with pytest.raises(AttributeError):
            sample.input_tokens = 7  # type: ignore[misc]


class TestTaskSpec:
    def test_draw_respects_minimums(self):
        spec = TaskSpec("t", mean_input_tokens=5.0, mean_target_tokens=1.0)
        rng = np.random.default_rng(0)
        for _ in range(100):
            sample = spec.draw(rng)
            assert sample.input_tokens >= 1
            assert sample.target_tokens >= 1

    def test_zero_target_mean_yields_zero_targets(self):
        spec = TaskSpec("t", mean_input_tokens=50.0, mean_target_tokens=0.0)
        rng = np.random.default_rng(0)
        assert all(spec.draw(rng).target_tokens == 0 for _ in range(20))

    def test_empirical_mean_close_to_spec(self):
        spec = TaskSpec("t", mean_input_tokens=200.0, mean_target_tokens=40.0, input_cv=0.5)
        rng = np.random.default_rng(1)
        samples = [spec.draw(rng) for _ in range(4000)]
        mean_input = np.mean([s.input_tokens for s in samples])
        assert mean_input == pytest.approx(200.0, rel=0.1)

    def test_higher_cv_gives_heavier_tail(self):
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        narrow = TaskSpec("n", 200.0, 10.0, input_cv=0.1)
        wide = TaskSpec("w", 200.0, 10.0, input_cv=1.5)
        narrow_max = max(narrow.draw(rng_a).input_tokens for _ in range(2000))
        wide_max = max(wide.draw(rng_b).input_tokens for _ in range(2000))
        assert wide_max > narrow_max

    def test_task_name_propagates(self):
        spec = TaskSpec("my-task", 50.0, 5.0)
        assert spec.draw(np.random.default_rng(0)).task == "my-task"

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            TaskSpec("t", mean_input_tokens=0.0, mean_target_tokens=1.0)
        with pytest.raises(ValueError):
            TaskSpec("t", mean_input_tokens=1.0, mean_target_tokens=-1.0)
        with pytest.raises(ValueError):
            TaskSpec("t", 1.0, 1.0, weight=0.0)

    @given(
        mean=st.floats(min_value=2.0, max_value=5000.0),
        cv=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_draw_always_valid(self, mean, cv):
        spec = TaskSpec("t", mean_input_tokens=mean, mean_target_tokens=mean / 4, input_cv=cv)
        sample = spec.draw(np.random.default_rng(3))
        assert sample.input_tokens >= 1
        assert sample.target_tokens >= 0
