"""Tests for repro.instructions.store."""

from __future__ import annotations

import threading

import pytest

from repro.instructions.store import (
    InstructionStore,
    PlanFailedError,
    PlanNotReadyError,
)


class TestInstructionStore:
    def test_push_and_fetch(self):
        store = InstructionStore()
        store.push(0, 1, {"plan": "x"})
        assert store.fetch(0, 1) == {"plan": "x"}

    def test_fetch_missing_raises(self):
        store = InstructionStore()
        with pytest.raises(PlanNotReadyError):
            store.fetch(0, 0)

    def test_ready(self):
        store = InstructionStore()
        assert not store.ready(3, 0)
        store.push(3, 0, "plan")
        assert store.ready(3, 0)

    def test_overwrite(self):
        store = InstructionStore()
        store.push(0, 0, "a")
        store.push(0, 0, "b")
        assert store.fetch(0, 0) == "b"

    def test_evict_iteration(self):
        store = InstructionStore()
        store.push(0, 0, "a")
        store.push(0, 1, "b")
        store.push(1, 0, "c")
        assert store.evict_iteration(0) == 2
        assert len(store) == 1
        assert store.iterations() == [1]

    def test_iterations_sorted_unique(self):
        store = InstructionStore()
        store.push(5, 0, "a")
        store.push(2, 0, "b")
        store.push(2, 1, "c")
        assert store.iterations() == [2, 5]


class TestFailureMarkers:
    def test_failure_makes_fetch_raise(self):
        store = InstructionStore()
        store.push_failure(0, "planner exploded")
        with pytest.raises(PlanFailedError, match="planner exploded") as excinfo:
            store.fetch(0, 0)
        # The exception carries the failed store key for diagnostics.
        assert excinfo.value.iteration == 0

    def test_failure_reports_ready_for_every_rank(self):
        """Polling executors must wake up on a failed iteration, whatever
        their rank, instead of spinning until their fetch timeout."""
        store = InstructionStore()
        assert not store.ready(0, 0)
        store.push_failure(0, "boom")
        assert store.ready(0, 0)
        assert store.ready(0, 3)

    def test_failure_is_not_a_not_ready_error(self):
        """Executors retry PlanNotReadyError; PlanFailedError must escape
        that retry loop."""
        store = InstructionStore()
        store.push_failure(1, "boom")
        with pytest.raises(PlanFailedError):
            store.fetch(1, 0)
        assert not issubclass(PlanFailedError, PlanNotReadyError)

    def test_failure_wins_over_pushed_plans(self):
        store = InstructionStore()
        store.push(0, 0, "plan")
        store.push_failure(0, "late failure")
        with pytest.raises(PlanFailedError):
            store.fetch(0, 0)

    def test_evict_clears_failure(self):
        store = InstructionStore()
        store.push_failure(0, "boom")
        store.evict_iteration(0)
        assert not store.ready(0, 0)
        assert store.failed_iterations() == {}
        with pytest.raises(PlanNotReadyError):
            store.fetch(0, 0)

    def test_failed_iterations_listing(self):
        store = InstructionStore()
        store.push_failure(3, "a")
        store.push_failure(1, "b")
        assert store.failed_iterations() == {3: "a", 1: "b"}

    def test_len_and_iter(self):
        store = InstructionStore()
        store.push(0, 0, "a")
        store.push(0, 1, "b")
        assert len(store) == 2
        assert set(store) == {(0, 0), (0, 1)}

    def test_thread_safety_under_concurrent_pushes(self):
        """Concurrent planner threads should not lose plans."""
        store = InstructionStore()

        def worker(offset: int) -> None:
            for i in range(200):
                store.push(offset * 1000 + i, 0, i)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store) == 800
