"""Tests for repro.instructions.store."""

from __future__ import annotations

import threading

import pytest

from repro.instructions.store import (
    DEFAULT_JOB,
    InstructionStore,
    PlanFailedError,
    PlanNotReadyError,
)


class TestInstructionStore:
    def test_push_and_fetch(self):
        store = InstructionStore()
        store.push(0, 1, {"plan": "x"})
        assert store.fetch(0, 1) == {"plan": "x"}

    def test_fetch_missing_raises(self):
        store = InstructionStore()
        with pytest.raises(PlanNotReadyError):
            store.fetch(0, 0)

    def test_ready(self):
        store = InstructionStore()
        assert not store.ready(3, 0)
        store.push(3, 0, "plan")
        assert store.ready(3, 0)

    def test_overwrite(self):
        store = InstructionStore()
        store.push(0, 0, "a")
        store.push(0, 0, "b")
        assert store.fetch(0, 0) == "b"

    def test_evict_iteration(self):
        store = InstructionStore()
        store.push(0, 0, "a")
        store.push(0, 1, "b")
        store.push(1, 0, "c")
        assert store.evict_iteration(0) == 2
        assert len(store) == 1
        assert store.iterations() == [1]

    def test_iterations_sorted_unique(self):
        store = InstructionStore()
        store.push(5, 0, "a")
        store.push(2, 0, "b")
        store.push(2, 1, "c")
        assert store.iterations() == [2, 5]


class TestFailureMarkers:
    def test_failure_makes_fetch_raise(self):
        store = InstructionStore()
        store.push_failure(0, "planner exploded")
        with pytest.raises(PlanFailedError, match="planner exploded") as excinfo:
            store.fetch(0, 0)
        # The exception carries the failed store key for diagnostics.
        assert excinfo.value.iteration == 0

    def test_failure_reports_ready_for_every_rank(self):
        """Polling executors must wake up on a failed iteration, whatever
        their rank, instead of spinning until their fetch timeout."""
        store = InstructionStore()
        assert not store.ready(0, 0)
        store.push_failure(0, "boom")
        assert store.ready(0, 0)
        assert store.ready(0, 3)

    def test_failure_is_not_a_not_ready_error(self):
        """Executors retry PlanNotReadyError; PlanFailedError must escape
        that retry loop."""
        store = InstructionStore()
        store.push_failure(1, "boom")
        with pytest.raises(PlanFailedError):
            store.fetch(1, 0)
        assert not issubclass(PlanFailedError, PlanNotReadyError)

    def test_late_failure_marks_pushed_plans(self):
        """Markers are last-writer-wins: a failure pushed *after* a plan
        (e.g. the planning worker died right after shipping some replicas)
        still fails the iteration."""
        store = InstructionStore()
        store.push(0, 0, "plan")
        store.push_failure(0, "late failure")
        with pytest.raises(PlanFailedError):
            store.fetch(0, 0)

    def test_push_after_failure_clears_the_marker(self):
        """Regression (stale failure markers): a successful push supersedes
        an earlier failure marker — under the old "failure wins" contract a
        retried job could never re-publish a plan for an iteration a
        previous attempt had failed, permanently poisoning every rank."""
        store = InstructionStore()
        store.push_failure(0, "first attempt exploded")
        with pytest.raises(PlanFailedError):
            store.fetch(0, 0)
        store.push(0, 0, "retried plan")
        assert store.fetch(0, 0) == "retried plan"
        assert store.failed_iterations() == {}
        # Ranks the retry has not reached yet poll "not ready", not "failed".
        with pytest.raises(PlanNotReadyError):
            store.fetch(0, 1)

    def test_retry_after_failure_round_trip(self):
        """Full retry cycle: fail, re-push every rank, fetch everywhere."""
        store = InstructionStore()
        store.push_failure(2, "boom")
        for rank in range(2):
            store.push(2, rank, f"plan-{rank}")
        for rank in range(2):
            assert store.fetch(2, rank) == f"plan-{rank}"
        assert store.ready(2, 0) and store.ready(2, 1)
        assert store.failed_iterations() == {}

    def test_evict_clears_failure(self):
        store = InstructionStore()
        store.push_failure(0, "boom")
        store.evict_iteration(0)
        assert not store.ready(0, 0)
        assert store.failed_iterations() == {}
        with pytest.raises(PlanNotReadyError):
            store.fetch(0, 0)

    def test_failed_iterations_listing(self):
        store = InstructionStore()
        store.push_failure(3, "a")
        store.push_failure(1, "b")
        assert store.failed_iterations() == {3: "a", 1: "b"}

    def test_len_and_iter(self):
        store = InstructionStore()
        store.push(0, 0, "a")
        store.push(0, 1, "b")
        assert len(store) == 2
        assert set(store) == {(DEFAULT_JOB, 0, 0), (DEFAULT_JOB, 0, 1)}

    def test_job_namespaces_are_isolated(self):
        """Plans of different jobs never collide, even at the same
        (iteration, replica) coordinates."""
        store = InstructionStore()
        store.push(0, 0, "plan-a", job="a")
        store.push(0, 0, "plan-b", job="b")
        assert store.fetch(0, 0, job="a") == "plan-a"
        assert store.fetch(0, 0, job="b") == "plan-b"
        assert store.iterations(job="a") == [0]
        with pytest.raises(PlanNotReadyError):
            store.fetch(0, 0)  # the default namespace is untouched
        assert store.jobs() == ["a", "b"]

    def test_failure_marker_scoped_to_its_job(self):
        """Regression (shared-store poisoning): a failure marker for one
        job's iteration must not fail every rank of every *other* job that
        happens to share the iteration index."""
        store = InstructionStore()
        store.push(3, 0, "healthy-plan", job="healthy")
        store.push_failure(3, "boom", job="doomed")
        assert store.fetch(3, 0, job="healthy") == "healthy-plan"
        assert not store.ready(3, 1)  # default namespace unaffected too
        with pytest.raises(PlanFailedError) as excinfo:
            store.fetch(3, 0, job="doomed")
        assert excinfo.value.iteration == 3
        assert excinfo.value.job == "doomed"
        assert store.failed_iterations(job="doomed") == {3: "boom"}
        assert store.failed_iterations(job="healthy") == {}

    def test_evict_job_removes_plans_and_markers(self):
        store = InstructionStore()
        store.push(0, 0, "a", job="gone")
        store.push(1, 0, "b", job="gone")
        store.push_failure(2, "boom", job="gone")
        store.push(0, 0, "keep", job="stays")
        assert store.evict_job("gone") == 2
        assert store.iterations(job="gone") == []
        assert store.failed_iterations(job="gone") == {}
        assert store.fetch(0, 0, job="stays") == "keep"
        assert store.jobs() == ["stays"]

    def test_evict_iteration_is_job_scoped(self):
        store = InstructionStore()
        store.push(0, 0, "a", job="x")
        store.push(0, 0, "b", job="y")
        assert store.evict_iteration(0, job="x") == 1
        assert store.fetch(0, 0, job="y") == "b"

    def test_thread_safety_under_concurrent_pushes(self):
        """Concurrent planner threads should not lose plans."""
        store = InstructionStore()

        def worker(offset: int) -> None:
            for i in range(200):
                store.push(offset * 1000 + i, 0, i)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store) == 800
