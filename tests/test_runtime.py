"""Tests for the planner/executor runtime (planning-execution overlap)."""

from __future__ import annotations

import time

import pytest

from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.data.sampler import MiniBatchSampler
from repro.instructions.store import InstructionStore, PlanFailedError, PlanNotReadyError
from repro.runtime.executor_service import ExecutorService
from repro.runtime.orchestrator import TrainingOrchestrator
from repro.runtime.planner_pool import PlannerPool


class ExplodingPlanner:
    """Picklable planner that always fails (exercises the failure paths)."""

    def plan(self, samples, iteration=0):
        raise RuntimeError(f"boom on iteration {iteration}")


class HangingPlanner:
    """Picklable planner that blocks forever (exercises crash detection)."""

    def plan(self, samples, iteration=0):  # pragma: no cover - killed mid-sleep
        time.sleep(300)
        raise RuntimeError("unreachable")


def _wait_until(predicate, timeout=60.0):
    deadline = time.time() + timeout
    while not predicate() and time.time() < deadline:
        time.sleep(0.01)
    return predicate()


@pytest.fixture(scope="module")
def planner(gpt_cost_model):
    return DynaPipePlanner(
        gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
    )


@pytest.fixture(scope="module")
def minibatches(flan_samples_gpt):
    sampler = MiniBatchSampler(flan_samples_gpt, 8192, seed=0)
    batches = []
    for minibatch in sampler.epoch(0):
        batches.append(minibatch.samples)
        if len(batches) >= 4:
            break
    return batches


@pytest.fixture(scope="module")
def minibatches_t5(flan_samples):
    sampler = MiniBatchSampler(flan_samples, 8192, seed=0)
    batches = []
    for minibatch in sampler.epoch(0):
        batches.append(minibatch.samples)
        if len(batches) >= 3:
            break
    return batches


class TestSpecSpill:
    def test_spec_file_written_once_and_reclaimed_with_planner(self, gpt_cost_model):
        """The spilled spec file is shared across payload builds for one
        planner object and unlinked when the planner is garbage-collected
        (one fleet-job attempt = one planner must not leak a profile-sized
        temp file)."""
        import gc
        import os

        from repro.runtime.planner_pool import _planner_payload, _rebuild_planner

        local = DynaPipePlanner(
            gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        first = _planner_payload(local)
        second = _planner_payload(local)
        assert first["kind"] == "spec_file"
        assert first["path"] == second["path"]
        path = first["path"]
        assert os.path.exists(path)
        rebuilt = _rebuild_planner(first)
        assert isinstance(rebuilt, DynaPipePlanner)
        assert rebuilt.data_parallel_size == local.data_parallel_size
        del local
        gc.collect()
        assert not os.path.exists(path)

    def test_non_json_spec_falls_back_to_pickle(self):
        import pickle

        from repro.runtime.planner_pool import _planner_payload

        payload = _planner_payload(SpecNotJsonPlanner())
        assert payload["kind"] == "pickle"
        assert isinstance(pickle.loads(payload["blob"]), SpecNotJsonPlanner)


class SpecNotJsonPlanner:
    """Exposes ``to_spec`` but its spec is not JSON-safe (and it pickles fine)."""

    def to_spec(self):
        return {"bad": ExplodingPlanner()}

    def plan(self, samples, iteration=0):  # pragma: no cover - never planned
        raise NotImplementedError


class TestPlannerPool:
    def test_plans_pushed_to_store(self, planner, minibatches):
        store = InstructionStore()
        pool = PlannerPool(planner=planner, minibatches=minibatches, store=store, num_workers=1)
        pool.start()
        try:
            deadline = time.time() + 30
            while len(pool.planned_iterations()) < len(minibatches) and time.time() < deadline:
                time.sleep(0.01)
        finally:
            pool.stop()
        assert pool.planned_iterations() == list(range(len(minibatches)))
        assert not pool.errors
        assert store.ready(0, 0)

    def test_lookahead_limits_planning(self, planner, minibatches):
        store = InstructionStore()
        pool = PlannerPool(
            planner=planner, minibatches=minibatches, store=store, num_workers=1, lookahead=1
        )
        pool.start()
        try:
            deadline = time.time() + 30
            while not store.ready(0, 0) and time.time() < deadline:
                time.sleep(0.01)
            time.sleep(0.2)
            # Without consumption only the look-ahead window is planned.
            assert len(pool.planned_iterations()) <= 2
            pool.notify_consumed(0)
            deadline = time.time() + 30
            while not store.ready(1, 0) and time.time() < deadline:
                time.sleep(0.01)
            assert store.ready(1, 0)
            # Consumed iterations are evicted from the store.
            with pytest.raises(PlanNotReadyError):
                store.fetch(0, 0)
        finally:
            pool.stop()

    def test_invalid_arguments(self, planner, minibatches):
        with pytest.raises(ValueError):
            PlannerPool(planner=planner, minibatches=minibatches, store=InstructionStore(), num_workers=0)
        with pytest.raises(ValueError):
            PlannerPool(planner=planner, minibatches=minibatches, store=InstructionStore(), lookahead=0)


class TestProcessPoolBitIdentical:
    """Process-pool plans must match serial in-process planning bit for bit."""

    def _assert_pool_matches_serial(self, cost_model, batches):
        pooled = DynaPipePlanner(
            cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        store = InstructionStore()
        pool = PlannerPool(
            planner=pooled, minibatches=batches, store=store,
            num_workers=2, lookahead=len(batches), backend="process",
        )
        pool.start()
        try:
            assert _wait_until(
                lambda: len(pool.planned_iterations()) >= len(batches), timeout=120
            ), f"only planned {pool.planned_iterations()}: {pool.errors}"
        finally:
            abandoned = pool.stop()
        assert not pool.errors
        assert not abandoned
        serial = DynaPipePlanner(
            cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        for iteration, samples in enumerate(batches):
            expected = serial.plan(list(samples), iteration=iteration)
            for replica, plan in enumerate(expected.plans):
                stored = store.fetch(iteration, replica)
                want = plan.to_dict()
                # Planning wall-clock is the only nondeterministic field.
                want["metadata"]["planning_time_s"] = stored["metadata"]["planning_time_s"]
                assert stored == want, f"iteration {iteration} replica {replica}"

    def test_gpt_plans_bit_identical(self, gpt_cost_model, minibatches):
        self._assert_pool_matches_serial(gpt_cost_model, minibatches)

    def test_t5_plans_bit_identical(self, t5_cost_model, minibatches_t5):
        self._assert_pool_matches_serial(t5_cost_model, minibatches_t5)


class TestPlannerPoolFailurePaths:
    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_worker_exception_pushes_failure_marker(self, backend, minibatches):
        store = InstructionStore()
        pool = PlannerPool(
            planner=ExplodingPlanner(), minibatches=minibatches, store=store,
            num_workers=1, backend=backend,
        )
        pool.start()
        try:
            assert _wait_until(lambda: store.ready(0, 0))
            with pytest.raises(PlanFailedError, match="boom"):
                store.fetch(0, 0)
            assert _wait_until(lambda: 0 in pool.failed_iterations())
            assert any(iteration == 0 for iteration, _ in pool.errors)
        finally:
            pool.stop()

    def test_executor_fails_fast_not_at_timeout(self, gpt_cost_model, minibatches):
        """A planning failure reaches the polling executor well before its
        fetch timeout instead of leaving it to spin until the deadline."""
        store = InstructionStore()
        pool = PlannerPool(
            planner=ExplodingPlanner(), minibatches=minibatches, store=store, num_workers=1
        )
        service = ExecutorService(
            cost_model=gpt_cost_model, store=store, fetch_timeout_s=120.0
        )
        pool.start()
        try:
            start = time.perf_counter()
            with pytest.raises(PlanFailedError):
                service.run_iteration(0)
            assert time.perf_counter() - start < 60.0
        finally:
            pool.stop()

    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_stop_reports_abandoned_iterations(self, backend, planner, minibatches):
        store = InstructionStore()
        pool = PlannerPool(
            planner=planner, minibatches=minibatches, store=store,
            num_workers=1, lookahead=len(minibatches), backend=backend,
        )
        pool.start()
        abandoned = pool.stop()
        planned = set(pool.planned_iterations())
        # Every enqueued iteration is accounted for exactly once: either it
        # was planned before the drain or it is reported abandoned — so a
        # restart neither double-plans nor skips.
        assert planned.isdisjoint(abandoned)
        assert planned | set(abandoned) | set(pool.failed_iterations()) == set(
            range(len(minibatches))
        )
        assert pool.abandoned == abandoned
        # A defensive second stop() keeps the first snapshot.
        assert pool.stop() == abandoned
        assert pool.abandoned == abandoned

    def test_worker_process_crash_surfaces_failure(self, minibatches):
        store = InstructionStore()
        pool = PlannerPool(
            planner=HangingPlanner(), minibatches=minibatches, store=store,
            num_workers=1, lookahead=2, backend="process",
        )
        pool.start()
        try:
            assert _wait_until(lambda: bool(pool._claims))
            pool._processes[0].kill()
            assert _wait_until(lambda: store.ready(0, 0))
            with pytest.raises(PlanFailedError, match="died|exited"):
                store.fetch(0, 0)
            assert pool.errors
        finally:
            pool.stop()

    def test_lost_task_sweep_confirms_over_two_passes(self, planner, minibatches):
        """A task dequeued by a worker that died before its claim arrived is
        in no queue and no claim; the crash sweep must fail it — but only
        after a second pass, giving an in-flight claim message time to land."""
        import queue as queue_module

        from repro.instructions.store import DEFAULT_JOB

        pool = PlannerPool(
            planner=planner, minibatches=minibatches, store=InstructionStore(),
            num_workers=1, backend="thread",
        )
        stream = pool._streams[DEFAULT_JOB]
        pool._queue = queue_module.Queue()
        # Still safely enqueued: (job, iteration, samples, planner ref).
        pool._queue.put((DEFAULT_JOB, 2, list(minibatches[2]), planner))
        stream.next_to_enqueue = 3
        stream.completed.add(0)
        # Iteration 1 was dequeued by a worker that died pre-claim: sweep 1
        # only marks it suspect, sweep 2 confirms it lost.
        pool._reconcile_lost_tasks()
        assert pool.failed_iterations() == []
        assert pool._suspect_lost == {(DEFAULT_JOB, 1)}
        pool._reconcile_lost_tasks()
        assert pool.failed_iterations() == [1]
        assert not pool.store.ready(2, 0)
        with pytest.raises(PlanFailedError, match="died holding"):
            pool.store.fetch(1, 0)
        # The enqueued task survived the sweep's drain-and-requeue.
        assert pool._queue.get_nowait()[1] == 2

    def test_refill_after_total_worker_loss_fails_new_iterations(self, minibatches):
        """Once every worker is gone, iterations entering the look-ahead
        window later must get failure markers too — not sit on a task queue
        nobody drains while the executor spins to its fetch timeout."""
        store = InstructionStore()
        pool = PlannerPool(
            planner=HangingPlanner(), minibatches=minibatches, store=store,
            num_workers=1, lookahead=1, backend="process",
        )
        pool.start()
        try:
            assert _wait_until(lambda: bool(pool._claims))
            pool._processes[0].kill()
            assert _wait_until(lambda: store.ready(0, 0))
            # Advance the window: iteration 1 only enters the queue now.
            pool.notify_consumed(0)
            assert store.ready(1, 0)
            with pytest.raises(PlanFailedError):
                store.fetch(1, 0)
        finally:
            pool.stop()

    def test_orchestrator_raises_on_planning_failure(
        self, gpt_cost_model, flan_samples_gpt
    ):
        orchestrator = TrainingOrchestrator(
            ExplodingPlanner(),
            gpt_cost_model,
            flan_samples_gpt,
            global_batch_tokens=8192,
            num_iterations=2,
        )
        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="planning failed"):
            orchestrator.run()
        assert time.perf_counter() - start < 60.0


class GatedPlanner:
    """Thread-backend planner that blocks until released (one test's gate)."""

    def __init__(self, inner):
        import threading

        self.gate = threading.Event()
        self.inner = inner

    def plan(self, samples, iteration=0):
        self.gate.wait(30)
        return self.inner.plan(samples, iteration=iteration)


class TestMultiJobPool:
    """The pool as a fleet-wide planning cluster: dynamic job streams."""

    def _config(self):
        return PlannerConfig(order_search=False, tmax_sample_count=8)

    def test_two_job_streams_bit_identical_and_isolated(
        self, gpt_cost_model, t5_cost_model, minibatches, minibatches_t5
    ):
        """One process pool serves two jobs with *different* planners; every
        plan matches serial planning bit for bit, lands under its job's
        (job, iteration, replica) store keys at absolute iterations, and
        per-job accounting never mixes the streams."""
        store = InstructionStore()
        pool = PlannerPool(store=store, num_workers=2, backend="process", lookahead=8)
        pool.start()
        try:
            pool.submit_job(
                "gpt-job",
                DynaPipePlanner(gpt_cost_model, config=self._config()),
                minibatches,
            )
            # A resumed stream: minibatches_t5[0] is absolute iteration 5.
            pool.submit_job(
                "t5-job",
                DynaPipePlanner(t5_cost_model, config=self._config()),
                minibatches_t5,
                start=5,
            )
            assert _wait_until(
                lambda: len(pool.planned_iterations("gpt-job")) >= len(minibatches)
                and len(pool.planned_iterations("t5-job")) >= len(minibatches_t5),
                timeout=120,
            ), (pool.planned_iterations("gpt-job"), pool.planned_iterations("t5-job"),
                pool.errors, pool.pool_errors)
        finally:
            pool.stop()
        assert pool.planned_iterations("gpt-job") == list(range(len(minibatches)))
        assert pool.planned_iterations("t5-job") == [5 + i for i in range(len(minibatches_t5))]
        assert not pool.job_errors("gpt-job") and not pool.job_errors("t5-job")
        for job, cost_model, batches, start in (
            ("gpt-job", gpt_cost_model, minibatches, 0),
            ("t5-job", t5_cost_model, minibatches_t5, 5),
        ):
            serial = DynaPipePlanner(cost_model, config=self._config())
            for position, samples in enumerate(batches):
                iteration = start + position
                expected = serial.plan(list(samples), iteration=iteration)
                for replica, plan in enumerate(expected.plans):
                    stored = store.fetch(iteration, replica, job=job)
                    want = plan.to_dict()
                    want["metadata"]["planning_time_s"] = stored["metadata"]["planning_time_s"]
                    assert stored == want, (job, iteration, replica)

    def test_retire_job_drains_only_its_tasks(self, planner, minibatches):
        """Retiring one stream cancels exactly its queued tasks: the
        co-tenant stream's in-flight work proceeds untouched."""
        store = InstructionStore()
        pool = PlannerPool(store=store, num_workers=1, backend="thread")
        pool.start()
        try:
            gated = GatedPlanner(planner)
            pool.submit_job("slow", gated, minibatches[:1])
            # The single worker is now blocked inside slow:0.
            assert _wait_until(lambda: bool(pool._claims))
            pool.submit_job("victim", planner, minibatches[:2])
            abandoned = pool.retire_job("victim")
            assert abandoned == [0, 1]
            assert pool.job_abandoned("victim") == [0, 1]
            gated.gate.set()
            assert _wait_until(lambda: pool.planned_iterations("slow") == [0])
        finally:
            pool.stop()
        assert store.ready(0, 0, job="slow")
        assert not store.ready(0, 0, job="victim")
        assert store.jobs() == ["slow"]
        assert pool.planned_iterations("victim") == []
        # A second retire keeps the first snapshot.
        assert pool.retire_job("victim") == [0, 1]

    def test_late_result_of_retired_stream_is_dropped(self, planner, minibatches):
        """A worker already planning a retired job's iteration finishes, but
        its result must be discarded — the attempt it belonged to is gone,
        and a successor stream under a new name must never inherit it."""
        store = InstructionStore()
        pool = PlannerPool(store=store, num_workers=1, backend="thread")
        pool.start()
        try:
            gated = GatedPlanner(planner)
            pool.submit_job("dying", gated, minibatches[:1])
            assert _wait_until(lambda: bool(pool._claims))
            assert pool.retire_job("dying") == [0]
            gated.gate.set()
            # The worker completes the plan, the pool drops it.
            assert _wait_until(lambda: not pool._claims)
            time.sleep(0.05)
        finally:
            pool.stop()
        assert pool.planned_iterations("dying") == []
        assert not store.ready(0, 0, job="dying")
        assert store.jobs() == []

    def test_stream_failure_marker_scoped_to_its_job(self, planner, minibatches):
        """A failing stream's markers poison only its own namespace."""
        store = InstructionStore()
        pool = PlannerPool(store=store, num_workers=1, backend="thread")
        pool.start()
        try:
            pool.submit_job("doomed", ExplodingPlanner(), minibatches[:2])
            pool.submit_job("healthy", planner, minibatches[:2])
            assert _wait_until(
                lambda: len(pool.failed_iterations("doomed")) == 2
                and len(pool.planned_iterations("healthy")) == 2
            ), (pool.failed_iterations("doomed"), pool.planned_iterations("healthy"))
        finally:
            pool.stop()
        with pytest.raises(PlanFailedError, match="boom"):
            store.fetch(0, 0, job="doomed")
        assert store.fetch(0, 0, job="healthy") is not None
        assert pool.job_errors("healthy") == []
        assert [it for it, _ in pool.job_errors("doomed")] == [0, 1]

    def test_retired_stream_releases_planner_and_spec_file(
        self, gpt_cost_model, minibatches
    ):
        """Retiring a stream drops its planner and task ref, so a fleet
        churning through attempts neither accumulates profile databases in
        the parent nor pins spilled spec files on disk."""
        import gc
        import os

        store = InstructionStore()
        pool = PlannerPool(store=store, num_workers=1, backend="process")
        pool.start()
        try:
            local = DynaPipePlanner(gpt_cost_model, config=self._config())
            pool.submit_job("a", local, minibatches[:1])
            assert _wait_until(lambda: pool.planned_iterations("a") == [0]), (
                pool.errors, pool.pool_errors,
            )
            spec_path = pool._streams["a"].task_ref["path"]
            assert os.path.exists(spec_path)
            pool.retire_job("a")
            assert pool._streams["a"].planner is None
            assert pool._streams["a"].task_ref is None
            del local
            gc.collect()
            assert not os.path.exists(spec_path)
        finally:
            pool.stop()

    def test_submission_contract(self, planner, minibatches):
        pool = PlannerPool(store=InstructionStore(), num_workers=1, backend="thread")
        with pytest.raises(ValueError, match="non-empty"):
            pool.submit_job("", planner, minibatches)
        with pytest.raises(ValueError, match="start"):
            pool.submit_job("a", planner, minibatches, start=-1)
        pool.submit_job("a", planner, minibatches[:1])
        with pytest.raises(ValueError, match="duplicate"):
            pool.submit_job("a", planner, minibatches[:1])
        with pytest.raises(KeyError):
            pool.retire_job("unknown")
        assert pool.job_names() == ["a"]
        pool.start()
        try:
            assert _wait_until(lambda: pool.planned_iterations("a") == [0])
        finally:
            pool.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            pool.submit_job("b", planner, minibatches[:1])
        # Fleet-mode construction: minibatches without a planner is an error.
        with pytest.raises(ValueError, match="planner"):
            PlannerPool(minibatches=minibatches)


class TestExecutorService:
    def test_executes_stored_plan(self, planner, minibatches, gpt_cost_model):
        store = InstructionStore()
        plan = planner.plan(minibatches[0], iteration=0)
        store.push(0, 0, plan.plans[0].to_dict())
        service = ExecutorService(cost_model=gpt_cost_model, store=store, noise_std=0.0)
        stats = service.run_iteration(0)
        assert stats.simulated_ms > 0
        assert stats.peak_memory_bytes > 0
        assert stats.stall_s < 1.0

    def test_timeout_when_plan_missing(self, gpt_cost_model):
        service = ExecutorService(
            cost_model=gpt_cost_model, store=InstructionStore(), fetch_timeout_s=0.05
        )
        with pytest.raises(PlanNotReadyError):
            service.run_iteration(0)


class TestOrchestrator:
    def test_overlapped_run(self, planner, gpt_cost_model, flan_samples_gpt):
        orchestrator = TrainingOrchestrator(
            planner,
            gpt_cost_model,
            flan_samples_gpt,
            global_batch_tokens=8192,
            num_iterations=3,
            planner_workers=2,
            lookahead=3,
            noise_std=0.02,
            seed=0,
        )
        report = orchestrator.run()
        assert report.iterations == 3
        assert report.total_planning_s > 0
        assert report.total_simulated_ms > 0
        # Planning for later iterations overlaps execution of earlier ones, so
        # the exposed stall is well below the total planning time.
        assert report.exposed_stall_s <= report.total_planning_s
        assert 0.0 <= report.overlap_fraction <= 1.0

    def test_spawn_failure_does_not_fail_a_successful_run(
        self, planner, gpt_cost_model, flan_samples_gpt
    ):
        """Regression (misattributed planning errors): a pool-level incident
        — e.g. one worker of several failing to start while its peers plan
        every consumed iteration — must not turn a successful run into a
        RuntimeError blaming 'iteration -1'.  It is surfaced in the report
        instead."""
        orchestrator = TrainingOrchestrator(
            planner,
            gpt_cost_model,
            flan_samples_gpt,
            global_batch_tokens=8192,
            num_iterations=2,
            planner_workers=1,
            planner_backend="thread",
        )
        orchestrator.pool._pool_errors.append(
            RuntimeError("planner worker planner-1 failed to start: synthetic")
        )
        report = orchestrator.run()  # must not raise
        assert report.iterations == 2
        assert (-1, "planner worker planner-1 failed to start: synthetic") in [
            (it, msg) for it, msg in report.planning_errors
        ]

    def test_loop_failure_names_the_true_cause(self, gpt_cost_model, flan_samples_gpt):
        """Regression (misattributed planning errors): when the fetched
        iteration's failure has no matching pool error entry, the raised
        error must carry the failure marker's own message — not fall back
        to errors[0], which may be an unrelated incident (here a synthetic
        worker spawn failure recorded at key -1)."""
        orchestrator = TrainingOrchestrator(
            DynaPipePlanner(
                gpt_cost_model,
                config=PlannerConfig(order_search=False, tmax_sample_count=8),
            ),
            gpt_cost_model,
            flan_samples_gpt,
            global_batch_tokens=8192,
            num_iterations=2,
            planner_workers=1,
            planner_backend="thread",
        )
        # The marker exists in the store, but no pool error entry matches
        # iteration 0 — only an unrelated pool-level incident is recorded.
        orchestrator.pool._streams.clear()  # nothing will ever be planned
        orchestrator.store.push_failure(0, "true cause: planner OOM")
        orchestrator.pool._pool_errors.append(
            RuntimeError("planner worker planner-1 failed to start: unrelated")
        )
        with pytest.raises(RuntimeError, match="iteration 0.*true cause") as excinfo:
            orchestrator.run()
        assert "failed to start" not in str(excinfo.value)

    def test_too_few_minibatches_rejected(self, planner, gpt_cost_model, flan_samples_gpt):
        with pytest.raises(ValueError):
            TrainingOrchestrator(
                planner,
                gpt_cost_model,
                flan_samples_gpt[:5],
                global_batch_tokens=8192,
                num_iterations=100,
            )


class TestConcurrentPlanning:
    def test_two_workers_match_serial_plans(self, gpt_cost_model, minibatches):
        """Concurrent workers sharing one planner (and hence one batcher and
        cost-model cache) must produce the same plans as serial planning —
        the shared window-geometry slot and DP solutions must not cross
        threads."""
        from repro.core.planner import DynaPipePlanner, PlannerConfig

        shared = DynaPipePlanner(
            gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        store = InstructionStore()
        pool = PlannerPool(
            planner=shared, minibatches=minibatches, store=store, num_workers=2,
            backend="thread",
        )
        pool.start()
        try:
            deadline = time.time() + 30
            while len(pool.planned_iterations()) < len(minibatches) and time.time() < deadline:
                time.sleep(0.01)
        finally:
            pool.stop()
        assert not pool.errors

        serial = DynaPipePlanner(
            gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        for iteration, samples in enumerate(minibatches):
            expected = serial.plan(list(samples), iteration=iteration)
            stored = store.fetch(iteration, 0)
            assert stored["metadata"]["num_microbatches"] == len(
                expected.replicas[0].micro_batches
            )
            assert stored["metadata"]["predicted_makespan_ms"] == pytest.approx(
                expected.replicas[0].simulation.makespan_ms
            )
