"""Tests for the planner/executor runtime (planning-execution overlap)."""

from __future__ import annotations

import time

import pytest

from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.data.sampler import MiniBatchSampler
from repro.instructions.store import InstructionStore, PlanNotReadyError
from repro.runtime.executor_service import ExecutorService
from repro.runtime.orchestrator import TrainingOrchestrator
from repro.runtime.planner_pool import PlannerPool


@pytest.fixture(scope="module")
def planner(gpt_cost_model):
    return DynaPipePlanner(
        gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
    )


@pytest.fixture(scope="module")
def minibatches(flan_samples_gpt):
    sampler = MiniBatchSampler(flan_samples_gpt, 8192, seed=0)
    batches = []
    for minibatch in sampler.epoch(0):
        batches.append(minibatch.samples)
        if len(batches) >= 4:
            break
    return batches


class TestPlannerPool:
    def test_plans_pushed_to_store(self, planner, minibatches):
        store = InstructionStore()
        pool = PlannerPool(planner=planner, minibatches=minibatches, store=store, num_workers=1)
        pool.start()
        try:
            deadline = time.time() + 30
            while len(pool.planned_iterations()) < len(minibatches) and time.time() < deadline:
                time.sleep(0.01)
        finally:
            pool.stop()
        assert pool.planned_iterations() == list(range(len(minibatches)))
        assert not pool.errors
        assert store.ready(0, 0)

    def test_lookahead_limits_planning(self, planner, minibatches):
        store = InstructionStore()
        pool = PlannerPool(
            planner=planner, minibatches=minibatches, store=store, num_workers=1, lookahead=1
        )
        pool.start()
        try:
            deadline = time.time() + 30
            while not store.ready(0, 0) and time.time() < deadline:
                time.sleep(0.01)
            time.sleep(0.2)
            # Without consumption only the look-ahead window is planned.
            assert len(pool.planned_iterations()) <= 2
            pool.notify_consumed(0)
            deadline = time.time() + 30
            while not store.ready(1, 0) and time.time() < deadline:
                time.sleep(0.01)
            assert store.ready(1, 0)
            # Consumed iterations are evicted from the store.
            with pytest.raises(PlanNotReadyError):
                store.fetch(0, 0)
        finally:
            pool.stop()

    def test_invalid_arguments(self, planner, minibatches):
        with pytest.raises(ValueError):
            PlannerPool(planner=planner, minibatches=minibatches, store=InstructionStore(), num_workers=0)
        with pytest.raises(ValueError):
            PlannerPool(planner=planner, minibatches=minibatches, store=InstructionStore(), lookahead=0)


class TestExecutorService:
    def test_executes_stored_plan(self, planner, minibatches, gpt_cost_model):
        store = InstructionStore()
        plan = planner.plan(minibatches[0], iteration=0)
        store.push(0, 0, plan.plans[0].to_dict())
        service = ExecutorService(cost_model=gpt_cost_model, store=store, noise_std=0.0)
        stats = service.run_iteration(0)
        assert stats.simulated_ms > 0
        assert stats.peak_memory_bytes > 0
        assert stats.stall_s < 1.0

    def test_timeout_when_plan_missing(self, gpt_cost_model):
        service = ExecutorService(
            cost_model=gpt_cost_model, store=InstructionStore(), fetch_timeout_s=0.05
        )
        with pytest.raises(PlanNotReadyError):
            service.run_iteration(0)


class TestOrchestrator:
    def test_overlapped_run(self, planner, gpt_cost_model, flan_samples_gpt):
        orchestrator = TrainingOrchestrator(
            planner,
            gpt_cost_model,
            flan_samples_gpt,
            global_batch_tokens=8192,
            num_iterations=3,
            planner_workers=2,
            lookahead=3,
            noise_std=0.02,
            seed=0,
        )
        report = orchestrator.run()
        assert report.iterations == 3
        assert report.total_planning_s > 0
        assert report.total_simulated_ms > 0
        # Planning for later iterations overlaps execution of earlier ones, so
        # the exposed stall is well below the total planning time.
        assert report.exposed_stall_s <= report.total_planning_s
        assert 0.0 <= report.overlap_fraction <= 1.0

    def test_too_few_minibatches_rejected(self, planner, gpt_cost_model, flan_samples_gpt):
        with pytest.raises(ValueError):
            TrainingOrchestrator(
                planner,
                gpt_cost_model,
                flan_samples_gpt[:5],
                global_batch_tokens=8192,
                num_iterations=100,
            )


class TestConcurrentPlanning:
    def test_two_workers_match_serial_plans(self, gpt_cost_model, minibatches):
        """Concurrent workers sharing one planner (and hence one batcher and
        cost-model cache) must produce the same plans as serial planning —
        the shared window-geometry slot and DP solutions must not cross
        threads."""
        from repro.core.planner import DynaPipePlanner, PlannerConfig

        shared = DynaPipePlanner(
            gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        store = InstructionStore()
        pool = PlannerPool(
            planner=shared, minibatches=minibatches, store=store, num_workers=2
        )
        pool.start()
        try:
            deadline = time.time() + 30
            while len(pool.planned_iterations()) < len(minibatches) and time.time() < deadline:
                time.sleep(0.01)
        finally:
            pool.stop()
        assert not pool.errors

        serial = DynaPipePlanner(
            gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
        )
        for iteration, samples in enumerate(minibatches):
            expected = serial.plan(list(samples), iteration=iteration)
            stored = store.fetch(iteration, 0)
            assert stored["metadata"]["num_microbatches"] == len(
                expected.replicas[0].micro_batches
            )
            assert stored["metadata"]["predicted_makespan_ms"] == pytest.approx(
                expected.replicas[0].simulation.makespan_ms
            )
