"""Tests of the top-level public API surface."""

from __future__ import annotations

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is not importable"

    def test_key_entry_points_present(self):
        for name in (
            "DynaPipePlanner",
            "MLMDeepSpeedBaseline",
            "CostModel",
            "SyntheticFlanDataset",
            "TrainingSession",
            "TrainingOrchestrator",
            "get_model_config",
        ):
            assert name in repro.__all__

    def test_subpackages_importable(self):
        import importlib

        for module in (
            "repro.core",
            "repro.comm",
            "repro.schedule",
            "repro.simulator",
            "repro.costmodel",
            "repro.model",
            "repro.cluster",
            "repro.data",
            "repro.batching",
            "repro.baselines",
            "repro.parallel",
            "repro.training",
            "repro.runtime",
            "repro.instructions",
            "repro.fleet",
            "repro.utils",
        ):
            assert importlib.import_module(module) is not None

    def test_public_items_have_docstrings(self):
        """Every public class/function exported at the top level is documented."""
        missing = [
            name
            for name in repro.__all__
            if name != "__version__"
            and not isinstance(getattr(repro, name), dict)
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not missing, f"missing docstrings for: {missing}"

    def test_quickstart_docstring_names_exist(self):
        """The module docstring's quickstart only references real symbols."""
        doc = repro.__doc__ or ""
        for name in ("CostModel", "DynaPipePlanner", "SyntheticFlanDataset", "get_model_config"):
            assert name in doc
            assert hasattr(repro, name)

    def test_editable_install_metadata(self):
        import importlib.metadata

        try:
            version = importlib.metadata.version("repro")
        except importlib.metadata.PackageNotFoundError:
            pytest.skip("package metadata not installed")
        assert version == repro.__version__
