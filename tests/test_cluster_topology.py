"""Tests for repro.cluster.topology."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology, DeviceCoordinate


class TestConstruction:
    def test_explicit_construction(self):
        topo = ClusterTopology(num_nodes=4, gpus_per_node=8)
        assert topo.num_gpus == 32

    def test_for_num_gpus_sub_node(self):
        topo = ClusterTopology.for_num_gpus(4)
        assert topo.num_nodes == 1
        assert topo.gpus_per_node == 4

    def test_for_num_gpus_multi_node(self):
        topo = ClusterTopology.for_num_gpus(32)
        assert topo.num_nodes == 4
        assert topo.gpus_per_node == 8

    def test_for_num_gpus_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            ClusterTopology.for_num_gpus(12)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ClusterTopology(0, 8)
        with pytest.raises(ValueError):
            ClusterTopology(1, 0)
        with pytest.raises(ValueError):
            ClusterTopology.for_num_gpus(0)


class TestIndexing:
    def test_global_index_roundtrip(self):
        topo = ClusterTopology(num_nodes=2, gpus_per_node=4)
        for device in topo.devices():
            index = topo.global_index(device)
            assert topo.device_of_global_index(index) == device

    def test_devices_count(self):
        topo = ClusterTopology(num_nodes=2, gpus_per_node=4)
        assert len(list(topo.devices())) == 8

    def test_global_index_out_of_range(self):
        topo = ClusterTopology(num_nodes=1, gpus_per_node=4)
        with pytest.raises(ValueError):
            topo.device_of_global_index(4)

    def test_same_node(self):
        topo = ClusterTopology(num_nodes=2, gpus_per_node=8)
        assert topo.same_node(0, 7)
        assert not topo.same_node(7, 8)


class TestCoordinateMapping:
    def test_tensor_ranks_contiguous(self):
        topo = ClusterTopology(num_nodes=1, gpus_per_node=8)
        indices = [
            topo.map_coordinate(
                DeviceCoordinate(data_rank=0, pipeline_rank=0, tensor_rank=t),
                pipeline_parallel=2,
                tensor_parallel=4,
            )
            for t in range(4)
        ]
        assert indices == [0, 1, 2, 3]

    def test_pipeline_ranks_after_tensor(self):
        topo = ClusterTopology(num_nodes=1, gpus_per_node=8)
        stage0 = topo.map_coordinate(
            DeviceCoordinate(0, 0, 0), pipeline_parallel=2, tensor_parallel=4
        )
        stage1 = topo.map_coordinate(
            DeviceCoordinate(0, 1, 0), pipeline_parallel=2, tensor_parallel=4
        )
        assert stage1 - stage0 == 4

    def test_out_of_range_coordinate(self):
        topo = ClusterTopology(num_nodes=1, gpus_per_node=8)
        with pytest.raises(ValueError):
            topo.map_coordinate(DeviceCoordinate(0, 0, 4), pipeline_parallel=2, tensor_parallel=4)
        with pytest.raises(ValueError):
            topo.map_coordinate(DeviceCoordinate(4, 0, 0), pipeline_parallel=2, tensor_parallel=4)

    def test_stage_adjacency_intra_node(self):
        topo = ClusterTopology(num_nodes=1, gpus_per_node=8)
        assert topo.stage_adjacent_same_node(pipeline_parallel=2, tensor_parallel=4)

    def test_stage_adjacency_inter_node(self):
        topo = ClusterTopology(num_nodes=4, gpus_per_node=8)
        # tp=8 fills a node, so adjacent pipeline stages live on different nodes.
        assert not topo.stage_adjacent_same_node(pipeline_parallel=4, tensor_parallel=8)


class TestNodeDevices:
    def test_node_devices_partition_the_cluster(self):
        topo = ClusterTopology(num_nodes=3, gpus_per_node=4)
        assert topo.node_devices(0) == (0, 1, 2, 3)
        assert topo.node_devices(2) == (8, 9, 10, 11)
        seen = [d for node in range(topo.num_nodes) for d in topo.node_devices(node)]
        assert seen == list(range(topo.num_gpus))
        for node in range(topo.num_nodes):
            for device in topo.node_devices(node):
                assert topo.node_of(device) == node

    def test_node_devices_out_of_range(self):
        topo = ClusterTopology(num_nodes=2, gpus_per_node=4)
        with pytest.raises(ValueError):
            topo.node_devices(2)
        with pytest.raises(ValueError):
            topo.node_devices(-1)
