"""Tests for repro.core.ordering (sample ordering before DP partitioning)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ordering import OrderingMethod, order_samples, path_length
from repro.data.tasks import Sample


def mixed() -> list[Sample]:
    return [
        Sample(900, 60),
        Sample(20, 4),
        Sample(400, 30),
        Sample(25, 4),
        Sample(1000, 70),
        Sample(50, 8),
        Sample(35, 6),
        Sample(60, 10),
    ]


class TestSortOrdering:
    def test_sorted_by_input_then_target(self):
        ordered = order_samples(mixed(), OrderingMethod.SORT)
        keys = [(s.input_tokens, s.target_tokens) for s in ordered]
        assert keys == sorted(keys)

    def test_decoder_only_sorts_by_total(self):
        samples = [Sample(10, 100), Sample(50, 5), Sample(30, 10)]
        ordered = order_samples(samples, OrderingMethod.SORT, decoder_only=True)
        totals = [s.total_tokens for s in ordered]
        assert totals == sorted(totals)

    def test_is_permutation(self):
        ordered = order_samples(mixed(), OrderingMethod.SORT)
        assert sorted(ordered) == sorted(mixed())

    def test_none_keeps_order(self):
        assert order_samples(mixed(), OrderingMethod.NONE) == mixed()

    def test_accepts_string_method(self):
        assert order_samples(mixed(), "sort") == order_samples(mixed(), OrderingMethod.SORT)

    def test_short_lists_returned_unchanged(self):
        one = [Sample(5, 1)]
        assert order_samples(one, OrderingMethod.SORT) == one


class TestTspOrdering:
    def test_is_permutation(self):
        ordered = order_samples(mixed(), OrderingMethod.TSP)
        assert sorted(ordered) == sorted(mixed())

    def test_tsp_not_longer_than_random_order(self):
        """The TSP heuristic's path should be no longer than the raw
        (sampling) order's path."""
        samples = mixed() * 3
        tsp = order_samples(samples, OrderingMethod.TSP)
        assert path_length(tsp) <= path_length(samples)

    def test_tsp_comparable_to_sort(self):
        """The paper's ablation finds sorting and TSP ordering comparable; the
        heuristic path should be within 2x of the sort path."""
        samples = mixed() * 4
        tsp_len = path_length(order_samples(samples, OrderingMethod.TSP))
        sort_len = path_length(order_samples(samples, OrderingMethod.SORT))
        assert tsp_len <= 2.0 * max(sort_len, 1.0)

    def test_deterministic(self):
        assert order_samples(mixed(), OrderingMethod.TSP, seed=0) == order_samples(
            mixed(), OrderingMethod.TSP, seed=0
        )

    @given(
        samples=st.lists(
            st.builds(
                Sample,
                input_tokens=st.integers(1, 4000),
                target_tokens=st.integers(0, 500),
            ),
            min_size=1,
            max_size=30,
        ),
        method=st.sampled_from(list(OrderingMethod)),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_method_returns_permutation(self, samples, method):
        ordered = order_samples(samples, method)
        assert sorted(ordered) == sorted(samples)


class TestPathLength:
    def test_empty_and_single(self):
        assert path_length([]) == 0.0
        assert path_length([Sample(10, 2)]) == 0.0

    def test_known_value(self):
        samples = [Sample(10, 5), Sample(20, 10), Sample(15, 5)]
        # |20-10| + |10-5| + |15-20| + |5-10| = 10 + 5 + 5 + 5 = 25
        assert path_length(samples) == pytest.approx(25.0)

    def test_decoder_only_uses_total(self):
        samples = [Sample(10, 5), Sample(20, 10)]
        assert path_length(samples, decoder_only=True) == pytest.approx(15.0)
