"""Differential ISA-conformance suite: local backend vs the simulator oracle.

The simulator (:mod:`repro.simulator.executor`) is the reference
implementation of the instruction ISA's channel semantics; the local
backend (:mod:`repro.backends.local`) really executes the same streams on
worker processes with real IPC.  This suite runs the *same* programs
through both and asserts they agree on everything timing-independent:

* per-device instruction completion order,
* per-channel transfer matching order and the completed-transfer set,
* the deadlock verdict — including *which* devices block on *which*
  instruction — for streams that cannot run to completion.

Programs come from three sources: the real planner (GPT and T5 models over
several mini-batch "seeds"), hypothesis-generated schedules
(``tests/strategies_instructions.py``), and a fixed known-mismatched
program used as the detection-latency regression.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings

import strategies_instructions
from repro.backends import (
    BackendOptions,
    ExecutionBackend,
    LocalBackendTimeoutError,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.simulator.executor import CommunicationDeadlockError
from repro.training.trainer import TrainerConfig, TrainingSession

#: Watchdog knobs tuned for tiny test programs: report blocks fast, keep a
#: hard budget far above any observed detection latency (< 1 s).
FAST_LOCAL = dict(block_report_s=0.25, grace_s=0.15, timeout_s=30.0, poll_s=0.005)

#: The structured deadlock fields both backends must agree on.
DETAIL_KEYS = ("device", "kind", "microbatch", "stage", "peer")


def unit_options() -> BackendOptions:
    return BackendOptions(
        compute_duration_fn=lambda instr: 1.0,
        transfer_time_fn=lambda nbytes, src, dst: 0.1,
    )


def run_both(streams, options=None):
    """Run the streams on both backends; returns (sim_report, local_report)."""
    options = options or unit_options()
    sim = get_backend("sim", options).run_report(streams)
    local = get_backend("local", options, **FAST_LOCAL).run_report(streams)
    return sim, local


def assert_conformant(streams, options=None):
    sim, local = run_both(streams, options)
    assert local.conformance_fingerprint() == sim.conformance_fingerprint()
    assert local.payload_errors == 0
    return sim, local


def deadlock_verdict(backend_name, streams, options=None):
    """Run expecting a deadlock; returns the structured error."""
    backend = get_backend(
        backend_name,
        options or unit_options(),
        **(FAST_LOCAL if backend_name == "local" else {}),
    )
    with pytest.raises(CommunicationDeadlockError) as excinfo:
        backend.run(streams)
    return excinfo.value


def shared_detail(error):
    """The backend-independent projection of ``blocked_detail``."""
    return sorted(
        tuple(entry[key] for key in DETAIL_KEYS) for entry in error.blocked_detail
    )


def assert_same_verdict(streams, options=None):
    sim_err = deadlock_verdict("sim", streams, options)
    local_err = deadlock_verdict("local", streams, options)
    assert local_err.blocked_devices == sim_err.blocked_devices
    assert shared_detail(local_err) == shared_detail(sim_err)
    return sim_err, local_err


# --------------------------------------------------------------- planner streams


@pytest.fixture(scope="module")
def gpt_planner(gpt_cost_model):
    return DynaPipePlanner(
        gpt_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
    )


@pytest.fixture(scope="module")
def t5_planner(t5_cost_model):
    return DynaPipePlanner(
        t5_cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=8)
    )


def cost_model_options(cost_model) -> BackendOptions:
    def duration(instr):
        cost = cost_model.stage_cost(instr.stage, instr.shape, instr.recompute)
        if type(instr).__name__ == "ForwardPass":
            return cost.forward_ms
        return cost.backward_ms

    return BackendOptions(
        compute_duration_fn=duration,
        transfer_time_fn=lambda nbytes, src, dst: 0.05,
    )


#: Three disjoint mini-batch draws per model — the "seeds" of the
#: acceptance criterion (the planner is deterministic given its samples).
SAMPLE_SEEDS = [slice(0, 40), slice(60, 110), slice(150, 210)]


class TestPlannerStreamConformance:
    """Local and sim agree on every real planner-produced program."""

    @pytest.mark.parametrize("seed_slice", SAMPLE_SEEDS, ids=["s0", "s1", "s2"])
    def test_gpt_plan_conformance(self, gpt_planner, flan_samples_gpt, seed_slice):
        plan = gpt_planner.plan(flan_samples_gpt[seed_slice])
        for replica in plan.plans:
            sim, local = assert_conformant(
                replica.device_instructions,
                cost_model_options(gpt_planner.cost_model),
            )
            assert len(local.result.transfer_log) == len(sim.result.transfer_log)

    @pytest.mark.parametrize("seed_slice", SAMPLE_SEEDS, ids=["s0", "s1", "s2"])
    def test_t5_plan_conformance(self, t5_planner, flan_samples, seed_slice):
        plan = t5_planner.plan(flan_samples[seed_slice])
        for replica in plan.plans:
            assert_conformant(
                replica.device_instructions,
                cost_model_options(t5_planner.cost_model),
            )


# ------------------------------------------------------------ hypothesis streams


class TestHypothesisConformance:
    """Property-based differential testing over the shared strategies
    (>= 50 generated programs per full run)."""

    @given(strategies_instructions.planned_streams())
    @settings(max_examples=35, deadline=None)
    def test_planned_streams_conform(self, streams):
        assert_conformant(streams)

    @given(strategies_instructions.head_mismatched_streams())
    @settings(max_examples=8, deadline=None)
    def test_mismatched_streams_same_deadlock_verdict(self, corrupted):
        streams, _where = corrupted
        assert_same_verdict(streams)

    @given(strategies_instructions.naive_streams())
    @settings(max_examples=7, deadline=None)
    def test_naive_streams_agree_either_way(self, streams):
        """Naive-order streams may or may not deadlock; the backends must
        agree on which, and on the details of whichever it is."""
        options = unit_options()
        try:
            sim = get_backend("sim", options).run_report(streams)
        except CommunicationDeadlockError:
            assert_same_verdict(streams, options)
        else:
            local = get_backend("local", options, **FAST_LOCAL).run_report(streams)
            assert local.conformance_fingerprint() == sim.conformance_fingerprint()


# ------------------------------------------------------------------ known hang


class TestKnownMismatchDetection:
    """The fixed corrupted program really hangs and is detected promptly."""

    def test_local_detects_within_timeout(self):
        streams, (device, i, j) = strategies_instructions.known_head_mismatch_streams()
        started = time.monotonic()
        try:
            local_err = deadlock_verdict("local", streams)
        except LocalBackendTimeoutError as err:  # pragma: no cover - diagnostic
            pytest.fail(f"watchdog timed out instead of detecting the hang: {err}")
        elapsed = time.monotonic() - started
        # Positive verdict, well inside the hard budget: the watchdog saw the
        # conclusive head mismatch rather than waiting out the clock.
        assert elapsed < FAST_LOCAL["timeout_s"] / 2
        assert local_err.blocked_devices
        assert any(entry.get("head_mismatch") for entry in local_err.blocked_detail)
        assert "order mismatch" in str(local_err)

    def test_verdict_matches_simulator(self):
        streams, _where = strategies_instructions.known_head_mismatch_streams()
        sim_err, local_err = assert_same_verdict(streams)
        # Every blocked entry names the hung Wait op's coordinates.
        for entry in sim_err.blocked_detail + local_err.blocked_detail:
            assert entry["kind"].startswith("wait_")
            assert entry["microbatch"] >= 0 and entry["stage"] >= 0


# -------------------------------------------------------------------- registry


class TestBackendRegistry:
    def test_available_backends(self):
        names = available_backends()
        assert "sim" in names and "local" in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("cuda")

    def test_error_lists_available(self):
        with pytest.raises(ValueError, match="sim"):
            get_backend("nope")

    def test_register_and_get_custom_backend(self):
        class NullBackend(ExecutionBackend):
            name = "null-test"

            def __init__(self, options=None):
                self.options = options

            def run(self, device_instructions):
                raise NotImplementedError

            def run_report(self, device_instructions):
                raise NotImplementedError

        register_backend("null-test", NullBackend)
        assert "null-test" in available_backends()
        assert isinstance(get_backend("null-test"), NullBackend)
        # Re-registering the same class is a no-op ...
        register_backend("null-test", NullBackend)
        # ... but shadowing an existing name with a different class is not.
        with pytest.raises(ValueError, match="already registered"):
            register_backend("null-test", type("Other", (NullBackend,), {}))

    def test_builtin_names_are_protected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("sim", type("FakeSim", (ExecutionBackend,), {}))


# ------------------------------------------------------------------- trainer


class TestTrainerThroughLocalBackend:
    def test_iteration_executes_on_local_backend(self, gpt_planner, flan_samples_gpt):
        session = TrainingSession(
            gpt_planner,
            flan_samples_gpt[:80],
            global_batch_tokens=8192,
            config=TrainerConfig(
                max_iterations=1,
                noise_std=0.0,
                seed=0,
                max_seq_len=1024,
                execution_backend="local",
                backend_options=dict(FAST_LOCAL),
            ),
            system_name="dynapipe-local",
        )
        report = session.run()
        assert len(report.records) == 1
        # Local-backend times are real wall-clock ms of the tiny run.
        assert report.records[0].measured_ms > 0
        assert report.records[0].measured_peak_bytes > 0

    def test_unknown_backend_fails_at_execution(self, gpt_planner, flan_samples_gpt):
        session = TrainingSession(
            gpt_planner,
            flan_samples_gpt[:40],
            global_batch_tokens=8192,
            config=TrainerConfig(
                max_iterations=1,
                seed=0,
                max_seq_len=1024,
                execution_backend="does-not-exist",
            ),
        )
        with pytest.raises(ValueError, match="unknown execution backend"):
            session.run()
