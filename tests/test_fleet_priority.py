"""Priority time-slicing tests: graceful eviction at iteration boundaries.

The acceptance scenario is a high-priority arrival evicting a running
low-priority gang at an iteration boundary — the in-flight iteration
commits (unlike failure preemption), no device leaks, the evicted job
resumes after the priority job and finishes with records bit-identical to
an uninterrupted standalone run.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.planner import PlannerConfig
from repro.fleet import FleetConfig, FleetScheduler, JobSpec, JobState
from repro.fleet.policies import PreemptivePriorityPolicy, make_policy
from repro.parallel.config import ParallelConfig

from test_fleet_scheduler import assert_records_identical, standalone_records


@pytest.fixture(scope="module")
def planner_config():
    return PlannerConfig(order_search=False, tmax_sample_count=8)


def make_spec(pp2_cost_model, fleet_samples, planner_config, **overrides):
    defaults = dict(
        name="job",
        cost_model=pp2_cost_model,
        samples=fleet_samples,
        global_batch_tokens=4096,
        parallel=ParallelConfig(1, 2, 1),
        num_iterations=3,
        planner_config=planner_config,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestPolicyUnit:
    def test_make_policy_resolves_priority(self):
        assert make_policy("priority").name == "priority"

    def test_order_by_descending_priority_then_fifo(
        self, pp2_cost_model, fleet_samples, planner_config
    ):
        from repro.fleet.job import JobRecord

        records = [
            JobRecord(
                spec=make_spec(
                    pp2_cost_model, fleet_samples, planner_config,
                    name=name, priority=priority,
                ),
                sequence=index,
            )
            for index, (name, priority) in enumerate(
                [("low", 0), ("high", 5), ("mid", 1), ("high-later", 5)]
            )
        ]
        ordered = PreemptivePriorityPolicy().order(records, now_ms=0.0)
        assert [r.spec.name for r in ordered] == ["high", "high-later", "mid", "low"]

    def test_preempts_requires_strictly_higher_priority(
        self, pp2_cost_model, fleet_samples, planner_config
    ):
        from repro.fleet.job import JobRecord

        policy = PreemptivePriorityPolicy()
        low = JobRecord(
            spec=make_spec(pp2_cost_model, fleet_samples, planner_config, name="a", priority=0)
        )
        high = JobRecord(
            spec=make_spec(pp2_cost_model, fleet_samples, planner_config, name="b", priority=2)
        )
        peer = JobRecord(
            spec=make_spec(pp2_cost_model, fleet_samples, planner_config, name="c", priority=2)
        )
        assert policy.preempts(high, low)
        assert not policy.preempts(low, high)
        assert not policy.preempts(high, peer)

    def test_fifo_and_srw_never_preempt(
        self, pp2_cost_model, fleet_samples, planner_config
    ):
        from repro.fleet.job import JobRecord

        low = JobRecord(
            spec=make_spec(pp2_cost_model, fleet_samples, planner_config, name="a", priority=0)
        )
        high = JobRecord(
            spec=make_spec(pp2_cost_model, fleet_samples, planner_config, name="b", priority=9)
        )
        assert not make_policy("fifo").preempts(high, low)
        assert not make_policy("srw").preempts(high, low)


class TestGracefulEviction:
    @pytest.fixture(scope="class")
    def evicted_fleet(self, pp2_cost_model, fleet_samples, planner_config, small_device):
        """A low-priority job holds the whole 2-GPU cluster; a priority-5
        job arrives at t=5 and takes the gang at the next boundary."""
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(topology, FleetConfig(policy="priority"))
        low = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="low", priority=0, num_iterations=3,
            )
        )
        high = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="high", priority=5, num_iterations=2, seed=1, submit_time_ms=5.0,
            )
        )
        report = scheduler.run()
        return scheduler, low, high, report

    def test_eviction_is_at_an_iteration_boundary(self, evicted_fleet):
        _, low, high, report = evicted_fleet
        assert report.finished_jobs == 2
        assert low.evictions == 1
        assert report.total_evictions == 1
        evicted = low.attempts[0]
        assert evicted.outcome == "evicted"
        # Graceful: the iteration in flight when the priority job arrived
        # committed before the gang was handed over...
        assert evicted.iterations_completed >= 1
        assert evicted.ended_ms > 5.0
        # ...and the priority job starts at exactly that boundary.
        assert high.first_admitted_ms == pytest.approx(evicted.ended_ms)

    def test_eviction_spends_no_retry_budget_and_loses_no_work(self, evicted_fleet):
        _, low, high, _ = evicted_fleet
        assert low.retries == 0
        assert low.preemptions == 0
        resumed = low.attempts[1]
        assert resumed.start_iteration == low.attempts[0].iterations_completed
        # The evicted job resumes only after the priority job finished.
        assert resumed.admitted_ms >= high.finished_ms
        assert low.finished_ms > high.finished_ms
        # End to end the evicted job's records are bit-identical to an
        # uninterrupted standalone run: graceful preemption loses nothing.
        assert_records_identical(
            low.checkpoint.records, standalone_records(low.spec, 1)
        )

    def test_no_device_leaked(self, evicted_fleet):
        scheduler, _, _, _ = evicted_fleet
        scheduler.allocator.check_consistent()
        assert scheduler.allocator.busy_count == 0
        assert scheduler.allocator.free_count == 2

    def test_fifo_does_not_evict(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """The same two jobs under FIFO: the high-priority arrival waits for
        the running job to finish — priority is only honoured by the
        preemptive policy."""
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(topology, FleetConfig(policy="fifo"))
        low = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="low", priority=0, num_iterations=3,
            )
        )
        high = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="high", priority=5, num_iterations=2, seed=1, submit_time_ms=5.0,
            )
        )
        report = scheduler.run()
        assert report.finished_jobs == 2
        assert report.total_evictions == 0
        assert len(low.attempts) == 1
        assert high.first_admitted_ms == pytest.approx(low.finished_ms)

    def test_eviction_retires_shared_pool_stream(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """An evicted attempt's planning stream is retired from the shared
        pool (PR 4's retire_job path) and the resumed attempt registers a
        fresh one — no stream or worker outlives the run."""
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(
            topology,
            FleetConfig(
                policy="priority",
                planner_processes=1,
                planner_backend="thread",
                shared_planner_pool=True,
            ),
        )
        low = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="low", priority=0, num_iterations=3,
            )
        )
        scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="high", priority=5, num_iterations=2, seed=1, submit_time_ms=5.0,
            )
        )
        report = scheduler.run()
        assert report.finished_jobs == 2
        assert low.evictions == 1
        pool = scheduler._shared_pool
        assert pool is not None
        assert pool.job_names() == []
        assert pool.live_workers() == 0
        assert_records_identical(
            low.checkpoint.records, standalone_records(low.spec, 1)
        )


class TestProgressiveEviction:
    def test_freed_devices_are_reserved_for_the_draining_waiter(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """A 4-device priority job over two 2-device victims: each victim is
        evicted exactly once and the devices freed by the first eviction
        are *reserved* (not backfilled to the evicted job) until the second
        boundary seats the waiter.  Regression: without reservation the
        evicted victim was immediately re-admitted onto its own freed
        devices, ping-ponging evictions without ever seating the waiter."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology, FleetConfig(policy="priority"))
        a = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="a", num_iterations=4, seed=1,
            )
        )
        b = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="b", num_iterations=4, seed=2,
            )
        )
        big = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="big", parallel=ParallelConfig(2, 2, 1), elastic=False,
                num_iterations=2, seed=3, priority=9, submit_time_ms=5.0,
            )
        )
        report = scheduler.run()
        assert report.finished_jobs == 3
        assert a.evictions == 1 and b.evictions == 1
        assert report.total_evictions == 2
        # The waiter is seated at the *second* victim's boundary, before
        # either victim resumes.
        assert big.first_admitted_ms <= min(
            attempt.admitted_ms for attempt in (a.attempts[1], b.attempts[1])
        )
        assert big.finished_ms < min(a.finished_ms, b.finished_ms)
        scheduler.allocator.check_consistent()
        assert scheduler.allocator.busy_count == 0


class TestRegrowthYieldsToWaiters:
    def test_regrowth_does_not_swallow_a_priority_waiters_seat(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """Regression: a priority job arriving in the same instant as a
        shrunk lower-priority job's boundary (completion ties ahead of the
        arrival, so the waiter is visible to the boundary checks before any
        admission pass) must get the free devices — the shrunk job's
        regrowth yields instead of grabbing them."""
        topology = ClusterTopology.for_num_gpus(8, device_spec=small_device)
        scheduler = FleetScheduler(topology, FleetConfig(policy="priority"))
        shrunk_spec = make_spec(
            pp2_cost_model, fleet_samples, planner_config,
            name="shrunk", parallel=ParallelConfig(2, 2, 1),
            num_iterations=6, submit_time_ms=0.5,
        )
        shrunk = scheduler.submit(shrunk_spec)
        # Five devices die before the job arrives: it is admitted at dp1.
        for device in (3, 4, 5, 6, 7):
            scheduler.inject_device_failure(0.0, device)
        # Four of them are repaired early, so the free pool can seat a
        # 4-device priority job...
        for device in (3, 4, 5, 6):
            scheduler.inject_device_repair(1.0, device)
        # ...which is submitted at *exactly* the shrunk job's first
        # checkpoint boundary (iteration times are bit-identical to the
        # standalone run, so the boundary is computable).
        boundary = 0.5 + standalone_records(shrunk_spec, 1)[0].measured_ms
        urgent = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="urgent", parallel=ParallelConfig(2, 2, 1), elastic=False,
                num_iterations=2, seed=1, priority=5, submit_time_ms=boundary,
            )
        )
        report = scheduler.run()
        assert report.finished_jobs == 2
        assert shrunk.attempts[0].data_parallel == 1
        # The waiter was seated at its arrival instant, not displaced by a
        # lower-priority regrowth.
        assert urgent.first_admitted_ms == pytest.approx(boundary)
        assert urgent.queueing_delay_ms == pytest.approx(0.0)
        # The shrunk job regrew only once the priority job was out of the
        # way (if it regrew before finishing at all).
        for attempt in shrunk.attempts[1:]:
            if attempt.data_parallel > 1:
                assert attempt.admitted_ms >= urgent.finished_ms
        assert report.total_evictions == 0
        scheduler.allocator.check_consistent()


class _OrderOnlyPolicy:
    """A custom policy written against the pre-time-slicing protocol —
    order() and name only, no preempts()."""

    name = "order-only"

    def order(self, pending, now_ms):
        return sorted(pending, key=lambda r: (r.spec.submit_time_ms, r.sequence))


class TestCustomPolicyCompatibility:
    def test_order_only_policy_still_works(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """Regression: a policy without preempts() must run (never
        preempting), not crash in the scheduler's eviction checks."""
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(topology, FleetConfig(policy=_OrderOnlyPolicy()))
        scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="first", num_iterations=2,
            )
        )
        high = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="second", num_iterations=1, seed=1, priority=9,
                submit_time_ms=5.0,
            )
        )
        report = scheduler.run()
        assert report.policy == "order-only"
        assert report.finished_jobs == 2
        assert report.total_evictions == 0  # no preempts() -> never preempts
        assert len(high.attempts) == 1


class TestEvictionFeasibility:
    def test_no_eviction_when_it_could_never_seat_the_waiter(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """A rigid 4-device priority job waits behind an equal-priority
        2-device job it may not evict; evicting only the low-priority gang
        would free 2 of the 4 devices needed, so nothing is evicted."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology, FleetConfig(policy="priority"))
        low = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="low", priority=0, num_iterations=4,
            )
        )
        peer = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="peer", priority=2, num_iterations=4, seed=1,
            )
        )
        big = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="big", priority=2, parallel=ParallelConfig(2, 2, 1),
                elastic=False, num_iterations=1, seed=2, submit_time_ms=5.0,
            )
        )
        report = scheduler.run()
        assert report.finished_jobs == 3
        assert report.total_evictions == 0
        assert len(low.attempts) == 1 and len(peer.attempts) == 1
        # The big job started only once the whole cluster drained.
        assert big.first_admitted_ms >= max(low.finished_ms, peer.finished_ms)

    def test_queue_is_admitted_in_priority_order(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(topology, FleetConfig(policy="priority"))
        jobs = {
            name: scheduler.submit(
                make_spec(
                    pp2_cost_model, fleet_samples, planner_config,
                    name=name, priority=priority, num_iterations=1, seed=seed,
                )
            )
            for seed, (name, priority) in enumerate(
                [("background", 0), ("urgent", 5), ("normal", 1)]
            )
        }
        report = scheduler.run()
        assert report.finished_jobs == 3
        assert (
            jobs["urgent"].first_admitted_ms
            < jobs["normal"].first_admitted_ms
            < jobs["background"].first_admitted_ms
        )
