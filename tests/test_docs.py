"""Documentation health checks: internal links resolve, docs stay current.

CI runs this module in a dedicated docs job (alongside compiling the
examples); it is also part of tier-1 so a broken link fails fast locally.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The markdown documents whose internal links must resolve.
DOCUMENTS = ("README.md", "docs/ARCHITECTURE.md")

_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def _slug(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _internal_links(text: str) -> list[str]:
    return [
        target
        for target in _LINK.findall(text)
        if not target.startswith(("http://", "https://", "mailto:"))
    ]


@pytest.mark.parametrize("document", DOCUMENTS)
def test_document_exists(document):
    assert (REPO_ROOT / document).is_file(), f"{document} is missing"


@pytest.mark.parametrize("document", DOCUMENTS)
def test_internal_links_resolve(document):
    path = REPO_ROOT / document
    text = path.read_text()
    anchors = {_slug(h) for h in _HEADING.findall(text)}
    for target in _internal_links(text):
        target, _, fragment = target.partition("#")
        if not target:  # same-document anchor
            assert fragment in anchors, f"{document}: broken anchor #{fragment}"
            continue
        resolved = (path.parent / target).resolve()
        assert resolved.exists(), f"{document}: broken link {target}"
        if fragment and resolved.suffix == ".md":
            other = {_slug(h) for h in _HEADING.findall(resolved.read_text())}
            assert fragment in other, f"{document}: broken anchor {target}#{fragment}"


def test_readme_links_architecture_doc():
    """The issue's contract: the architecture guide is reachable from the
    README (not an orphaned file)."""
    text = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in _internal_links(text) or "docs/ARCHITECTURE.md" in text


def test_architecture_doc_names_only_real_modules():
    """Every `src/...` path the architecture doc references must exist."""
    text = (REPO_ROOT / "docs/ARCHITECTURE.md").read_text()
    for reference in re.findall(r"`(src/[\w/\.]+)`", text):
        assert (REPO_ROOT / reference).exists(), f"ARCHITECTURE.md: {reference} missing"


def test_fleet_modules_have_contract_docstrings():
    """Every fleet module documents its contract in the module docstring
    (the contracts used to live only in ROADMAP.md)."""
    import importlib
    import pkgutil

    import repro.fleet as fleet

    modules = ["repro.fleet"] + [
        f"repro.fleet.{m.name}" for m in pkgutil.iter_modules(fleet.__path__)
    ]
    for name in modules:
        module = importlib.import_module(name)
        doc = module.__doc__ or ""
        assert len(doc.strip()) > 200, f"{name} needs a contract-level module docstring"
