"""Tests for DynaPipe's dynamic micro-batch construction front end."""

from __future__ import annotations

import pytest

from repro.batching.metrics import padding_stats
from repro.batching.packing import PackingBatching
from repro.batching.token_based import TokenBasedBatching
from repro.core.microbatch import DynamicMicroBatcher
from repro.core.ordering import OrderingMethod
from repro.data.tasks import Sample
from repro.model.memory import RecomputeMode


@pytest.fixture(scope="module")
def gpt_batcher(gpt_cost_model):
    return DynamicMicroBatcher(gpt_cost_model, tmax_sample_count=12)


class TestSplit:
    def test_all_samples_preserved(self, gpt_batcher, flan_samples_gpt):
        samples = flan_samples_gpt[:80]
        result = gpt_batcher.split(samples)
        produced = sorted(s for mb in result.micro_batches for s in mb.samples())
        assert produced == sorted(samples)

    def test_empty_input(self, gpt_batcher):
        assert gpt_batcher.split([]).micro_batches == []

    def test_solution_metadata_recorded(self, gpt_batcher, flan_samples_gpt):
        gpt_batcher.split(flan_samples_gpt[:40])
        assert gpt_batcher.last_solution is not None
        assert gpt_batcher.last_solution.num_microbatches >= 1
        assert gpt_batcher.last_solution.cost_evaluations > 0

    def test_microbatches_ordered_by_length(self, gpt_cost_model, flan_samples_gpt):
        """With sorted ordering, consecutive micro-batches have non-decreasing
        padded sequence lengths."""
        batcher = DynamicMicroBatcher(gpt_cost_model, ordering=OrderingMethod.SORT)
        result = batcher.split(flan_samples_gpt[:60])
        lengths = [mb.enc_seq_len for mb in result.micro_batches]
        assert lengths == sorted(lengths)

    def test_decoder_only_flag_follows_model(self, gpt_batcher, t5_cost_model):
        assert gpt_batcher.decoder_only is True
        t5_batcher = DynamicMicroBatcher(t5_cost_model)
        assert t5_batcher.decoder_only is False

    def test_t5_split_works(self, t5_cost_model, flan_samples):
        batcher = DynamicMicroBatcher(t5_cost_model, tmax_sample_count=10)
        result = batcher.split(flan_samples[:60])
        assert result.micro_batches
        produced = sorted(s for mb in result.micro_batches for s in mb.samples())
        assert produced == sorted(flan_samples[:60])


class TestQuality:
    def test_padding_and_modelled_time_vs_packing(self, gpt_cost_model, flan_samples_gpt):
        """DynaPipe's padding efficiency is in the same ballpark as packing
        while its modelled time per real token is lower, because packing pays
        quadratic attention over the full packed length (paper Fig. 4)."""
        samples = flan_samples_gpt[:120]
        dp = DynamicMicroBatcher(gpt_cost_model, tmax_sample_count=12).split(samples)
        packing = PackingBatching(max_seq_len=1024, micro_batch_size=4, decoder_only=True).split(
            samples
        )
        dp_stats = padding_stats(dp.micro_batches)
        packing_stats = padding_stats(packing.micro_batches)
        assert dp_stats.overall_efficiency >= packing_stats.overall_efficiency - 0.15
        assert dp_stats.overall_efficiency > 0.75

        dp_time = gpt_cost_model.iteration_time_ms([mb.shape() for mb in dp.micro_batches])
        packing_time = gpt_cost_model.iteration_time_ms(
            [mb.shape() for mb in packing.micro_batches]
        )
        dp_time_per_token = dp_time / dp_stats.actual_tokens
        packing_time_per_token = packing_time / packing_stats.actual_tokens
        assert dp_time_per_token < packing_time_per_token

    def test_modelled_iteration_time_beats_token_based(self, gpt_cost_model, flan_samples_gpt):
        """The DP objective value (Eq. 1) should not be worse than what the
        token-based heuristic achieves on the same cost model (Fig. 16a)."""
        samples = flan_samples_gpt[:100]
        dp = DynamicMicroBatcher(gpt_cost_model, tmax_sample_count=16)
        dp_result = dp.split(samples)
        dp_time = gpt_cost_model.iteration_time_ms([mb.shape() for mb in dp_result.micro_batches])

        best_tb_time = float("inf")
        for budget in (2048, 4096, 8192, 16384, 32768):
            tb = TokenBasedBatching(budget, decoder_only=True).split(samples)
            tb_time = gpt_cost_model.iteration_time_ms([mb.shape() for mb in tb.micro_batches])
            best_tb_time = min(best_tb_time, tb_time)
        assert dp_time <= best_tb_time * 1.05

    def test_memory_limit_restricts_microbatch_size(self, gpt_cost_model, flan_samples_gpt):
        samples = flan_samples_gpt[:60]
        tight = DynamicMicroBatcher(
            gpt_cost_model,
            per_microbatch_memory_bytes=gpt_cost_model.min_activation_budget_bytes() / 16,
        )
        loose = DynamicMicroBatcher(
            gpt_cost_model,
            per_microbatch_memory_bytes=gpt_cost_model.min_activation_budget_bytes(),
        )
        tight_result = tight.split(samples)
        loose_result = loose.split(samples)
        assert len(tight_result.micro_batches) >= len(loose_result.micro_batches)
        for mb in tight_result.micro_batches:
            activation = gpt_cost_model.microbatch_activation_bytes(mb.shape())
            assert activation <= tight.per_microbatch_memory_bytes * (1 + 1e-9)

    def test_recompute_mode_changes_feasibility(self, gpt_cost_model, flan_samples_gpt):
        """A memory limit too tight for NONE-mode partitioning can still be
        satisfiable under FULL recomputation, which stores far fewer
        activations — the mechanism behind dynamic recomputation (§7)."""
        from repro.core.dp_solver import PartitionError
        from repro.model.transformer import MicroBatchShape

        samples = flan_samples_gpt[:60]
        largest = max(samples, key=lambda s: s.total_tokens)
        single_shape = MicroBatchShape(batch_size=1, enc_seq_len=largest.total_tokens)
        none_need = gpt_cost_model.microbatch_activation_bytes(single_shape, RecomputeMode.NONE)
        full_need = gpt_cost_model.microbatch_activation_bytes(single_shape, RecomputeMode.FULL)
        assert full_need < none_need
        limit = (full_need + none_need) / 2.0

        with pytest.raises(PartitionError):
            DynamicMicroBatcher(
                gpt_cost_model, per_microbatch_memory_bytes=limit, recompute=RecomputeMode.NONE
            ).split(samples)
        full_mode = DynamicMicroBatcher(
            gpt_cost_model, per_microbatch_memory_bytes=limit, recompute=RecomputeMode.FULL
        ).split(samples)
        assert full_mode.micro_batches

    def test_sum_weight_for_data_parallelism(self, gpt_cost_model, flan_samples_gpt):
        """With many replicas (small Σ weight) the partition never has fewer
        micro-batches than the single-replica partition."""
        samples = flan_samples_gpt[:80]
        single = DynamicMicroBatcher(gpt_cost_model, sum_weight=1.0).split(samples)
        many = DynamicMicroBatcher(gpt_cost_model, sum_weight=1.0 / 8).split(samples)
        assert len(many.micro_batches) >= len(single.micro_batches)


class TestSlidingWindowMaxima:
    def test_matches_brute_force_random(self):
        import numpy as np

        from repro.core.microbatch import sliding_window_maxima

        rng = np.random.default_rng(0)
        for trial in range(5):
            values = rng.integers(1, 1000, size=int(rng.integers(1, 50)))
            window = int(rng.integers(1, 60))
            table = sliding_window_maxima(values, window)
            n = len(values)
            for start in range(n):
                for size in range(1, min(window, n - start) + 1):
                    assert table[start, size - 1] == values[start : start + size].max()

    def test_monotone_input_uses_last_element(self):
        import numpy as np

        from repro.core.microbatch import sliding_window_maxima

        values = np.array([1, 3, 3, 7, 20])
        table = sliding_window_maxima(values, 5)
        for start in range(5):
            for size in range(1, 5 - start + 1):
                assert table[start, size - 1] == values[start + size - 1]


class TestVectorizedEquivalence:
    """The window-table fast path must reproduce the scalar DP exactly."""

    def _compare(self, cost_model, samples, **kwargs):
        fast = DynamicMicroBatcher(cost_model, vectorized=True, **kwargs)
        slow = DynamicMicroBatcher(cost_model, vectorized=False, **kwargs)
        fast_result = fast.split(samples)
        slow_result = slow.split(samples)
        assert fast.last_solution.boundaries == slow.last_solution.boundaries
        assert fast.last_solution.times == slow.last_solution.times
        assert fast.last_solution.objective == slow.last_solution.objective
        assert fast.last_solution.tmax_used == slow.last_solution.tmax_used
        fast_shapes = [mb.shape() for mb in fast_result.micro_batches]
        slow_shapes = [mb.shape() for mb in slow_result.micro_batches]
        assert fast_shapes == slow_shapes

    def test_gpt_seeded(self, gpt_cost_model, flan_samples_gpt):
        self._compare(gpt_cost_model, flan_samples_gpt[:70], tmax_sample_count=12)

    def test_t5_seeded(self, t5_cost_model, flan_samples):
        self._compare(t5_cost_model, flan_samples[:70], tmax_sample_count=12)

    def test_gpt_full_recompute(self, gpt_cost_model, flan_samples_gpt):
        self._compare(
            gpt_cost_model,
            flan_samples_gpt[:40],
            tmax_sample_count=8,
            recompute=RecomputeMode.FULL,
        )

    def test_tight_memory_limit(self, gpt_cost_model, flan_samples_gpt):
        self._compare(
            gpt_cost_model,
            flan_samples_gpt[:50],
            per_microbatch_memory_bytes=gpt_cost_model.min_activation_budget_bytes() / 12,
        )

    def test_split_recompute_override_reuses_geometry(self, gpt_cost_model, flan_samples_gpt):
        """Mode retries on the same mini-batch reuse the cached window
        geometry and still match a fresh batcher under that mode."""
        samples = flan_samples_gpt[:40]
        batcher = DynamicMicroBatcher(gpt_cost_model, tmax_sample_count=8)
        batcher.split(samples)  # NONE mode populates the geometry cache
        entry = batcher._geometry_entry
        retried = batcher.split(samples, recompute=RecomputeMode.FULL)
        assert batcher._geometry_entry is entry
        fresh = DynamicMicroBatcher(
            gpt_cost_model, tmax_sample_count=8, recompute=RecomputeMode.FULL
        ).split(samples)
        assert [mb.shape() for mb in retried.micro_batches] == [
            mb.shape() for mb in fresh.micro_batches
        ]
