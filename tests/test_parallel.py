"""Tests for 3D parallel configuration, the data-parallel comm model and the
grid search."""

from __future__ import annotations

import pytest

from repro.model.config import get_model_config
from repro.parallel.config import ParallelConfig, enumerate_parallel_configs
from repro.parallel.dataparallel import gradient_allreduce_ms
from repro.parallel.grid_search import grid_search


class TestParallelConfig:
    def test_num_gpus(self):
        assert ParallelConfig(2, 2, 2).num_gpus == 8

    def test_describe(self):
        assert ParallelConfig(2, 4, 1).describe() == "dp2-pp4-tp1"

    def test_invalid(self):
        with pytest.raises(ValueError):
            ParallelConfig(0, 1, 1)

    def test_fits_model(self, tiny_gpt_config):
        assert ParallelConfig(1, 8, 1).fits_model(tiny_gpt_config)
        assert not ParallelConfig(1, 16, 1).fits_model(tiny_gpt_config)

    def test_ordering_and_hashing(self):
        configs = {ParallelConfig(1, 2, 4), ParallelConfig(1, 2, 4), ParallelConfig(2, 2, 2)}
        assert len(configs) == 2


class TestEnumeration:
    def test_all_products_match(self):
        for config in enumerate_parallel_configs(8):
            assert config.num_gpus == 8

    def test_counts_for_eight_gpus(self):
        configs = enumerate_parallel_configs(8, gpus_per_node=8)
        # tp in {1,2,4,8}, pp divides the remainder -> 4+3+2+1 = 10 configurations.
        assert len(configs) == 10

    def test_tensor_parallel_limited_to_node(self):
        configs = enumerate_parallel_configs(32, gpus_per_node=8)
        assert all(config.tensor_parallel <= 8 for config in configs)

    def test_model_limits_pipeline_depth(self, tiny_gpt_config):
        configs = enumerate_parallel_configs(32, model=tiny_gpt_config)
        assert all(config.pipeline_parallel <= tiny_gpt_config.num_layers for config in configs)

    def test_max_tensor_parallel_cap(self):
        configs = enumerate_parallel_configs(8, max_tensor_parallel=2)
        assert all(config.tensor_parallel <= 2 for config in configs)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            enumerate_parallel_configs(12)

    def test_paper_cluster_sizes_enumerable(self):
        for num_gpus in (4, 8, 16, 32):
            assert enumerate_parallel_configs(num_gpus)


class TestGradientAllreduce:
    def test_zero_without_data_parallelism(self, tiny_gpt_config):
        assert gradient_allreduce_ms(tiny_gpt_config, 1, 4) == 0.0

    def test_grows_with_model_size(self, tiny_gpt_config):
        big = get_model_config("gpt", 8)
        assert gradient_allreduce_ms(big, 2, 4) > gradient_allreduce_ms(tiny_gpt_config, 2, 4)

    def test_tensor_parallel_shrinks_volume(self, tiny_gpt_config):
        assert gradient_allreduce_ms(tiny_gpt_config, 2, 4, tensor_parallel=4) < gradient_allreduce_ms(
            tiny_gpt_config, 2, 4, tensor_parallel=1
        )

    def test_deeper_pipeline_shrinks_per_stage_volume(self, tiny_gpt_config):
        assert gradient_allreduce_ms(tiny_gpt_config, 2, 8) < gradient_allreduce_ms(
            tiny_gpt_config, 2, 2
        )

    def test_intra_node_faster(self, tiny_gpt_config):
        assert gradient_allreduce_ms(tiny_gpt_config, 2, 4, same_node=True) < gradient_allreduce_ms(
            tiny_gpt_config, 2, 4, same_node=False
        )


class TestGridSearch:
    @pytest.fixture(scope="class")
    def samples(self, flan_samples_gpt):
        return flan_samples_gpt[:400]

    def test_dynapipe_search_finds_config(self, tiny_gpt_config, small_device, samples):
        result = grid_search(
            tiny_gpt_config,
            num_gpus=4,
            samples=samples,
            global_batch_tokens=8192,
            max_seq_len=1024,
            system="dynapipe",
            device_spec=small_device,
            evaluation_iterations=1,
        )
        assert result.best_config is not None
        assert result.best_config.num_gpus == 4
        assert result.best_throughput > 0
        assert result.evaluations

    def test_baseline_search_returns_hyperparameters(self, tiny_gpt_config, small_device, samples):
        result = grid_search(
            tiny_gpt_config,
            num_gpus=4,
            samples=samples,
            global_batch_tokens=8192,
            max_seq_len=1024,
            system="baseline",
            device_spec=small_device,
            evaluation_iterations=1,
            micro_batch_sizes=(1, 4),
        )
        assert result.best_config is not None
        assert "micro_batch_size" in result.best_options
        assert "recompute" in result.best_options

    def test_explicit_config_list_respected(self, tiny_gpt_config, small_device, samples):
        from repro.parallel.config import ParallelConfig

        forced = [ParallelConfig(1, 4, 1)]
        result = grid_search(
            tiny_gpt_config,
            num_gpus=4,
            samples=samples,
            global_batch_tokens=8192,
            max_seq_len=1024,
            system="dynapipe",
            device_spec=small_device,
            evaluation_iterations=1,
            configs=forced,
        )
        assert result.best_config == forced[0]

    def test_unknown_system_rejected(self, tiny_gpt_config, small_device, samples):
        with pytest.raises(ValueError):
            grid_search(
                tiny_gpt_config,
                num_gpus=4,
                samples=samples,
                global_batch_tokens=8192,
                max_seq_len=1024,
                system="nonsense",
                device_spec=small_device,
            )
