"""Tests for gang allocation and admission policies of the fleet scheduler."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.planner import PlannerConfig
from repro.fleet.gang import GangAllocator
from repro.fleet.job import JobCheckpoint, JobRecord, JobSpec
from repro.fleet.policies import FifoPolicy, ShortestRemainingWorkPolicy, make_policy
from repro.parallel.config import ParallelConfig
from repro.training.throughput import IterationRecord


def make_allocator(num_gpus: int = 8) -> GangAllocator:
    return GangAllocator(ClusterTopology.for_num_gpus(num_gpus))


class TestGangAllocator:
    def test_allocate_prefers_contiguous_run(self):
        allocator = make_allocator(8)
        first = allocator.allocate("a", 1, 2, 1)
        assert first.devices == (0, 1)
        second = allocator.allocate("b", 2, 2, 1)
        assert second.devices == (2, 3, 4, 5)

    def test_allocation_is_all_or_nothing(self):
        allocator = make_allocator(4)
        assert allocator.allocate("a", 1, 2, 1).size == 2
        assert allocator.allocate("b", 2, 2, 1) is None  # only 2 devices left
        assert allocator.free_count == 2
        allocator.check_consistent()

    def test_release_returns_devices(self):
        allocator = make_allocator(4)
        gang = allocator.allocate("a", 2, 2, 1)
        assert allocator.free_count == 0
        released = allocator.release(gang)
        assert sorted(released) == [0, 1, 2, 3]
        assert allocator.free_count == 4
        allocator.check_consistent()

    def test_prefers_node_aligned_contiguous_window(self):
        """(3, 4) is the lowest contiguous pair but straddles the two
        4-GPU nodes; the allocator takes the intra-node (4, 5) instead."""
        allocator = GangAllocator(ClusterTopology(num_nodes=2, gpus_per_node=4))
        allocator.allocate("a", 1, 3, 1)  # occupies (0, 1, 2)
        gang = allocator.allocate("b", 1, 2, 1)
        assert gang.devices == (4, 5)
        allocator.check_consistent()

    def test_node_straddling_window_used_when_nothing_aligned_fits(self):
        allocator = GangAllocator(ClusterTopology(num_nodes=2, gpus_per_node=2))
        allocator.allocate("a", 1, 1, 1)  # (0,)
        # Free {1, 2, 3}: size-2 windows are (1, 2) straddling and (2, 3)
        # aligned; a size-3 gang has only the straddling option.
        gang = allocator.allocate("b", 1, 3, 1)
        assert gang.devices == (1, 2, 3)
        allocator.check_consistent()

    def test_fragmented_fallback_uses_lowest_free_indices(self):
        allocator = make_allocator(6)
        a = allocator.allocate("a", 1, 2, 1)  # (0, 1)
        b = allocator.allocate("b", 1, 2, 1)  # (2, 3)
        allocator.allocate("c", 1, 2, 1)  # (4, 5)
        allocator.release(a)
        allocator.release(b)
        assert allocator.fail_device(1) is None  # free device dies
        # Free devices are now {0, 2, 3}: no contiguous run of 3.
        gang = allocator.allocate("d", 1, 3, 1)
        assert gang.devices == (0, 2, 3)
        allocator.check_consistent()

    def test_fail_busy_device_returns_gang_and_keeps_it_failed(self):
        allocator = make_allocator(4)
        gang = allocator.allocate("a", 2, 2, 1)
        interrupted = allocator.fail_device(1)
        assert interrupted is gang
        assert allocator.failed_devices == {1}
        # Releasing the gang must not resurrect the failed device.
        released = allocator.release(gang)
        assert sorted(released) == [0, 2, 3]
        assert allocator.free_count == 3
        assert allocator.alive_count == 3
        allocator.check_consistent()

    def test_fail_idle_and_double_fail(self):
        allocator = make_allocator(4)
        assert allocator.fail_device(3) is None
        assert allocator.fail_device(3) is None  # already failed: no-op
        assert allocator.failed_devices == {3}
        assert allocator.alive_count == 3
        allocator.check_consistent()

    def test_invalid_device_rejected(self):
        allocator = make_allocator(4)
        with pytest.raises(ValueError):
            allocator.fail_device(4)
        with pytest.raises(ValueError):
            allocator.fail_device(-1)

    def test_owner_of(self):
        allocator = make_allocator(4)
        gang = allocator.allocate("a", 1, 2, 1)
        assert allocator.owner_of(0) is gang
        assert allocator.owner_of(3) is None


class TestRepairAndArrival:
    def test_repair_returns_failed_device_to_the_pool(self):
        allocator = make_allocator(4)
        allocator.fail_device(2)
        assert allocator.alive_count == 3
        assert allocator.repair_device(2) is True
        assert allocator.failed_devices == frozenset()
        assert allocator.free_count == 4
        assert allocator.alive_count == 4
        allocator.check_consistent()

    def test_repair_of_alive_device_is_a_noop(self):
        allocator = make_allocator(4)
        assert allocator.repair_device(1) is False  # never failed
        allocator.fail_device(1)
        assert allocator.repair_device(1) is True
        assert allocator.repair_device(1) is False  # double repair
        with pytest.raises(ValueError):
            allocator.repair_device(9)
        allocator.check_consistent()

    def test_repaired_device_is_allocatable_again(self):
        allocator = make_allocator(2)
        allocator.fail_device(0)
        assert allocator.allocate("a", 1, 2, 1) is None  # only 1 alive
        allocator.repair_device(0)
        gang = allocator.allocate("a", 1, 2, 1)
        assert gang is not None and gang.devices == (0, 1)
        allocator.check_consistent()

    def test_absent_devices_are_outside_the_cluster(self):
        allocator = make_allocator(4)
        allocator.mark_absent(2)
        allocator.mark_absent(3)
        assert allocator.alive_count == 2
        assert allocator.absent_devices == frozenset({2, 3})
        assert allocator.allocate("a", 2, 2, 1) is None  # only 2 free
        # An absent device can neither fail nor be marked absent twice.
        assert allocator.fail_device(2) is None
        assert allocator.absent_devices == frozenset({2, 3})
        with pytest.raises(ValueError, match="not free"):
            allocator.mark_absent(2)
        allocator.check_consistent()

    def test_arrival_moves_absent_to_free(self):
        allocator = make_allocator(4)
        allocator.mark_absent(3)
        allocator.arrive_device(3)
        assert allocator.free_count == 4
        with pytest.raises(ValueError, match="not absent"):
            allocator.arrive_device(3)
        allocator.check_consistent()

    def test_allocated_device_cannot_be_marked_absent(self):
        allocator = make_allocator(4)
        allocator.allocate("a", 1, 2, 1)
        with pytest.raises(ValueError, match="not free"):
            allocator.mark_absent(0)

    def test_partition_invariant_over_full_lifecycle(self):
        """free/allocated/failed/absent stay a partition through a mixed
        sequence of allocation, failure, release, repair and arrival."""
        allocator = make_allocator(8)
        allocator.mark_absent(6)
        allocator.mark_absent(7)
        gang = allocator.allocate("a", 2, 2, 1)
        allocator.check_consistent()
        assert allocator.fail_device(1) is gang
        allocator.check_consistent()
        allocator.release(gang)
        allocator.check_consistent()
        allocator.repair_device(1)
        allocator.arrive_device(6)
        allocator.check_consistent()
        assert allocator.alive_count == 7
        assert allocator.free_count == 7
        assert allocator.absent_devices == frozenset({7})


def _record(spec: JobSpec, sequence: int, measured: list[float] | None = None) -> JobRecord:
    record = JobRecord(spec=spec, sequence=sequence, checkpoint=JobCheckpoint())
    for index, measured_ms in enumerate(measured or []):
        record.checkpoint.commit(
            IterationRecord(
                iteration=index,
                actual_tokens=100,
                padded_tokens=120,
                predicted_ms=measured_ms,
                measured_ms=measured_ms,
                predicted_peak_bytes=1.0,
                measured_peak_bytes=1.0,
                planning_time_s=0.0,
                num_microbatches=1,
                recompute="none",
            ),
            encoder_eff=0.9,
            decoder_eff=None,
        )
    return record


class TestPolicies:
    @pytest.fixture()
    def specs(self, pp2_cost_model, fleet_samples):
        def spec(name, submit_ms=0.0, iterations=4, est_ms=1000.0):
            return JobSpec(
                name=name,
                cost_model=pp2_cost_model,
                samples=fleet_samples,
                global_batch_tokens=4096,
                parallel=ParallelConfig(1, 2, 1),
                num_iterations=iterations,
                planner_config=PlannerConfig(order_search=False, tmax_sample_count=8),
                submit_time_ms=submit_ms,
                est_iteration_ms=est_ms,
            )

        return spec

    def test_fifo_orders_by_submission(self, specs):
        records = [
            _record(specs("late", submit_ms=10.0), 0),
            _record(specs("early", submit_ms=1.0), 1),
            _record(specs("tie", submit_ms=1.0), 2),
        ]
        ordered = FifoPolicy().order(records, now_ms=20.0)
        assert [r.spec.name for r in ordered] == ["early", "tie", "late"]

    def test_srw_prefers_less_remaining_work(self, specs):
        long_job = _record(specs("long", iterations=8, est_ms=100.0), 0)
        short_job = _record(specs("short", iterations=2, est_ms=100.0), 1)
        ordered = ShortestRemainingWorkPolicy().order([long_job, short_job], now_ms=0.0)
        assert [r.spec.name for r in ordered] == ["short", "long"]

    def test_srw_uses_measured_iteration_times(self, specs):
        # 6 remaining × 50 ms measured < 2 remaining × 1000 ms prior.
        nearly_done = _record(specs("prior", iterations=2, est_ms=1000.0), 0)
        fast = _record(specs("measured", iterations=8, est_ms=1000.0), 1, measured=[50.0, 50.0])
        assert fast.remaining_iterations == 6
        ordered = ShortestRemainingWorkPolicy().order([nearly_done, fast], now_ms=0.0)
        assert [r.spec.name for r in ordered] == ["measured", "prior"]

    def test_make_policy(self):
        assert make_policy("fifo").name == "fifo"
        assert make_policy("srw").name == "srw"
        custom = FifoPolicy()
        assert make_policy(custom) is custom
        with pytest.raises(ValueError):
            make_policy("lifo")
