"""Scheduler checkpoint/restore tests: crash at a boundary, resume bit-identically.

The acceptance scenario for the crash-resilience tentpole: a fleet run is
killed at an arbitrary event boundary (the ``on_event`` hook checkpoints
and raises :class:`SchedulerKilled`), the snapshot is JSON round-tripped,
and a scheduler restored from it finishes the run with per-job records and
a :class:`FleetReport` bit-identical to the uninterrupted run — across
fifo / srw / priority, through at least one mid-run preemption, one
elastic regrowth and (under priority) one eviction.  Wall-clock planning
times and, in pooled mode, the respawned worker count are the only
excluded fields.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.planner import PlannerConfig
from repro.fleet import (
    FleetConfig,
    FleetReport,
    FleetScheduler,
    JobSpec,
    SchedulerKilled,
)
from repro.fleet.checkpoint import SNAPSHOT_VERSION
from repro.parallel.config import ParallelConfig

from test_fleet_scheduler import assert_records_identical


@pytest.fixture(scope="module")
def planner_config():
    return PlannerConfig(order_search=False, tmax_sample_count=8)


def crash_specs(pp2_cost_model, fleet_samples, planner_config):
    """The kill/restore scenario's jobs (fresh objects per scheduler).

    On a 4-GPU cluster with a device failing at t=2 (repaired 30 ms
    later), the elastic dp2-pp2 job is preempted, shrinks to dp1, and
    regrows at the first boundary after the repair; the high-priority job
    arriving at t=70 additionally evicts it under the priority policy.
    """
    return [
        JobSpec(
            name="job0",
            cost_model=pp2_cost_model,
            samples=fleet_samples,
            global_batch_tokens=8192,
            parallel=ParallelConfig(2, 2, 1),
            num_iterations=6,
            planner_config=planner_config,
            seed=0,
            elastic=True,
        ),
        JobSpec(
            name="hi",
            cost_model=pp2_cost_model,
            samples=fleet_samples,
            global_batch_tokens=4096,
            parallel=ParallelConfig(1, 2, 1),
            num_iterations=2,
            planner_config=planner_config,
            seed=3,
            priority=5,
            submit_time_ms=70.0,
        ),
    ]


def make_config(policy: str, **overrides) -> FleetConfig:
    return FleetConfig(policy=policy, repair_delay_ms=30.0, **overrides)


def build_scheduler(
    specs, small_device, config: FleetConfig
) -> FleetScheduler:
    topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
    scheduler = FleetScheduler(topology, config)
    for spec in specs:
        scheduler.submit(spec)
    scheduler.inject_device_failure(2.0, 1)
    return scheduler


def run_killed_and_restored(
    pp2_cost_model,
    fleet_samples,
    planner_config,
    small_device,
    policy: str,
    kill_at: int,
    **config_overrides,
) -> tuple[FleetScheduler, FleetReport]:
    """Kill the run at event boundary ``kill_at``, restore from the
    JSON-round-tripped snapshot, and finish the run."""
    captured: dict[str, dict] = {}

    def hook(scheduler: FleetScheduler) -> None:
        if scheduler._events_processed == kill_at:
            captured["snapshot"] = scheduler.checkpoint()
            raise SchedulerKilled(f"killed at boundary {kill_at}")

    specs = crash_specs(pp2_cost_model, fleet_samples, planner_config)
    doomed = build_scheduler(
        specs, small_device, make_config(policy, on_event=hook, **config_overrides)
    )
    with pytest.raises(SchedulerKilled):
        doomed.run()

    # The snapshot must survive serialisation: a real crash-resilient
    # deployment persists it to disk between the two processes.
    snapshot = json.loads(json.dumps(captured["snapshot"]))
    fresh_specs = crash_specs(pp2_cost_model, fleet_samples, planner_config)
    restored = FleetScheduler.restore(
        snapshot,
        ClusterTopology.for_num_gpus(4, device_spec=small_device),
        {spec.name: spec for spec in fresh_specs},
        config=make_config(policy, **config_overrides),
    )
    return restored, restored.run()


def assert_reports_identical(
    actual: FleetReport, expected: FleetReport, ignore_worker_count: bool = False
) -> None:
    """Field-by-field bit-identity of two fleet reports.

    ``JobSummary`` carries no wall-clock field, so dataclass equality is
    exact; ``planner_workers_spawned`` is excluded in pooled mode where
    the restored run necessarily respawns the planning cluster.
    """
    assert actual.policy == expected.policy
    assert actual.jobs == expected.jobs
    assert actual.makespan_ms == expected.makespan_ms
    assert actual.busy_device_ms == expected.busy_device_ms
    assert actual.num_devices == expected.num_devices
    assert actual.failed_devices == expected.failed_devices
    assert actual.absent_devices == expected.absent_devices
    assert actual.dead_device_ms == expected.dead_device_ms
    assert actual.capacity_timeline == expected.capacity_timeline
    assert actual.repair_durations_ms == expected.repair_durations_ms
    assert actual.fault_log == expected.fault_log
    assert actual.trace.events == expected.trace.events
    if not ignore_worker_count:
        assert actual.planner_workers_spawned == expected.planner_workers_spawned


@pytest.fixture(scope="module")
def reference_runs(pp2_cost_model, fleet_samples, planner_config, small_device):
    """Uninterrupted reference runs: policy -> (scheduler, report)."""
    runs = {}
    for policy in ("fifo", "srw", "priority"):
        specs = crash_specs(pp2_cost_model, fleet_samples, planner_config)
        scheduler = build_scheduler(specs, small_device, make_config(policy))
        runs[policy] = (scheduler, scheduler.run())
    return runs


class TestScenarioRichness:
    """The scenario actually exercises what the acceptance criteria name."""

    def test_preemption_and_regrowth_under_every_policy(self, reference_runs):
        for policy, (_, report) in reference_runs.items():
            assert report.total_preemptions >= 1, policy
            assert report.total_regrows >= 1, policy
            assert report.finished_jobs == 2, policy

    def test_priority_run_has_an_eviction(self, reference_runs):
        assert reference_runs["priority"][1].total_evictions >= 1

    def test_runs_have_enough_boundaries_to_kill_at(self, reference_runs):
        for policy, (scheduler, _) in reference_runs.items():
            assert scheduler._events_processed >= 10, policy


class TestKillRestoreBitIdentity:
    """Killed-and-restored runs reproduce the uninterrupted run exactly."""

    @pytest.mark.parametrize("kill_at", list(range(1, 11)))
    def test_fifo_every_boundary(
        self,
        reference_runs,
        pp2_cost_model,
        fleet_samples,
        planner_config,
        small_device,
        kill_at,
    ):
        reference_scheduler, reference_report = reference_runs["fifo"]
        restored, report = run_killed_and_restored(
            pp2_cost_model, fleet_samples, planner_config, small_device, "fifo", kill_at
        )
        assert_reports_identical(report, reference_report)
        for name, record in reference_scheduler.jobs.items():
            assert_records_identical(
                restored.jobs[name].checkpoint.records, record.checkpoint.records
            )

    @pytest.mark.parametrize("policy", ["srw", "priority"])
    @pytest.mark.parametrize("kill_at", [2, 5, 8])
    def test_other_policies_selected_boundaries(
        self,
        reference_runs,
        pp2_cost_model,
        fleet_samples,
        planner_config,
        small_device,
        policy,
        kill_at,
    ):
        reference_scheduler, reference_report = reference_runs[policy]
        restored, report = run_killed_and_restored(
            pp2_cost_model, fleet_samples, planner_config, small_device, policy, kill_at
        )
        assert_reports_identical(report, reference_report)
        for name, record in reference_scheduler.jobs.items():
            assert_records_identical(
                restored.jobs[name].checkpoint.records, record.checkpoint.records
            )

    def test_restore_before_any_event_is_a_full_replay(
        self, reference_runs, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """Boundary 0 snapshots the pristine post-seeding state."""
        _, reference_report = reference_runs["fifo"]
        _, report = run_killed_and_restored(
            pp2_cost_model, fleet_samples, planner_config, small_device, "fifo", 0
        )
        assert_reports_identical(report, reference_report)


class TestPooledRestore:
    """Restore works with the shared planning cluster (thread backend)."""

    def test_pooled_kill_restore(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        pooled = dict(
            shared_planner_pool=True, planner_processes=2, planner_backend="thread"
        )
        specs = crash_specs(pp2_cost_model, fleet_samples, planner_config)
        reference = build_scheduler(specs, small_device, make_config("fifo", **pooled))
        reference_report = reference.run()

        _, report = run_killed_and_restored(
            pp2_cost_model,
            fleet_samples,
            planner_config,
            small_device,
            "fifo",
            5,
            **pooled,
        )
        # The restored process spawns its own planning cluster, so the
        # spawn count legitimately differs; everything else is exact.
        assert_reports_identical(report, reference_report, ignore_worker_count=True)
        assert report.planner_workers_spawned > 0


class TestCheckpointSink:
    """The periodic checkpoint_sink emits restorable snapshots."""

    def test_sink_snapshots_restore_bit_identically(
        self, reference_runs, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        snapshots: list[dict] = []
        specs = crash_specs(pp2_cost_model, fleet_samples, planner_config)
        scheduler = build_scheduler(
            specs,
            small_device,
            make_config(
                "fifo", checkpoint_interval_events=3, checkpoint_sink=snapshots.append
            ),
        )
        report = scheduler.run()
        _, reference_report = reference_runs["fifo"]
        assert_reports_identical(report, reference_report)
        assert len(snapshots) >= 2
        assert all(s["version"] == SNAPSHOT_VERSION for s in snapshots)

        # Restoring from the *last* periodic snapshot finishes the run
        # identically — the disaster-recovery path end to end.
        snapshot = json.loads(json.dumps(snapshots[-1]))
        fresh = crash_specs(pp2_cost_model, fleet_samples, planner_config)
        restored = FleetScheduler.restore(
            snapshot,
            ClusterTopology.for_num_gpus(4, device_spec=small_device),
            {spec.name: spec for spec in fresh},
            config=make_config("fifo"),
        )
        assert_reports_identical(restored.run(), reference_report)


class TestCheckpointGuards:
    """Misuse of the checkpoint/restore API fails loudly."""

    @pytest.fixture()
    def snapshot(self, pp2_cost_model, fleet_samples, planner_config, small_device):
        captured: dict[str, dict] = {}

        def hook(scheduler: FleetScheduler) -> None:
            if scheduler._events_processed == 3:
                captured["snapshot"] = scheduler.checkpoint()
                raise SchedulerKilled("guard-test kill")

        specs = crash_specs(pp2_cost_model, fleet_samples, planner_config)
        doomed = build_scheduler(
            specs, small_device, make_config("fifo", on_event=hook)
        )
        with pytest.raises(SchedulerKilled):
            doomed.run()
        return captured["snapshot"]

    def test_checkpoint_outside_run_raises(self, small_device):
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        with pytest.raises(RuntimeError, match="event boundary"):
            scheduler.checkpoint()

    def _specs_by_name(self, pp2_cost_model, fleet_samples, planner_config):
        return {
            spec.name: spec
            for spec in crash_specs(pp2_cost_model, fleet_samples, planner_config)
        }

    def test_restore_rejects_unknown_version(
        self, snapshot, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        bad = dict(snapshot, version=SNAPSHOT_VERSION + 1)
        with pytest.raises(ValueError, match="version"):
            FleetScheduler.restore(
                bad,
                ClusterTopology.for_num_gpus(4, device_spec=small_device),
                self._specs_by_name(pp2_cost_model, fleet_samples, planner_config),
            )

    def test_restore_rejects_wrong_cluster_size(
        self, snapshot, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        with pytest.raises(ValueError, match="device"):
            FleetScheduler.restore(
                snapshot,
                ClusterTopology.for_num_gpus(8, device_spec=small_device),
                self._specs_by_name(pp2_cost_model, fleet_samples, planner_config),
            )

    def test_restore_rejects_policy_mismatch(
        self, snapshot, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        with pytest.raises(ValueError, match="policy"):
            FleetScheduler.restore(
                snapshot,
                ClusterTopology.for_num_gpus(4, device_spec=small_device),
                self._specs_by_name(pp2_cost_model, fleet_samples, planner_config),
                config=make_config("priority"),
            )

    def test_restore_rejects_missing_spec(
        self, snapshot, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        specs = self._specs_by_name(pp2_cost_model, fleet_samples, planner_config)
        del specs["job0"]
        with pytest.raises(ValueError, match="job0"):
            FleetScheduler.restore(
                snapshot,
                ClusterTopology.for_num_gpus(4, device_spec=small_device),
                specs,
            )

    def test_restored_scheduler_rejects_new_submissions_and_events(
        self, snapshot, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        restored = FleetScheduler.restore(
            json.loads(json.dumps(snapshot)),
            ClusterTopology.for_num_gpus(4, device_spec=small_device),
            self._specs_by_name(pp2_cost_model, fleet_samples, planner_config),
            config=make_config("fifo"),
        )
        extra = crash_specs(pp2_cost_model, fleet_samples, planner_config)[0]
        with pytest.raises(RuntimeError):
            restored.submit(extra)
        with pytest.raises(RuntimeError):
            restored.inject_device_failure(200.0, 0)
        # ... but it still finishes the restored run cleanly.
        assert restored.run().finished_jobs == 2
