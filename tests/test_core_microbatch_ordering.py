"""Tests for the micro-batch injection-order search (paper §5)."""

from __future__ import annotations

import pytest

from repro.core.microbatch_ordering import cluster_and_order, cluster_by_time


class TestClusterByTime:
    def test_clusters_partition_indices(self):
        times = [5.0, 1.0, 9.0, 2.0, 7.0, 3.0]
        clusters = cluster_by_time(times, 3)
        flattened = sorted(i for cluster in clusters for i in cluster)
        assert flattened == list(range(len(times)))

    def test_clusters_ordered_by_time(self):
        times = [5.0, 1.0, 9.0, 2.0, 7.0, 3.0]
        clusters = cluster_by_time(times, 3)
        cluster_means = [sum(times[i] for i in c) / len(c) for c in clusters]
        assert cluster_means == sorted(cluster_means)

    def test_fewer_items_than_clusters(self):
        clusters = cluster_by_time([4.0, 2.0], 5)
        assert len(clusters) == 2

    def test_single_cluster(self):
        clusters = cluster_by_time([3.0, 1.0, 2.0], 1)
        assert clusters == [[0, 1, 2]]

    def test_empty(self):
        assert cluster_by_time([], 3) == []

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            cluster_by_time([1.0], 0)


class TestClusterAndOrder:
    def test_returns_permutation(self):
        times = [1.0, 5.0, 2.0, 8.0, 3.0]
        result = cluster_and_order(times, score_fn=lambda order: float(order[0]))
        assert sorted(result.order) == list(range(len(times)))

    def test_picks_lowest_scoring_permutation(self):
        """With a score that prefers long micro-batches first, the search
        should return an order starting with the slowest cluster."""
        times = [1.0, 1.1, 10.0, 10.5, 5.0, 5.2]

        def score(order):
            # Penalise orders that do not start with the slowest micro-batch.
            return 0.0 if times[order[0]] >= 10.0 else 100.0

        result = cluster_and_order(times, score, num_clusters=3)
        assert times[result.order[0]] >= 10.0
        assert result.makespan_ms == 0.0

    def test_single_microbatch(self):
        result = cluster_and_order([3.0], score_fn=lambda order: 42.0)
        assert result.order == [0]
        assert result.makespan_ms == 42.0
        assert result.evaluated == 1

    def test_evaluation_count_bounded(self):
        times = list(range(12))
        result = cluster_and_order(
            [float(t) for t in times], score_fn=lambda order: 0.0, num_clusters=4,
            max_permutations=5,
        )
        assert result.evaluated <= 5

    def test_cluster_sizes_reported(self):
        result = cluster_and_order(
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0], score_fn=lambda order: 0.0, num_clusters=3
        )
        assert sum(result.cluster_sizes) == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cluster_and_order([], score_fn=lambda order: 0.0)

    def test_all_permutations_evaluated_for_three_clusters(self):
        result = cluster_and_order(
            [1.0, 10.0, 20.0], score_fn=lambda order: float(sum(order)), num_clusters=3
        )
        assert result.evaluated == 6
