"""Telemetry must never change results: on-vs-off bit-identity + stream determinism.

The observability contract of this codebase is that telemetry is purely
additive: plans, fleet reports and simulated makespans are bit-identical
whether the flag is on or off, and with the flag on the event/span streams
of a seeded run are themselves deterministic (fleet clock + structural span
comparison — wall-clock timestamps are excluded via ``structure()``).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.planner import PlannerConfig
from repro.fleet import FleetScheduler, JobSpec
from repro.parallel.config import ParallelConfig

from test_fleet_checkpoint import (
    assert_reports_identical,
    build_scheduler,
    crash_specs,
    make_config,
    run_killed_and_restored,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


@pytest.fixture(scope="module")
def planner_config():
    return PlannerConfig(order_search=True, tmax_sample_count=8)


# ----------------------------------------------------------------- planner plans


def _strip_timing(plan_dict):
    """Drop wall-clock planning-time fields (the only legitimately
    run-dependent values in a plan dict)."""
    stripped = dict(plan_dict)
    stripped.pop("planning_time_s", None)
    if "metadata" in stripped:
        stripped["metadata"] = {
            key: value
            for key, value in stripped["metadata"].items()
            if key != "planning_time_s"
        }
    if "replicas" in stripped:
        stripped["replicas"] = [_strip_timing(replica) for replica in stripped["replicas"]]
    return stripped


class TestPlannerBitIdentity:
    def _plan(self, pp2_cost_model, fleet_samples, planner_config):
        spec = JobSpec(
            name="probe",
            cost_model=pp2_cost_model,
            samples=fleet_samples,
            global_batch_tokens=4096,
            parallel=ParallelConfig(1, 2, 1),
            num_iterations=1,
            planner_config=planner_config,
        )
        planner = spec.build_planner(1)
        return planner.plan(fleet_samples[:32], 0)

    def test_plan_identical_on_vs_off(self, pp2_cost_model, fleet_samples, planner_config):
        baseline = self._plan(pp2_cost_model, fleet_samples, planner_config)
        with obs.telemetry():
            traced = self._plan(pp2_cost_model, fleet_samples, planner_config)
        assert _strip_timing(traced.to_dict()) == _strip_timing(baseline.to_dict())

    def test_plan_spans_recorded_only_when_on(
        self, pp2_cost_model, fleet_samples, planner_config
    ):
        self._plan(pp2_cost_model, fleet_samples, planner_config)
        assert obs.RECORDER.spans() == []
        with obs.telemetry():
            self._plan(pp2_cost_model, fleet_samples, planner_config)
        names = [record.name for record in obs.RECORDER.spans()]
        assert "plan" in names and "order_search" in names


# ------------------------------------------------------------------- fleet runs


def _run_crash_scenario(pp2_cost_model, fleet_samples, planner_config, small_device):
    specs = crash_specs(pp2_cost_model, fleet_samples, planner_config)
    scheduler = build_scheduler(specs, small_device, make_config("priority"))
    return scheduler.run()


class TestFleetBitIdentity:
    def test_chaos_run_identical_on_vs_off(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        baseline = _run_crash_scenario(
            pp2_cost_model, fleet_samples, planner_config, small_device
        )
        with obs.telemetry():
            traced = _run_crash_scenario(
                pp2_cost_model, fleet_samples, planner_config, small_device
            )
        assert_reports_identical(traced, baseline)
        assert traced.summary() == baseline.summary()

    def test_kill_restore_identical_with_telemetry_on(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        baseline = _run_crash_scenario(
            pp2_cost_model, fleet_samples, planner_config, small_device
        )
        with obs.telemetry():
            _, restored_report = run_killed_and_restored(
                pp2_cost_model, fleet_samples, planner_config, small_device, "priority", 3
            )
        assert_reports_identical(restored_report, baseline)


# ------------------------------------------------------------ stream determinism


class TestStreamDeterminism:
    def _traced_run(self, pp2_cost_model, fleet_samples, planner_config, small_device):
        """One telemetry-on chaos run; returns structural stream signatures."""
        obs.reset()
        with obs.telemetry():
            _run_crash_scenario(
                pp2_cost_model, fleet_samples, planner_config, small_device
            )
            events = obs.BUS.structure()
            spans = obs.RECORDER.structure()
            counters = dict(obs.REGISTRY.snapshot()["counters"])
        obs.reset()
        return events, spans, counters

    def test_streams_identical_across_identical_seeded_runs(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        first = self._traced_run(
            pp2_cost_model, fleet_samples, planner_config, small_device
        )
        second = self._traced_run(
            pp2_cost_model, fleet_samples, planner_config, small_device
        )
        events_a, spans_a, counters_a = first
        events_b, spans_b, counters_b = second
        assert events_a == events_b
        assert spans_a == spans_b
        assert counters_a == counters_b

    def test_event_stream_covers_the_scenario(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        events, spans, counters = self._traced_run(
            pp2_cost_model, fleet_samples, planner_config, small_device
        )
        kinds = {kind for kind, _, _ in events}
        # The crash scenario preempts, shrinks and regrows the elastic job
        # around a failure/repair pair and runs a priority job to completion.
        for expected in (
            "job_submitted",
            "job_admitted",
            "iteration_committed",
            "device_failure",
            "device_repair",
            "job_preempted",
            "job_finished",
        ):
            assert expected in kinds, f"missing {expected}"
        assert counters["fleet.device_failures"] == 1
        assert counters["fleet.jobs_submitted"] == 2
        assert counters["planner.plans"] > 0
        assert any(name == "job.step" for _, name, _ in spans)


# ------------------------------------------------------ engine stats aggregation


class TestPooledEngineStats:
    def test_pool_aggregates_worker_engine_stats(self, gpt_cost_model, flan_samples):
        """`engine_stats()` on the pool sums worker-process counters —
        the process-local module shim sees none of the workers' work."""
        from repro.core.planner import DynaPipePlanner
        from repro.runtime.planner_pool import PlannerPool
        from repro.simulator.compiled import engine_stats, reset_engine_stats

        planner = DynaPipePlanner(
            gpt_cost_model,
            config=PlannerConfig(order_search=False, tmax_sample_count=8),
        )
        minibatches = [flan_samples[i * 16 : (i + 1) * 16] for i in range(3)]
        reset_engine_stats()
        pool = PlannerPool(
            planner=planner, minibatches=minibatches, num_workers=1, lookahead=3
        )
        pool.start()
        try:
            for iteration in range(3):
                pool.wait_payload(iteration, timeout=120.0)
                pool.notify_consumed(iteration)
        finally:
            pool.stop()
        aggregated = pool.engine_stats()
        assert aggregated["timeline_solves"] > 0
        # The parent process never simulated anything itself.
        assert engine_stats()["timeline_solves"] == 0
