"""Tests for repro.model.config (paper Table 1)."""

from __future__ import annotations

import pytest

from repro.model.config import (
    GPT_CONFIGS,
    PAPER_PARAM_BILLIONS,
    T5_CONFIGS,
    ModelArch,
    ModelConfig,
    get_model_config,
)


class TestTable1Configs:
    @pytest.mark.parametrize("num_gpus", [4, 8, 16, 32])
    def test_gpt_configs_exist(self, num_gpus):
        config = get_model_config("gpt", num_gpus)
        assert config.arch is ModelArch.GPT
        assert not config.is_encoder_decoder

    @pytest.mark.parametrize("num_gpus", [4, 8, 16, 32])
    def test_t5_configs_exist(self, num_gpus):
        config = get_model_config("t5", num_gpus)
        assert config.arch is ModelArch.T5
        assert config.is_encoder_decoder

    @pytest.mark.parametrize(
        "config", list(GPT_CONFIGS.values()) + list(T5_CONFIGS.values()), ids=lambda c: c.name
    )
    def test_parameter_counts_match_paper(self, config):
        """Analytic parameter counts should be within 5% of Table 1."""
        expected = PAPER_PARAM_BILLIONS[config.name] * 1e9
        actual = config.parameter_count()
        assert actual == pytest.approx(expected, rel=0.05)

    def test_t5_layers_count_both_stacks(self):
        config = get_model_config("t5", 8)
        assert config.num_layers == 24
        assert config.total_layer_count == 48

    def test_gpt_total_layers(self):
        config = get_model_config("gpt", 8)
        assert config.total_layer_count == config.num_layers == 32

    def test_unknown_cluster_size(self):
        with pytest.raises(KeyError):
            get_model_config("gpt", 64)

    def test_arch_accepts_string(self):
        assert get_model_config("t5", 4) is T5_CONFIGS[4]

    def test_t5_ffn_dim_from_table(self):
        assert T5_CONFIGS[8].ffn_hidden_size == 65536

    def test_gpt29b_hidden_from_table(self):
        assert GPT_CONFIGS[32].hidden_size == 12288


class TestModelConfig:
    def test_attention_projection_size(self):
        config = ModelConfig("x", ModelArch.GPT, 2, 512, 8, 64, 2048)
        assert config.attention_projection_size == 512

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig("x", ModelArch.GPT, 0, 512, 8, 64, 2048)
        with pytest.raises(ValueError):
            ModelConfig("x", ModelArch.GPT, 2, -512, 8, 64, 2048)

    def test_embedding_included_in_parameter_count(self):
        config = ModelConfig("x", ModelArch.GPT, 2, 512, 8, 64, 2048, vocab_size=1000)
        with_embedding = config.parameter_count(include_embedding=True)
        without = config.parameter_count(include_embedding=False)
        assert with_embedding - without == 1000 * 512

    def test_t5_decoder_layers_heavier_than_encoder(self):
        """Decoder layers include cross-attention, so an encoder-decoder model
        has more parameters than a decoder-only model with the same shape and
        the same total layer count."""
        t5 = ModelConfig("t5", ModelArch.T5, 4, 512, 8, 64, 2048)
        gpt = ModelConfig("gpt", ModelArch.GPT, 8, 512, 8, 64, 2048)
        assert t5.parameter_count(False) > gpt.parameter_count(False)
