"""Tier-1 smoke check for the tier-2 benchmark harnesses.

The ``tier2_bench``-marked benchmarks guard the planner hot path, the
planner pool's multi-core scaling and the fleet scheduler, but they live
outside the default test collection (``benchmarks/`` uses its own
``pytest.ini``), so nothing would notice if an API change broke them.  This
test runs each benchmark file as part of the tier-1 suite in *smoke mode*
(``REPRO_BENCH_SMOKE=1``: reduced workload, timing assertions relaxed), so
the benchmark files cannot silently rot while keeping tier-1 runtime and
flakiness under control — the timing claims themselves are still enforced
by the real tier-2 run (``pytest benchmarks/ -m tier2_bench``).

Parametrising per file (rather than one ``pytest benchmarks/`` run) makes a
single rotten benchmark name the failing test directly and keeps the list
here an explicit registry every new tier-2 benchmark must join.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every tier-2 benchmark file; new benchmarks register here so the smoke
#: check covers them.
TIER2_BENCH_FILES = (
    "bench_planner_hotpath.py",
    "bench_fleet_scheduler.py",
    "bench_fleet_faults.py",
    "bench_fleet_scale.py",
    "bench_sim_engine.py",
    "bench_telemetry_overhead.py",
    "bench_backend_overhead.py",
)


def test_registry_matches_marked_files():
    """The registry lists exactly the files using the tier2_bench marker."""
    marked = {
        path.name
        for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")
        if "tier2_bench" in path.read_text()
    }
    assert marked == set(TIER2_BENCH_FILES)


@pytest.mark.parametrize("bench_file", TIER2_BENCH_FILES)
def test_tier2_bench_smoke(bench_file):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env["REPRO_BENCH_SMOKE"] = "1"
    result = subprocess.run(
        [
            sys.executable, "-m", "pytest", f"benchmarks/{bench_file}",
            "-m", "tier2_bench", "--benchmark-disable", "-q",
            "-p", "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"tier2_bench smoke run of {bench_file} failed (exit {result.returncode}):\n"
        f"{result.stdout}\n{result.stderr}"
    )
    # Collection must have found the benchmark (a marker or naming
    # regression that deselects everything should fail loudly here).
    assert " passed" in result.stdout, result.stdout
