"""Tier-1 smoke check for the tier-2 benchmark harnesses.

The ``tier2_bench``-marked benchmarks guard the planner hot path and the
planner pool's multi-core scaling, but they live outside the default test
collection (``benchmarks/`` uses its own ``pytest.ini``), so nothing would
notice if an API change broke them.  This test runs them as part of the
tier-1 suite in *smoke mode* (``REPRO_BENCH_SMOKE=1``: reduced workload,
timing assertions relaxed), so the benchmark files cannot silently rot while
keeping tier-1 runtime and flakiness under control — the timing claims
themselves are still enforced by the real tier-2 run
(``pytest benchmarks/ -m tier2_bench``).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_tier2_bench_smoke():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env["REPRO_BENCH_SMOKE"] = "1"
    result = subprocess.run(
        [
            sys.executable, "-m", "pytest", "benchmarks/",
            "-m", "tier2_bench", "--benchmark-disable", "-q",
            "-p", "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"tier2_bench smoke run failed (exit {result.returncode}):\n"
        f"{result.stdout}\n{result.stderr}"
    )
    # Collection must have found the tier-2 benchmarks (a marker or naming
    # regression that deselects everything should fail loudly here).
    assert " passed" in result.stdout, result.stdout
