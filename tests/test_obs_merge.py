"""Merged fleet↔simulator↔planner trace: validity, nesting, pid/tid checks.

Runs one seeded chaos fleet (inline planning, telemetry on) and asserts the
merged chrome trace is valid trace-event JSON whose every slice lands on a
named process/thread, that all three sections (fleet, per-job ops, planner
spans) are populated, and that the span recorder captured the expected
``job.step > plan`` / ``job.step > execute`` nesting.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cluster.topology import ClusterTopology
from repro.core.planner import PlannerConfig
from repro.fleet import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FleetScheduler,
    JobSpec,
)
from repro.obs import chrome as obs_chrome
from repro.obs.merge import merge_fleet_trace
from repro.parallel.config import ParallelConfig


@pytest.fixture(scope="module")
def traced_run(pp2_cost_model, fleet_samples, small_device):
    """One seeded chaos fleet run with telemetry on; everything captured."""
    obs.reset()
    obs.enable()
    try:
        topology = ClusterTopology.for_num_gpus(4, gpus_per_node=2, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        for index in range(3):
            scheduler.submit(
                JobSpec(
                    name=f"job{index}",
                    cost_model=pp2_cost_model,
                    samples=fleet_samples,
                    global_batch_tokens=4096,
                    parallel=ParallelConfig(1, 2, 1),
                    num_iterations=2,
                    planner_config=PlannerConfig(order_search=True, tmax_sample_count=8),
                    seed=index,
                    max_retries=4,
                )
            )
        plan = FaultPlan(
            events=[FaultEvent(time_ms=5.0, kind="failure", device=0, repair_after_ms=10.0)]
        )
        FaultInjector(plan).apply(scheduler)
        report = scheduler.run()
        payload = merge_fleet_trace(report)
        spans = obs.RECORDER.spans()
        events = obs.events()
        metrics = obs.REGISTRY.snapshot()
        return report, payload, spans, events, metrics
    finally:
        obs.reset()
        obs.disable()


def _slices(payload):
    return [e for e in payload["traceEvents"] if e["ph"] in ("X", "i")]


def _metadata(payload, name):
    return [e for e in payload["traceEvents"] if e["ph"] == "M" and e["name"] == name]


class TestMergedTraceValidity:
    def test_payload_is_valid_trace_event_json(self, traced_run):
        _, payload, _, _, _ = traced_run
        round_tripped = json.loads(json.dumps(payload))
        assert isinstance(round_tripped["traceEvents"], list)
        assert round_tripped["displayTimeUnit"] == "ms"
        for event in round_tripped["traceEvents"]:
            assert event["ph"] in ("M", "X", "i")
            assert isinstance(event["pid"], int)
            if event["ph"] != "M":
                assert isinstance(event["tid"], int)
                assert event["ts"] >= 0.0
            if event["ph"] == "X":
                assert event["dur"] >= 0.0

    def test_other_data(self, traced_run):
        report, payload, _, _, _ = traced_run
        other = payload["otherData"]
        assert other["policy"] == report.policy
        assert other["makespan_ms"] == report.makespan_ms
        assert other["sim_trace_dropped_events"] == 0

    def test_every_pid_and_tid_is_named(self, traced_run):
        _, payload, _, _, _ = traced_run
        named_pids = {e["pid"] for e in _metadata(payload, "process_name")}
        named_tids = {(e["pid"], e["tid"]) for e in _metadata(payload, "thread_name")}
        for event in _slices(payload):
            assert event["pid"] in named_pids, f"unnamed pid in {event}"
            assert (event["pid"], event["tid"]) in named_tids, f"unnamed tid in {event}"

    def test_pids_do_not_collide(self, traced_run):
        _, payload, _, _, _ = traced_run
        names = {}
        for event in _metadata(payload, "process_name"):
            pid, name = event["pid"], event["args"]["name"]
            assert names.setdefault(pid, name) == name
        assert obs_chrome.PID_FLEET in names
        assert obs_chrome.PID_PLANNER in names
        job_pids = {pid for pid in names if pid >= obs_chrome.PID_JOB_BASE}
        assert len(job_pids) == 3  # one process per job


class TestMergedTraceSections:
    def test_fleet_occupancy_slices_present(self, traced_run):
        _, payload, _, _, _ = traced_run
        fleet_x = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["pid"] == obs_chrome.PID_FLEET
        ]
        assert fleet_x, "no occupancy slices on the fleet process"
        assert any(e["name"].startswith("job") for e in fleet_x)

    def test_capacity_track_has_failure_and_repair(self, traced_run):
        report, payload, _, _, _ = traced_run
        capacity_tid = 2 * report.num_devices
        instants = [
            e for e in payload["traceEvents"]
            if e["ph"] == "i" and e["pid"] == obs_chrome.PID_FLEET and e["tid"] == capacity_tid
        ]
        names = {e["name"] for e in instants}
        assert any("failure" in name for name in names)
        assert any("repair" in name for name in names)

    def test_lifecycle_track_has_bus_events(self, traced_run):
        report, payload, _, _, _ = traced_run
        lifecycle_tid = 2 * report.num_devices + 1
        kinds = {
            e["name"] for e in payload["traceEvents"]
            if e["ph"] == "i" and e["pid"] == obs_chrome.PID_FLEET and e["tid"] == lifecycle_tid
        }
        for expected in ("job_submitted", "job_admitted", "iteration_committed", "job_finished"):
            assert expected in kinds, f"missing lifecycle event {expected}"

    def test_job_sections_carry_op_slices_on_fleet_clock(self, traced_run):
        report, payload, _, _, _ = traced_run
        job_x = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["pid"] >= obs_chrome.PID_JOB_BASE
        ]
        assert job_x, "no simulated op slices in the job sections"
        # Op names are simulator instruction labels (F/B/W/comm ops).
        assert all(e["name"] for e in job_x)
        # Shifted onto the fleet clock: ops end within the fleet makespan.
        for event in job_x:
            assert event["ts"] / obs_chrome.US_PER_MS <= report.makespan_ms + 1e-6

    def test_planner_section_present_and_normalized(self, traced_run):
        _, payload, _, _, _ = traced_run
        planner_x = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["pid"] == obs_chrome.PID_PLANNER
        ]
        names = {e["name"] for e in planner_x}
        assert {"job.step", "plan", "order_search", "execute"} <= names
        assert min(e["ts"] for e in planner_x) == 0.0  # t0-normalized

    def test_save_merged_trace_via_report(self, traced_run, tmp_path):
        report, payload, spans, events, _ = traced_run
        from repro.obs.merge import save_merged_trace

        path = save_merged_trace(
            tmp_path / "merged.json", report,
            spans=list(spans), bus=_bus_from(events),
        )
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["policy"] == report.policy


def _bus_from(events):
    bus = obs.EventBus()
    for event in events:
        bus.publish(event.kind, time_ms=event.time_ms, **event.fields)
    return bus


class TestSpanNesting:
    def test_plan_nests_under_job_step(self, traced_run):
        _, _, spans, _, _ = traced_run
        by_id = {record.span_id: record for record in spans}
        plan_spans = [r for r in spans if r.name == "plan"]
        assert plan_spans
        for record in plan_spans:
            parent = by_id[record.parent_id]
            assert parent.name == "job.step"
            assert record.depth == parent.depth + 1

    def test_order_search_nests_under_plan(self, traced_run):
        _, _, spans, _, _ = traced_run
        by_id = {record.span_id: record for record in spans}
        searches = [r for r in spans if r.name == "order_search"]
        assert searches
        for record in searches:
            assert by_id[record.parent_id].name == "plan"

    def test_execute_nests_under_job_step(self, traced_run):
        _, _, spans, _, _ = traced_run
        by_id = {record.span_id: record for record in spans}
        executes = [r for r in spans if r.name == "execute"]
        assert executes
        for record in executes:
            assert by_id[record.parent_id].name == "job.step"

    def test_children_within_parent_interval(self, traced_run):
        _, _, spans, _, _ = traced_run
        by_id = {record.span_id: record for record in spans}
        for record in spans:
            if record.parent_id is None:
                continue
            parent = by_id[record.parent_id]
            assert parent.start_s <= record.start_s
            assert record.end_s <= parent.end_s


class TestRunTelemetry:
    def test_fleet_counters_match_report(self, traced_run):
        report, _, _, _, metrics = traced_run
        counters = metrics["counters"]
        assert counters["fleet.jobs_submitted"] == 3
        assert counters["fleet.jobs_finished"] == report.finished_jobs
        assert counters["fleet.iterations_committed"] == sum(
            job.iterations_completed for job in report.jobs
        )
        assert counters["fleet.device_failures"] == 1
        assert counters["fleet.device_repairs"] == 1

    def test_iteration_histogram_populated(self, traced_run):
        _, _, _, _, metrics = traced_run
        hist = metrics["histograms"]["fleet.iteration_ms"]
        assert hist["count"] == metrics["counters"]["fleet.iterations_committed"]
        assert hist["min"] > 0.0

    def test_events_are_fleet_clocked(self, traced_run):
        report, _, _, events, _ = traced_run
        fleet_kinds = {"job_submitted", "job_admitted", "iteration_committed", "job_finished"}
        for event in events:
            if event.kind in fleet_kinds:
                assert event.time_ms is not None
                assert 0.0 <= event.time_ms <= report.makespan_ms
