"""Tests for repro.model.transformer (layer assignment and stage models)."""

from __future__ import annotations

import pytest

from repro.cluster.device import SimulatedGPU
from repro.model.config import ModelArch, ModelConfig
from repro.model.memory import RecomputeMode
from repro.model.transformer import (
    MicroBatchShape,
    StageModel,
    assign_layers,
    build_stage_models,
)


@pytest.fixture(scope="module")
def gpt() -> ModelConfig:
    return ModelConfig("gpt-test", ModelArch.GPT, 12, 768, 12, 64, 3072)


@pytest.fixture(scope="module")
def t5() -> ModelConfig:
    return ModelConfig("t5-test", ModelArch.T5, 6, 768, 12, 64, 3072)


@pytest.fixture(scope="module")
def gpu() -> SimulatedGPU:
    return SimulatedGPU()


class TestAssignLayers:
    def test_gpt_even_split(self, gpt):
        assignments = assign_layers(gpt, 4)
        assert [a.total_layers for a in assignments] == [3, 3, 3, 3]
        assert all(a.encoder_layers == 0 for a in assignments)

    def test_gpt_uneven_split_front_loaded(self, gpt):
        assignments = assign_layers(gpt, 5)
        assert [a.total_layers for a in assignments] == [3, 3, 2, 2, 2]

    def test_t5_encoder_precedes_decoder(self, t5):
        assignments = assign_layers(t5, 4)
        # 6 encoder + 6 decoder layers over 4 stages of 3 layers each.
        assert [a.encoder_layers for a in assignments] == [3, 3, 0, 0]
        assert [a.decoder_layers for a in assignments] == [0, 0, 3, 3]

    def test_t5_mixed_stage(self, t5):
        assignments = assign_layers(t5, 3)
        # 12 layers over 3 stages of 4: the middle stage straddles the boundary.
        assert assignments[1].encoder_layers == 2
        assert assignments[1].decoder_layers == 2

    def test_last_stage_has_output_projection(self, gpt):
        assignments = assign_layers(gpt, 4)
        assert [a.has_output_projection for a in assignments] == [False, False, False, True]

    def test_single_stage(self, gpt):
        assignments = assign_layers(gpt, 1)
        assert assignments[0].total_layers == gpt.num_layers

    def test_too_many_stages_rejected(self, gpt):
        with pytest.raises(ValueError):
            assign_layers(gpt, gpt.num_layers + 1)

    def test_total_layers_preserved(self, t5):
        for stages in (1, 2, 3, 4, 6):
            assignments = assign_layers(t5, stages)
            assert sum(a.total_layers for a in assignments) == t5.total_layer_count


class TestMicroBatchShape:
    def test_total_tokens(self):
        shape = MicroBatchShape(batch_size=4, enc_seq_len=128, dec_seq_len=32)
        assert shape.total_tokens == 4 * 160

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            MicroBatchShape(batch_size=0, enc_seq_len=10)

    def test_negative_seq_len(self):
        with pytest.raises(ValueError):
            MicroBatchShape(batch_size=1, enc_seq_len=-1)


class TestStageModel:
    def test_forward_time_positive(self, gpt, gpu):
        stages = build_stage_models(gpt, 4)
        shape = MicroBatchShape(batch_size=2, enc_seq_len=256)
        assert stages[0].forward_time_ms(gpu, shape) > 0

    def test_backward_slower_than_forward(self, gpt, gpu):
        stage = build_stage_models(gpt, 4)[0]
        shape = MicroBatchShape(batch_size=2, enc_seq_len=256)
        assert stage.backward_time_ms(gpu, shape) > stage.forward_time_ms(gpu, shape)

    def test_recompute_increases_backward_time(self, gpt, gpu):
        stage = build_stage_models(gpt, 4)[0]
        shape = MicroBatchShape(batch_size=2, enc_seq_len=256)
        plain = stage.backward_time_ms(gpu, shape, RecomputeMode.NONE)
        full = stage.backward_time_ms(gpu, shape, RecomputeMode.FULL)
        assert full > plain

    def test_recompute_decreases_activation(self, gpt):
        stage = build_stage_models(gpt, 4)[0]
        shape = MicroBatchShape(batch_size=2, enc_seq_len=256)
        assert stage.activation_bytes(shape, RecomputeMode.FULL) < stage.activation_bytes(
            shape, RecomputeMode.NONE
        )

    def test_t5_encoder_stage_ignores_decoder_length(self, t5, gpu):
        stages = build_stage_models(t5, 4)
        encoder_stage = stages[0]
        a = encoder_stage.forward_time_ms(gpu, MicroBatchShape(2, 256, 32))
        b = encoder_stage.forward_time_ms(gpu, MicroBatchShape(2, 256, 512))
        assert a == pytest.approx(b)

    def test_t5_decoder_stage_depends_on_both_lengths(self, t5, gpu):
        stages = build_stage_models(t5, 4)
        decoder_stage = stages[-1]
        short = decoder_stage.forward_time_ms(gpu, MicroBatchShape(2, 128, 64))
        long_src = decoder_stage.forward_time_ms(gpu, MicroBatchShape(2, 1024, 64))
        long_tgt = decoder_stage.forward_time_ms(gpu, MicroBatchShape(2, 128, 512))
        assert long_src > short
        assert long_tgt > short

    def test_tensor_parallel_reduces_compute_time(self, gpt):
        gpu = SimulatedGPU()
        shape = MicroBatchShape(batch_size=4, enc_seq_len=1024)
        tp1 = build_stage_models(gpt, 4, tensor_parallel=1)[0].forward_time_ms(gpu, shape)
        tp4 = build_stage_models(gpt, 4, tensor_parallel=4)[0].forward_time_ms(gpu, shape)
        assert tp4 < tp1

    def test_static_bytes_positive(self, gpt):
        stage = build_stage_models(gpt, 4)[0]
        assert stage.static_bytes() > 0

    def test_output_activation_bytes_scale_with_tokens(self, gpt):
        stage = build_stage_models(gpt, 4)[0]
        small = stage.output_activation_bytes(MicroBatchShape(1, 128))
        large = stage.output_activation_bytes(MicroBatchShape(2, 128))
        assert large == pytest.approx(2 * small)

    def test_gpt_stage_zero_dec_len(self, gpt, gpu):
        """GPT shapes carry dec_seq_len=0 and still produce valid costs."""
        stage = build_stage_models(gpt, 2)[1]
        shape = MicroBatchShape(batch_size=2, enc_seq_len=64, dec_seq_len=0)
        assert stage.forward_time_ms(gpu, shape) > 0
        assert stage.activation_bytes(shape) > 0
