"""Tests for repro.utils.rng and repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import RngMixin, new_rng, spawn_rng
from repro.utils.validation import check_non_negative, check_positive, check_probability


class TestNewRng:
    def test_same_seed_same_stream(self):
        a, b = new_rng(42), new_rng(42)
        assert a.integers(0, 1000, 10).tolist() == b.integers(0, 1000, 10).tolist()

    def test_different_seed_different_stream(self):
        a, b = new_rng(1), new_rng(2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(new_rng(0), 5)
        assert len(children) == 5

    def test_spawn_children_independent(self):
        children = spawn_rng(new_rng(0), 2)
        a = children[0].integers(0, 10**9, 5).tolist()
        b = children[1].integers(0, 10**9, 5).tolist()
        assert a != b

    def test_spawn_deterministic(self):
        first = [g.integers(0, 10**9) for g in spawn_rng(new_rng(7), 3)]
        second = [g.integers(0, 10**9) for g in spawn_rng(new_rng(7), 3)]
        assert first == second

    def test_spawn_zero(self):
        assert spawn_rng(new_rng(0), 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(new_rng(0), -1)


class TestRngMixin:
    class Thing(RngMixin):
        pass

    def test_lazy_construction(self):
        thing = self.Thing()
        thing.set_seed(3)
        assert isinstance(thing.rng, np.random.Generator)

    def test_reset_seed_resets_stream(self):
        thing = self.Thing()
        thing.set_seed(3)
        first = thing.rng.integers(0, 10**9)
        thing.set_seed(3)
        second = thing.rng.integers(0, 10**9)
        assert first == second


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_probability_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.1)
        with pytest.raises(ValueError):
            check_probability("p", -0.1)
