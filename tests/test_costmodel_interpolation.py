"""Tests for repro.costmodel.interpolation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.interpolation import GridInterpolator


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GridInterpolator([[1, 2]], np.zeros((3,)))

    def test_non_monotone_axis_rejected(self):
        with pytest.raises(ValueError):
            GridInterpolator([[2, 1]], np.zeros((2,)))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            GridInterpolator([], np.zeros(()))

    def test_wrong_coordinate_count(self):
        interp = GridInterpolator([[0, 1], [0, 1]], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            interp(0.5)


class Test1D:
    def test_exact_grid_points(self):
        interp = GridInterpolator([[1, 2, 4]], np.array([10.0, 20.0, 40.0]))
        assert interp(1) == 10.0
        assert interp(2) == 20.0
        assert interp(4) == 40.0

    def test_midpoint(self):
        interp = GridInterpolator([[0, 10]], np.array([0.0, 100.0]))
        assert interp(5) == pytest.approx(50.0)

    def test_extrapolation_above(self):
        interp = GridInterpolator([[0, 10]], np.array([0.0, 100.0]))
        assert interp(20) == pytest.approx(200.0)

    def test_extrapolation_below(self):
        interp = GridInterpolator([[10, 20]], np.array([100.0, 200.0]))
        assert interp(0) == pytest.approx(0.0)

    def test_single_point_axis(self):
        interp = GridInterpolator([[5]], np.array([42.0]))
        assert interp(3) == 42.0
        assert interp(100) == 42.0


class Test2D:
    def test_bilinear_center(self):
        interp = GridInterpolator(
            [[0, 1], [0, 1]], np.array([[0.0, 1.0], [1.0, 2.0]])
        )
        assert interp(0.5, 0.5) == pytest.approx(1.0)

    def test_corner_values(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        interp = GridInterpolator([[0, 1], [0, 1]], values)
        assert interp(0, 0) == 1.0
        assert interp(1, 1) == 4.0

    def test_linear_function_reproduced_exactly(self):
        """Multi-linear interpolation is exact for linear functions."""
        xs, ys = [1, 3, 7], [2, 5, 11]
        values = np.array([[2 * x + 3 * y for y in ys] for x in xs], dtype=float)
        interp = GridInterpolator([xs, ys], values)
        assert interp(4.5, 6.2) == pytest.approx(2 * 4.5 + 3 * 6.2)

    def test_max_value(self):
        values = np.array([[1.0, 9.0], [3.0, 4.0]])
        interp = GridInterpolator([[0, 1], [0, 1]], values)
        assert interp.max_value() == 9.0


class Test3D:
    def test_trilinear_linear_function(self):
        xs, ys, zs = [1, 2], [4, 8], [16, 32]
        values = np.array(
            [[[x + 2 * y + 4 * z for z in zs] for y in ys] for x in xs], dtype=float
        )
        interp = GridInterpolator([xs, ys, zs], values)
        assert interp(1.5, 6.0, 24.0) == pytest.approx(1.5 + 12.0 + 96.0)

    @given(
        x=st.floats(min_value=1, max_value=2),
        y=st.floats(min_value=4, max_value=8),
        z=st.floats(min_value=16, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_interpolation_bounded_by_grid_values(self, x, y, z):
        """Within the grid, interpolated values never leave the value range."""
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 100.0, size=(2, 2, 2))
        interp = GridInterpolator([[1, 2], [4, 8], [16, 32]], values)
        result = interp(x, y, z)
        assert values.min() - 1e-9 <= result <= values.max() + 1e-9


def _random_grid(rng, dims, points_per_axis=5):
    """A random strictly-increasing grid with random values."""
    axes = [
        np.unique(rng.integers(1, 4096, size=points_per_axis)).astype(float)
        for _ in range(dims)
    ]
    values = rng.uniform(0.0, 500.0, size=tuple(len(a) for a in axes))
    return GridInterpolator(axes, values), axes


def _random_points(rng, axes, count):
    """Random query points, half inside the grid and half extrapolating
    beyond either end of each axis."""
    low = np.array([a[0] for a in axes])
    high = np.array([a[-1] for a in axes])
    span = high - low
    inside = rng.uniform(low, high, size=(count // 2, len(axes)))
    outside = rng.uniform(low - span, high + span, size=(count - count // 2, len(axes)))
    return np.concatenate([inside, outside], axis=0)


class TestQueryMany:
    """The batched fast path must match the scalar reference bit for bit."""

    @pytest.mark.parametrize("dims", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar_on_random_grids(self, dims, seed):
        rng = np.random.default_rng(seed)
        interp, axes = _random_grid(rng, dims)
        points = _random_points(rng, axes, 64)
        batched = interp.query_many(points)
        scalar = np.array([interp(*row) for row in points])
        assert batched.shape == (64,)
        np.testing.assert_array_equal(batched, scalar)

    def test_matches_scalar_on_grid_points(self):
        """Exact grid points (including corners) are reproduced exactly."""
        rng = np.random.default_rng(3)
        interp, axes = _random_grid(rng, 2)
        grid = np.array([[x, y] for x in axes[0] for y in axes[1]])
        np.testing.assert_array_equal(
            interp.query_many(grid), np.array([interp(*row) for row in grid])
        )

    def test_single_point_axis(self):
        interp = GridInterpolator([[5], [1, 2]], np.array([[10.0, 20.0]]))
        points = np.array([[3.0, 1.5], [100.0, 0.0]])
        np.testing.assert_array_equal(
            interp.query_many(points), np.array([interp(*row) for row in points])
        )

    def test_wrong_shape_rejected(self):
        interp = GridInterpolator([[0, 1], [0, 1]], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            interp.query_many(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            interp.query_many(np.zeros(4))

    def test_empty_batch(self):
        interp = GridInterpolator([[0, 1]], np.array([0.0, 1.0]))
        assert interp.query_many(np.zeros((0, 1))).shape == (0,)
