"""Tests for repro.costmodel.interpolation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.interpolation import GridInterpolator


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GridInterpolator([[1, 2]], np.zeros((3,)))

    def test_non_monotone_axis_rejected(self):
        with pytest.raises(ValueError):
            GridInterpolator([[2, 1]], np.zeros((2,)))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            GridInterpolator([], np.zeros(()))

    def test_wrong_coordinate_count(self):
        interp = GridInterpolator([[0, 1], [0, 1]], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            interp(0.5)


class Test1D:
    def test_exact_grid_points(self):
        interp = GridInterpolator([[1, 2, 4]], np.array([10.0, 20.0, 40.0]))
        assert interp(1) == 10.0
        assert interp(2) == 20.0
        assert interp(4) == 40.0

    def test_midpoint(self):
        interp = GridInterpolator([[0, 10]], np.array([0.0, 100.0]))
        assert interp(5) == pytest.approx(50.0)

    def test_extrapolation_above(self):
        interp = GridInterpolator([[0, 10]], np.array([0.0, 100.0]))
        assert interp(20) == pytest.approx(200.0)

    def test_extrapolation_below(self):
        interp = GridInterpolator([[10, 20]], np.array([100.0, 200.0]))
        assert interp(0) == pytest.approx(0.0)

    def test_single_point_axis(self):
        interp = GridInterpolator([[5]], np.array([42.0]))
        assert interp(3) == 42.0
        assert interp(100) == 42.0


class Test2D:
    def test_bilinear_center(self):
        interp = GridInterpolator(
            [[0, 1], [0, 1]], np.array([[0.0, 1.0], [1.0, 2.0]])
        )
        assert interp(0.5, 0.5) == pytest.approx(1.0)

    def test_corner_values(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        interp = GridInterpolator([[0, 1], [0, 1]], values)
        assert interp(0, 0) == 1.0
        assert interp(1, 1) == 4.0

    def test_linear_function_reproduced_exactly(self):
        """Multi-linear interpolation is exact for linear functions."""
        xs, ys = [1, 3, 7], [2, 5, 11]
        values = np.array([[2 * x + 3 * y for y in ys] for x in xs], dtype=float)
        interp = GridInterpolator([xs, ys], values)
        assert interp(4.5, 6.2) == pytest.approx(2 * 4.5 + 3 * 6.2)

    def test_max_value(self):
        values = np.array([[1.0, 9.0], [3.0, 4.0]])
        interp = GridInterpolator([[0, 1], [0, 1]], values)
        assert interp.max_value() == 9.0


class Test3D:
    def test_trilinear_linear_function(self):
        xs, ys, zs = [1, 2], [4, 8], [16, 32]
        values = np.array(
            [[[x + 2 * y + 4 * z for z in zs] for y in ys] for x in xs], dtype=float
        )
        interp = GridInterpolator([xs, ys, zs], values)
        assert interp(1.5, 6.0, 24.0) == pytest.approx(1.5 + 12.0 + 96.0)

    @given(
        x=st.floats(min_value=1, max_value=2),
        y=st.floats(min_value=4, max_value=8),
        z=st.floats(min_value=16, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_interpolation_bounded_by_grid_values(self, x, y, z):
        """Within the grid, interpolated values never leave the value range."""
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 100.0, size=(2, 2, 2))
        interp = GridInterpolator([[1, 2], [4, 8], [16, 32]], values)
        result = interp(x, y, z)
        assert values.min() - 1e-9 <= result <= values.max() + 1e-9
