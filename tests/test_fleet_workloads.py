"""Trace-driven workload generator: determinism, serialisation, replay.

The generator must be bit-stable across processes (string-seeded RNG
streams only), traces must round-trip through JSON unchanged, and replay
must drive the full scheduler machinery deterministically — equal traces
replay to bit-identical fleet reports on either scheduler core.
"""

from __future__ import annotations

import pytest

from repro.fleet import (
    FleetConfig,
    SyntheticTracePlanner,
    TraceJob,
    WorkloadTrace,
    build_jobs,
    build_scheduler,
    generate_trace,
    replay_trace,
    workload_cost_model,
)
from repro.fleet.workloads import (
    GLOBAL_BATCH_TOKENS,
    MODEL_CATALOG,
    TRACE_EPOCH_SAMPLES,
    _sample_pool,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(num_jobs=30, num_nodes=2, gpus_per_node=8, seed=11)


# ------------------------------------------------------------------- generator


def test_trace_generation_is_deterministic(trace):
    again = generate_trace(num_jobs=30, num_nodes=2, gpus_per_node=8, seed=11)
    assert again.to_dict() == trace.to_dict()
    different = generate_trace(num_jobs=30, num_nodes=2, gpus_per_node=8, seed=12)
    assert different.to_dict() != trace.to_dict()


def test_trace_shape_and_structure(trace):
    assert len(trace.jobs) == 30
    assert trace.num_devices == 16
    catalog = {m.key for m in MODEL_CATALOG}
    submit_times = [job.submit_time_ms for job in trace.jobs]
    assert submit_times == sorted(submit_times)
    for job in trace.jobs:
        assert job.model in catalog
        # Every drawn gang fits the target cluster.
        assert 1 <= job.gang_size() <= trace.num_devices
        assert 1 <= job.num_iterations <= TRACE_EPOCH_SAMPLES
        assert job.tenant.startswith("tenant-")
    # The default mix includes both architectures and several priorities.
    assert len({job.model for job in trace.jobs}) >= 2
    assert len({job.priority for job in trace.jobs}) >= 2
    # The fault plan parsed from the trace is non-empty and in time order.
    plan = trace.fault_plan()
    assert len(plan) == len(trace.faults) >= 1
    times = [event.time_ms for event in plan.events]
    assert times == sorted(times)


def test_trace_json_round_trip(trace, tmp_path):
    rebuilt = WorkloadTrace.from_json(trace.to_json())
    assert rebuilt.to_dict() == trace.to_dict()
    assert rebuilt.jobs == trace.jobs
    path = trace.save(tmp_path / "trace.json")
    assert WorkloadTrace.load(path).to_dict() == trace.to_dict()


def test_generation_validation():
    with pytest.raises(ValueError, match="num_jobs"):
        generate_trace(num_jobs=0, num_nodes=1)
    with pytest.raises(ValueError, match="min_iterations"):
        generate_trace(num_jobs=1, num_nodes=1, min_iterations=5, max_iterations=4)
    with pytest.raises(ValueError, match="priority_weights"):
        generate_trace(num_jobs=1, num_nodes=1, priority_weights=(1.0,))


# --------------------------------------------------------------------- planner


def test_synthetic_planner_is_seed_stable():
    cost_model = workload_cost_model("gpt-small")
    planner = SyntheticTracePlanner(
        cost_model,
        data_parallel_size=2,
        requested_data_parallel=2,
        base_iteration_ms=100.0,
        seed=7,
    )
    times = [planner.iteration_ms(i) for i in range(5)]
    again = [planner.iteration_ms(i) for i in range(5)]
    assert times == again
    # Jitter is bounded and iteration-dependent.
    assert all(90.0 <= t <= 110.0 for t in times)
    assert len(set(times)) > 1
    # Elastic shrink slows the job proportionally to the lost replicas,
    # with the identical per-iteration jitter stream.
    shrunk = SyntheticTracePlanner(
        cost_model,
        data_parallel_size=1,
        requested_data_parallel=2,
        base_iteration_ms=100.0,
        seed=7,
    )
    for i, t in enumerate(times):
        assert shrunk.iteration_ms(i) == pytest.approx(2.0 * t)


def test_synthetic_planner_plan_payload():
    cost_model = workload_cost_model("gpt-medium")
    planner = SyntheticTracePlanner(
        cost_model,
        data_parallel_size=2,
        requested_data_parallel=2,
        base_iteration_ms=100.0,
        seed=3,
    )
    samples = _sample_pool("gpt")[:1]
    plan = planner.plan(samples, iteration=4)
    assert plan.predicted_iteration_ms == planner.iteration_ms(4)
    assert len(plan.replicas) == 2
    assert plan.plans[0].num_stages == cost_model.num_stages
    assert plan.padding.actual_tokens == GLOBAL_BATCH_TOKENS
    assert plan.padding.overall_efficiency == 1.0


# ---------------------------------------------------------------------- replay


def test_build_jobs_materialises_specs(trace):
    specs = build_jobs(trace)
    assert [spec.name for spec in specs] == [job.name for job in trace.jobs]
    for spec, job in zip(specs, trace.jobs):
        assert spec.parallel.data_parallel == job.data_parallel
        assert spec.priority == job.priority
        assert spec.submit_time_ms == job.submit_time_ms
        assert spec.execute_plans is False
        assert spec.noise_std == 0.0
        # One sample fills one mini-batch, so the epoch covers the spec.
        assert spec.num_iterations <= TRACE_EPOCH_SAMPLES


def test_replay_is_deterministic_and_core_identical(trace):
    first = replay_trace(trace, policy="priority")
    second = replay_trace(trace, policy="priority")
    oracle = replay_trace(trace, policy="priority", core="object")
    assert first.summary() == second.summary()
    assert first.summary() == oracle.summary()
    assert first.jobs == second.jobs == oracle.jobs
    assert first.finished_jobs + first.failed_jobs == len(trace.jobs)
    assert first.events_processed > 0


def test_replay_policies_differ_on_contended_trace():
    contended = generate_trace(
        num_jobs=40, num_nodes=1, gpus_per_node=8, seed=5, base_rate_per_s=20.0
    )
    fifo = replay_trace(contended, policy="fifo")
    priority = replay_trace(contended, policy="priority")
    assert fifo.policy == "fifo"
    assert priority.policy == "priority"
    # The contended cluster forces real queueing, and the preemptive
    # policy actually preempts.
    assert fifo.mean_queueing_delay_ms > 0.0
    assert priority.total_evictions > 0


def test_build_scheduler_respects_config_override(trace):
    scheduler = build_scheduler(
        trace, config=FleetConfig(policy="srw", core="object")
    )
    assert scheduler.policy.name == "srw"
    assert scheduler.core == "object"
    assert len(scheduler._pending) == len(trace.jobs)


def test_trace_job_round_trip():
    job = TraceJob(
        name="gpt-small-0001",
        model="gpt-small",
        data_parallel=2,
        num_iterations=4,
        priority=1,
        tenant="tenant-0",
        submit_time_ms=12.5,
        seed=99,
    )
    assert TraceJob.from_dict(job.to_dict()) == job
