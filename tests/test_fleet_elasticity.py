"""Dynamic-capacity tests: device repair, late arrival, elastic regrowth.

Covers the elasticity tentpole end to end — the acceptance scenario is a
device failing (job shrinks its data-parallel degree), the device being
repaired, and the job regrowing to its requested gang at a checkpoint
boundary with records bit-identical to a boundary-restarted standalone run
— plus the dead-time utilization accounting and the regression that a
repair admits a queued job at the repair timestamp.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.planner import PlannerConfig
from repro.fleet import FleetConfig, FleetReport, FleetScheduler, JobSpec, JobState
from repro.parallel.config import ParallelConfig

from test_fleet_scheduler import assert_records_identical, standalone_records


@pytest.fixture(scope="module")
def planner_config():
    return PlannerConfig(order_search=False, tmax_sample_count=8)


def make_spec(pp2_cost_model, fleet_samples, planner_config, **overrides):
    defaults = dict(
        name="job",
        cost_model=pp2_cost_model,
        samples=fleet_samples,
        global_batch_tokens=4096,
        parallel=ParallelConfig(1, 2, 1),
        num_iterations=3,
        planner_config=planner_config,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestShrinkRepairRegrow:
    """The issue's acceptance scenario: fail → shrink → repair → regrow."""

    @pytest.fixture(scope="class")
    def regrown_fleet(self, pp2_cost_model, fleet_samples, planner_config, small_device):
        """A dp2 job on a 4-GPU cluster: device 1 dies mid-iteration (the
        job shrinks to dp1), is repaired 30 ms later, and the job regrows
        to the requested dp2 gang at the next checkpoint boundary."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology, FleetConfig(repair_delay_ms=30.0))
        spec = make_spec(
            pp2_cost_model,
            fleet_samples,
            planner_config,
            name="elastic",
            parallel=ParallelConfig(2, 2, 1),
            num_iterations=6,
        )
        record = scheduler.submit(spec)
        scheduler.inject_device_failure(2.0, 1)
        report = scheduler.run()
        return scheduler, record, report

    def test_attempt_sequence_shrinks_then_regrows(self, regrown_fleet):
        _, record, report = regrown_fleet
        assert report.jobs[0].state == JobState.FINISHED
        assert [a.outcome for a in record.attempts] == [
            "device_failure",
            "regrown",
            "finished",
        ]
        assert [a.data_parallel for a in record.attempts] == [2, 1, 2]
        assert record.regrows == 1
        assert record.preemptions == 1
        assert record.retries == 1  # only the device failure spent budget
        assert report.jobs[0].regrows == 1

    def test_regrowth_happens_at_a_checkpoint_boundary(self, regrown_fleet):
        _, record, _ = regrown_fleet
        shrunk, regrown = record.attempts[1], record.attempts[2]
        # The regrown attempt resumes exactly where the shrunk one stopped
        # committing — nothing is discarded by a graceful regrowth...
        assert regrown.start_iteration == shrunk.start_iteration + shrunk.iterations_completed
        assert regrown.admitted_ms == shrunk.ended_ms
        # ...and only after the repair returned the dead device.
        repair = next(e for e in regrown_fleet[2].capacity_timeline if e.event == "repair")
        assert repair.device == 1
        assert repair.time_ms == pytest.approx(32.0)
        assert regrown.admitted_ms >= repair.time_ms

    def test_regrown_records_match_boundary_restarted_standalone_run(self, regrown_fleet):
        _, record, _ = regrown_fleet
        shrunk, regrown = record.attempts[1], record.attempts[2]
        assert_records_identical(
            record.checkpoint.records[shrunk.start_iteration : regrown.start_iteration],
            standalone_records(record.spec, 1, start_iteration=shrunk.start_iteration)[
                : regrown.start_iteration - shrunk.start_iteration
            ],
        )
        assert_records_identical(
            record.checkpoint.records[regrown.start_iteration :],
            standalone_records(record.spec, 2, start_iteration=regrown.start_iteration),
        )

    def test_no_device_leaked_and_repair_cleared_failure(self, regrown_fleet):
        scheduler, _, report = regrown_fleet
        scheduler.allocator.check_consistent()
        assert scheduler.allocator.busy_count == 0
        assert scheduler.allocator.free_count == 4
        assert report.failed_devices == []  # repaired before the end
        assert report.devices_repaired == 1

    def test_dead_time_excluded_from_utilization_denominator(self, regrown_fleet):
        _, _, report = regrown_fleet
        # Device 1 was dead from its failure (t=2) to its repair (t=32).
        assert report.dead_device_ms == pytest.approx(30.0)
        capacity = report.num_devices * report.makespan_ms - 30.0
        assert report.available_device_ms == pytest.approx(capacity)
        assert report.device_utilization == pytest.approx(report.busy_device_ms / capacity)


class TestRepairAdmission:
    def test_repair_admits_queued_job_at_the_repair_timestamp(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """Regression: a repair arriving while the free pool is empty and a
        job is queued admits the job at the repair timestamp — not at the
        next unrelated event (here the long job's completion at ~150 ms)."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        long_job = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="long", global_batch_tokens=32768, num_iterations=2,
            )
        )
        queued = scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="queued", submit_time_ms=5.0, num_iterations=2, seed=1,
            )
        )
        # Devices 2 and 3 die while idle: the free pool is now empty (the
        # long job holds 0 and 1), so the queued job must wait...
        scheduler.inject_device_failure(1.0, 2)
        scheduler.inject_device_failure(1.0, 3)
        # ...until both repairs land, well before the long job finishes.
        scheduler.inject_device_repair(50.0, 2)
        scheduler.inject_device_repair(50.0, 3)
        report = scheduler.run()
        assert report.finished_jobs == 2
        assert queued.first_admitted_ms == pytest.approx(50.0)
        assert queued.attempts[0].devices == (2, 3)
        # The long job's first completion — the "next unrelated event" the
        # old permanent-failure loop would have waited for — is far later.
        first_completion = long_job.checkpoint.records[0].measured_ms
        assert first_completion > 60.0
        assert report.devices_repaired == 2

    def test_auto_repair_cannot_revive_a_newer_failure(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """Regression: an auto-repair belongs to the failure that scheduled
        it.  A device that fails, is repaired early (explicit injection),
        and fails again must wait out the *second* failure's full delay —
        the first failure's stale auto-repair (due earlier) must not revive
        it."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology, FleetConfig(repair_delay_ms=100.0))
        scheduler.submit(
            make_spec(
                pp2_cost_model, fleet_samples, planner_config,
                name="long", global_batch_tokens=32768, num_iterations=2,
            )
        )
        scheduler.inject_device_failure(10.0, 3)   # auto-repair due at 110
        scheduler.inject_device_repair(20.0, 3)    # early manual repair
        scheduler.inject_device_failure(30.0, 3)   # auto-repair due at 130
        report = scheduler.run()
        assert report.finished_jobs == 1
        events = [(e.time_ms, e.event) for e in report.capacity_timeline]
        assert events == [
            (10.0, "failure"),
            (20.0, "repair"),
            (30.0, "failure"),
            (130.0, "repair"),  # not 110: the stale auto-repair is dead
        ]
        assert report.dead_device_ms == pytest.approx(10.0 + 100.0)
        scheduler.allocator.check_consistent()

    def test_stale_repair_for_alive_device_is_a_noop(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(2, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        scheduler.submit(
            make_spec(pp2_cost_model, fleet_samples, planner_config, num_iterations=1)
        )
        scheduler.inject_device_repair(1.0, 0)  # device 0 never fails
        report = scheduler.run()
        assert report.finished_jobs == 1
        assert report.devices_repaired == 0
        assert report.capacity_timeline == []
        assert report.dead_device_ms == 0.0
        scheduler.allocator.check_consistent()


class TestLateArrivals:
    def test_job_starts_shrunk_and_regrows_when_devices_arrive(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """Half the cluster arrives at t=30: an elastic dp2 job starts on
        the two devices present, then regrows to its requested gang at the
        first checkpoint boundary after the arrival."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        record = scheduler.submit(
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                name="grower",
                parallel=ParallelConfig(2, 2, 1),
                num_iterations=6,
            )
        )
        scheduler.inject_device_arrival(30.0, 2)
        scheduler.inject_device_arrival(30.0, 3)
        report = scheduler.run()
        assert report.jobs[0].state == JobState.FINISHED
        assert [a.outcome for a in record.attempts] == ["regrown", "finished"]
        assert [a.data_parallel for a in record.attempts] == [1, 2]
        assert record.regrows == 1
        assert record.retries == 0  # regrowth is graceful: no budget spent
        assert record.queueing_delay_ms == pytest.approx(0.0)
        assert record.attempts[1].admitted_ms >= 30.0
        assert len(record.attempts[1].devices) == 4
        # Devices 2 and 3 were dead (absent) from t=0 to t=30 each.
        assert report.dead_device_ms == pytest.approx(60.0)
        assert report.devices_arrived == 2
        assert report.absent_devices == []
        scheduler.allocator.check_consistent()

    def test_nonelastic_job_waits_for_scheduled_arrivals(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """A rigid job that cannot fit the devices present at t=0 is *not*
        unschedulable while arrivals are pending — it is admitted at the
        arrival timestamp on its full requested gang."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        record = scheduler.submit(
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                name="rigid",
                parallel=ParallelConfig(2, 2, 1),
                elastic=False,
                num_iterations=2,
            )
        )
        scheduler.inject_device_arrival(20.0, 2)
        scheduler.inject_device_arrival(20.0, 3)
        report = scheduler.run()
        assert report.jobs[0].state == JobState.FINISHED
        assert record.first_admitted_ms == pytest.approx(20.0)
        assert record.attempts[0].data_parallel == 2

    def test_duplicate_arrival_rejected(self, small_device):
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        scheduler.inject_device_arrival(5.0, 3)
        with pytest.raises(ValueError, match="already has a scheduled arrival"):
            scheduler.inject_device_arrival(9.0, 3)

    def test_unschedulable_once_no_capacity_events_remain(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        """An arrival that still leaves the rigid job short fires, is
        accounted, and only then is the job declared unschedulable."""
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        record = scheduler.submit(
            make_spec(
                pp2_cost_model,
                fleet_samples,
                planner_config,
                name="rigid",
                parallel=ParallelConfig(2, 2, 1),
                elastic=False,
            )
        )
        scheduler.inject_device_failure(0.0, 0)
        scheduler.inject_device_failure(0.0, 1)
        scheduler.inject_device_arrival(10.0, 3)  # not enough: 3 alive max
        # Wait: device 3 is present from t=0 unless an arrival is injected;
        # here 3 is absent until t=10, so alive is 1 until then, 2 after —
        # never the 4 the rigid job needs once 0 and 1 died.
        report = scheduler.run()
        assert report.jobs[0].state == JobState.FAILED
        assert "unschedulable" in record.failure_reason
        assert record.finished_ms >= 10.0  # verdict waited for the arrival
        assert report.devices_arrived == 1


class TestUtilizationAccounting:
    def test_dead_time_reduces_the_denominator(self):
        report = FleetReport(
            policy="fifo",
            jobs=[],
            makespan_ms=100.0,
            busy_device_ms=100.0,
            num_devices=2,
            dead_device_ms=50.0,
        )
        assert report.available_device_ms == pytest.approx(150.0)
        assert report.device_utilization == pytest.approx(100.0 / 150.0)

    def test_permanent_failure_counts_dead_until_run_end(
        self, pp2_cost_model, fleet_samples, planner_config, small_device
    ):
        topology = ClusterTopology.for_num_gpus(4, device_spec=small_device)
        scheduler = FleetScheduler(topology)
        scheduler.submit(
            make_spec(pp2_cost_model, fleet_samples, planner_config, num_iterations=2)
        )
        scheduler.inject_device_failure(1.0, 3)  # idle device, never repaired
        report = scheduler.run()
        assert report.failed_devices == [3]
        assert report.dead_device_ms == pytest.approx(report.makespan_ms - 1.0)
        assert report.device_utilization == pytest.approx(
            report.busy_device_ms
            / (4 * report.makespan_ms - report.dead_device_ms)
        )

    def test_zero_capacity_guard(self):
        report = FleetReport(
            policy="fifo", jobs=[], makespan_ms=0.0, busy_device_ms=0.0, num_devices=2
        )
        assert report.device_utilization == 0.0
