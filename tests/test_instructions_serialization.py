"""Exhaustive (de)serialisation coverage for the instruction ISA.

The backend layer ships instruction streams across process boundaries as
plain dictionaries (``repro.backends.local`` pickles the dict form into
worker configs, the checkpoint store persists it as JSON), so every
:class:`~repro.instructions.ops.InstructionKind` must round-trip exactly —
including the ``CommDirection`` every comm op derives from its kind rather
than storing.  This file is the single place that enumerates the full ISA;
it fails if a new kind is added without serialisation support.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

import strategies_instructions
from repro.instructions.ops import (
    INSTRUCTION_CLASSES,
    BackwardPass,
    CommDirection,
    ForwardPass,
    InstructionKind,
    _CommStart,
    _CommWait,
)
from repro.instructions.serialization import (
    instruction_from_dict,
    instruction_signature,
    instruction_to_dict,
    instructions_from_dicts,
    instructions_to_dicts,
)
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape
from repro.simulator.executor import _transfer_key_for_start, _transfer_key_for_wait

SHAPE = MicroBatchShape(batch_size=2, enc_seq_len=128, dec_seq_len=32)
ENC_ONLY_SHAPE = MicroBatchShape(batch_size=1, enc_seq_len=64)


def make_instruction(kind: InstructionKind, **overrides):
    """A representative instance of the given kind."""
    cls = INSTRUCTION_CLASSES[kind]
    common = dict(microbatch=overrides.pop("microbatch", 2), stage=overrides.pop("stage", 1))
    if kind in (InstructionKind.FORWARD, InstructionKind.BACKWARD):
        return cls(
            shape=overrides.pop("shape", SHAPE),
            recompute=overrides.pop("recompute", RecomputeMode.NONE),
            **common,
        )
    if issubclass(cls, _CommStart):
        return cls(peer=overrides.pop("peer", 0), nbytes=overrides.pop("nbytes", 512.0), **common)
    return cls(peer=overrides.pop("peer", 0), **common)


class TestEveryKindRoundTrips:
    """One round-trip test per InstructionKind, enumerated from the class
    map itself so new kinds cannot silently skip serialisation coverage."""

    def test_class_map_covers_every_kind(self):
        assert set(INSTRUCTION_CLASSES) == set(InstructionKind)

    @pytest.mark.parametrize("kind", list(InstructionKind), ids=lambda k: k.value)
    def test_roundtrip_identity(self, kind):
        instr = make_instruction(kind)
        restored = instruction_from_dict(instruction_to_dict(instr))
        assert restored == instr
        assert type(restored) is type(instr)
        assert restored.kind is kind

    @pytest.mark.parametrize("kind", list(InstructionKind), ids=lambda k: k.value)
    def test_roundtrip_through_json(self, kind):
        instr = make_instruction(kind)
        payload = json.loads(json.dumps(instruction_to_dict(instr)))
        assert instruction_from_dict(payload) == instr

    @pytest.mark.parametrize("kind", list(InstructionKind), ids=lambda k: k.value)
    def test_signature_survives_roundtrip(self, kind):
        instr = make_instruction(kind)
        restored = instruction_from_dict(instruction_to_dict(instr))
        assert instruction_signature(restored) == instruction_signature(instr)
        sig = instruction_signature(instr)
        assert sig[0] == kind.value
        expected_peer = instr.peer if hasattr(instr, "peer") else -1
        assert sig == (kind.value, instr.microbatch, instr.stage, expected_peer)


class TestCommDirectionEdgeCases:
    """Direction is *derived* from the kind, never stored — the wire format
    must stay unambiguous anyway."""

    DIRECTED_KINDS = {
        InstructionKind.SEND_ACT_START: CommDirection.ACTIVATION,
        InstructionKind.RECV_ACT_START: CommDirection.ACTIVATION,
        InstructionKind.SEND_GRAD_START: CommDirection.GRADIENT,
        InstructionKind.RECV_GRAD_START: CommDirection.GRADIENT,
    }

    @pytest.mark.parametrize("kind,direction", DIRECTED_KINDS.items(), ids=lambda x: str(x))
    def test_direction_restored_from_kind(self, kind, direction):
        payload = instruction_to_dict(make_instruction(kind))
        assert "direction" not in payload  # derived, not serialised
        assert instruction_from_dict(payload).direction is direction

    def test_transfer_keys_survive_roundtrip(self):
        """Both ends of a transfer map to the same key after a round-trip —
        the property channel matching (sim and local backends) relies on."""
        send = make_instruction(InstructionKind.SEND_ACT_START, stage=0, peer=1)
        recv = make_instruction(InstructionKind.RECV_ACT_START, stage=1, peer=0)
        send_rt = instruction_from_dict(instruction_to_dict(send))
        recv_rt = instruction_from_dict(instruction_to_dict(recv))
        assert _transfer_key_for_start(send_rt) == _transfer_key_for_start(recv_rt)
        assert _transfer_key_for_start(send_rt) == _transfer_key_for_start(send)

    def test_wait_keys_survive_roundtrip(self):
        """Wait ops recover the direction of the transfer they guard."""
        for kind in (
            InstructionKind.WAIT_SEND_ACT,
            InstructionKind.WAIT_RECV_ACT,
            InstructionKind.WAIT_SEND_GRAD,
            InstructionKind.WAIT_RECV_GRAD,
        ):
            wait = make_instruction(kind)
            wait_rt = instruction_from_dict(instruction_to_dict(wait))
            assert isinstance(wait_rt, _CommWait)
            assert _transfer_key_for_wait(wait_rt) == _transfer_key_for_wait(wait)

    def test_activation_and_gradient_keys_distinct(self):
        """Same (devices, microbatch) but opposite directions must not
        collide — the direction component is what keeps a stage's forward
        and backward traffic to the same neighbour apart."""
        act = make_instruction(InstructionKind.SEND_ACT_START, stage=0, peer=1)
        grad = make_instruction(InstructionKind.RECV_GRAD_START, stage=0, peer=1)
        assert _transfer_key_for_start(act) != _transfer_key_for_start(grad)


class TestFieldEdgeCases:
    @pytest.mark.parametrize("mode", list(RecomputeMode), ids=lambda m: m.value)
    def test_every_recompute_mode(self, mode):
        instr = BackwardPass(microbatch=0, stage=3, shape=SHAPE, recompute=mode)
        restored = instruction_from_dict(instruction_to_dict(instr))
        assert restored.recompute is mode

    def test_recompute_defaults_to_none_when_absent(self):
        payload = instruction_to_dict(ForwardPass(microbatch=0, stage=0, shape=SHAPE))
        del payload["recompute"]
        assert instruction_from_dict(payload).recompute is RecomputeMode.NONE

    def test_encoder_only_shape(self):
        instr = ForwardPass(microbatch=0, stage=0, shape=ENC_ONLY_SHAPE)
        restored = instruction_from_dict(instruction_to_dict(instr))
        assert restored.shape == ENC_ONLY_SHAPE
        assert restored.shape.dec_seq_len == ENC_ONLY_SHAPE.dec_seq_len

    def test_zero_byte_transfer(self):
        instr = make_instruction(InstructionKind.SEND_GRAD_START, nbytes=0.0)
        restored = instruction_from_dict(instruction_to_dict(instr))
        assert restored.nbytes == 0.0

    def test_fractional_nbytes_preserved(self):
        instr = make_instruction(InstructionKind.RECV_ACT_START, nbytes=1536.5)
        assert instruction_from_dict(instruction_to_dict(instr)).nbytes == 1536.5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            instruction_from_dict({"kind": "collective_allreduce", "microbatch": 0, "stage": 0})


class TestStreamRoundTrips:
    """Whole planner-produced streams survive the wire format — the exact
    path worker configs take into local-backend processes."""

    @given(strategies_instructions.planned_streams())
    @settings(max_examples=25, deadline=None)
    def test_planned_streams_roundtrip(self, streams):
        for stream in streams:
            payloads = json.loads(json.dumps(instructions_to_dicts(stream)))
            assert instructions_from_dicts(payloads) == list(stream)

    @given(strategies_instructions.naive_streams())
    @settings(max_examples=10, deadline=None)
    def test_naive_streams_roundtrip(self, streams):
        for stream in streams:
            restored = instructions_from_dicts(instructions_to_dicts(stream))
            assert [instruction_signature(i) for i in restored] == [
                instruction_signature(i) for i in stream
            ]
