"""Overlapping planning with execution (paper §3 / Fig. 9 / Fig. 17).

DynaPipe's per-iteration planning takes a noticeable fraction of a second to
seconds of CPU time.  The paper hides that cost by running planners on CPU
cores concurrently with GPU execution and pushing plans to a distributed
instruction store ahead of time.  This example runs the same architecture:
a pool of planner worker *processes* (each rebuilt from the serialized cost
model, planning on real CPU cores) plans several iterations ahead while the
executor service consumes plans from the store, and the report shows how
much of the planning time was actually exposed as executor stalls.

Run with:  python examples/overlapped_planning.py
"""

from __future__ import annotations

from repro import (
    CostModel,
    DynaPipePlanner,
    PlannerConfig,
    SyntheticFlanDataset,
    TrainingOrchestrator,
    get_model_config,
)
from repro.data.truncation import truncate_samples

MAX_SEQ_LEN = 2048
GLOBAL_BATCH_TOKENS = 32768
NUM_ITERATIONS = 4


def main() -> None:
    model = get_model_config("gpt", num_gpus=4)
    cost_model = CostModel(model, num_stages=4, max_profile_seq_len=MAX_SEQ_LEN)
    planner = DynaPipePlanner(cost_model, config=PlannerConfig(tmax_sample_count=16))

    dataset = SyntheticFlanDataset(num_samples=6_000, seed=5)
    samples = truncate_samples(dataset.samples, MAX_SEQ_LEN, decoder_only=True)

    print(f"running {NUM_ITERATIONS} iterations of {model.name} with overlapped planning...")
    orchestrator = TrainingOrchestrator(
        planner,
        cost_model,
        samples,
        global_batch_tokens=GLOBAL_BATCH_TOKENS,
        num_iterations=NUM_ITERATIONS,
        planner_workers=2,
        lookahead=3,
        noise_std=0.05,
        seed=0,
    )
    report = orchestrator.run()

    print("\n--- planner/executor overlap report ---")
    print(f"iterations executed:         {report.iterations}")
    print(f"total planning time:         {report.total_planning_s:.2f} s "
          f"(mean {report.mean_planning_s:.2f} s per iteration)")
    print(f"planning exposed as stalls:  {report.exposed_stall_s:.2f} s")
    print(f"planning hidden by overlap:  {report.overlap_fraction:.0%}")
    print(f"simulated execution time:    {report.total_simulated_ms / 1e3:.2f} s")
    print("\nPer-iteration executor statistics:")
    for stats in orchestrator.executor.stats:
        print(
            f"  iteration {stats.iteration}: waited {stats.stall_s * 1e3:6.1f} ms for the plan, "
            f"executed in {stats.simulated_ms:7.1f} simulated ms, "
            f"peak memory {stats.peak_memory_bytes / 1024**3:.1f} GiB"
        )


if __name__ == "__main__":
    main()
