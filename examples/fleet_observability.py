"""Unified telemetry: metrics, lifecycle events, spans and the merged trace.

One seeded chaos fleet run (failure storm + rack outage over 8 GPUs) with
telemetry enabled end to end, demonstrating every layer of the
observability subsystem:

* the **metrics registry** — fleet/planner/simulator counters, the
  iteration-duration histogram and the alive-devices gauge, printed as a
  snapshot summary after the run;
* the **event bus** — structured lifecycle events on the simulated fleet
  clock (submissions, admissions, preemptions, repairs, regrowths,
  committed iterations), exported as JSON-lines;
* **span tracing** — ``job.step > plan > order_search`` / ``execute``
  nesting from the planning and execution hot paths, exported as
  JSON-lines;
* the **merged chrome trace** — fleet occupancy, capacity and lifecycle
  tracks, per-job simulated op timelines shifted onto the fleet clock, and
  wall-clock planner spans, all in one file.  Open it at
  https://ui.perfetto.dev (or chrome://tracing).

Run with:  python examples/fleet_observability.py

It prints the metrics snapshot and event/span tallies, and writes
``fleet_merged_trace.json``, ``fleet_events.jsonl`` and
``fleet_spans.jsonl`` next to this script.
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    ClusterTopology,
    CostModel,
    FleetConfig,
    FleetScheduler,
    ParallelConfig,
    PlannerConfig,
    SyntheticFlanDataset,
)
from repro import obs
from repro.cluster.device import DeviceSpec
from repro.data.truncation import truncate_samples
from repro.fleet import FaultInjector, JobSpec, failure_storm, rack_outage
from repro.model.config import ModelArch, ModelConfig

MAX_SEQ_LEN = 512
CLUSTER_GPUS = 8
GPUS_PER_NODE = 4
NUM_JOBS = 6

MODEL = ModelConfig(
    name="gpt-obs-demo",
    arch=ModelArch.GPT,
    num_layers=4,
    hidden_size=512,
    num_heads=8,
    kv_channels=64,
    ffn_hidden_size=2048,
    vocab_size=32000,
)

DEVICE = DeviceSpec(
    name="demo-gpu-8GB",
    peak_flops=100e12,
    memory_bandwidth=1e12,
    memory_capacity=8 * 1024**3,
)


def build_scheduler() -> FleetScheduler:
    cost_model = CostModel(
        MODEL,
        num_stages=2,
        device_spec=DEVICE,
        max_profile_batch_size=32,
        max_profile_seq_len=1024,
    )
    samples = truncate_samples(
        SyntheticFlanDataset(num_samples=400, seed=7).samples,
        MAX_SEQ_LEN,
        decoder_only=True,
    )
    planner_config = PlannerConfig(order_search=True, tmax_sample_count=8)
    topology = ClusterTopology.for_num_gpus(
        CLUSTER_GPUS, gpus_per_node=GPUS_PER_NODE, device_spec=DEVICE
    )
    scheduler = FleetScheduler(topology, FleetConfig())
    for index in range(NUM_JOBS):
        scheduler.submit(
            JobSpec(
                name=f"job{index:02d}",
                cost_model=cost_model,
                samples=samples,
                global_batch_tokens=4096,
                parallel=ParallelConfig(1, 2, 1),
                num_iterations=2,
                planner_config=planner_config,
                seed=index,
                max_retries=4,
            )
        )
    plan = failure_storm(
        CLUSTER_GPUS, seed=17, start_ms=5.0, duration_ms=60.0,
        rate_per_s=60.0, repair_after_ms=12.0,
    ).merge(rack_outage(node=1, time_ms=30.0, repair_after_ms=15.0))
    FaultInjector(plan).apply(scheduler)
    return scheduler


def print_metrics_snapshot() -> None:
    snapshot = obs.REGISTRY.snapshot()
    print("\nmetrics snapshot")
    print("----------------")
    for key in sorted(snapshot["counters"]):
        value = snapshot["counters"][key]
        if value:
            print(f"  {key:42} {value}")
    for key in sorted(snapshot["gauges"]):
        print(f"  {key:42} {snapshot['gauges'][key]:g}")
    for key in sorted(snapshot["histograms"]):
        hist = snapshot["histograms"][key]
        if hist["count"]:
            print(
                f"  {key:42} n={hist['count']} mean={hist['mean']:.2f} "
                f"min={hist['min']:.2f} max={hist['max']:.2f}"
            )


def main() -> None:
    out_dir = Path(__file__).parent
    obs.reset()
    obs.enable()

    print(f"profiling {MODEL.name} and seeding the chaos fleet...")
    scheduler = build_scheduler()
    print(f"running {NUM_JOBS} jobs on {CLUSTER_GPUS} GPUs with telemetry on...")
    report = scheduler.run()
    summary = report.summary()
    print(
        f"done: finished {summary['finished']}/{summary['jobs']} jobs, "
        f"makespan {summary['makespan_ms']:.1f} ms, "
        f"preemptions {summary['total_preemptions']}, "
        f"repairs {summary['devices_repaired']}, "
        f"utilization {summary['device_utilization']:.1%}"
    )

    print_metrics_snapshot()

    events = obs.events()
    spans = obs.RECORDER.spans()
    kinds = sorted({event.kind for event in events})
    print(f"\n{len(events)} lifecycle events ({', '.join(kinds)})")
    print(f"{len(spans)} spans ({', '.join(sorted({span.name for span in spans}))})")

    merged_path = report.save_merged_trace(out_dir / "fleet_merged_trace.json")
    events_path = obs.BUS.export_jsonl(out_dir / "fleet_events.jsonl")
    spans_path = obs.spans_to_jsonl(out_dir / "fleet_spans.jsonl", spans)
    print(f"\nmerged chrome trace -> {merged_path}  (open in https://ui.perfetto.dev)")
    print(f"lifecycle events    -> {events_path}")
    print(f"planning spans      -> {spans_path}")

    obs.reset()
    obs.disable()


if __name__ == "__main__":
    main()
