"""Deep dive into one planning decision: T5, hybrid data + pipeline parallel.

The paper's planner makes four coupled decisions per iteration; this example
makes each of them visible on a single T5 mini-batch:

1. **Sample ordering** — compare the adjacent-length path of the raw
   sampling order, the sorted order, and the TSP-heuristic order.
2. **DP micro-batch construction** — show the chosen partition, the t_max
   that won, and how the Eq. 1 objective compares against token-based
   micro-batching.
3. **Replica balancing** — distribute the micro-batches over data-parallel
   replicas with Karmarkar–Karp and report the load imbalance.
4. **Dynamic recomputation** — show which recomputation mode the planner
   selects as the device memory budget shrinks.

Run with:  python examples/planner_deep_dive.py
"""

from __future__ import annotations

from repro.batching.token_based import TokenBasedBatching
from repro.core.adaptive_schedule import AdaptiveScheduler
from repro.core.microbatch import DynamicMicroBatcher
from repro.core.ordering import OrderingMethod, order_samples, path_length
from repro.core.recomputation import OutOfMemoryError, select_recompute_mode
from repro.core.replica_balance import karmarkar_karp_partition
from repro.costmodel.cost_model import CostModel
from repro.data.flan import SyntheticFlanDataset
from repro.data.sampler import MiniBatchSampler
from repro.data.truncation import truncate_samples
from repro.model.config import get_model_config

MAX_SEQ_LEN = 2048
GLOBAL_BATCH_TOKENS = 32768
DATA_PARALLEL = 2


def main() -> None:
    model = get_model_config("t5", num_gpus=8)
    cost_model = CostModel(
        model, num_stages=4, tensor_parallel=2, max_profile_seq_len=MAX_SEQ_LEN
    )
    dataset = SyntheticFlanDataset(num_samples=5_000, seed=3)
    samples = truncate_samples(dataset.samples, MAX_SEQ_LEN, decoder_only=False)
    minibatch = next(iter(MiniBatchSampler(samples, GLOBAL_BATCH_TOKENS, seed=0))).samples
    print(f"mini-batch: {len(minibatch)} samples / {sum(s.total_tokens for s in minibatch)} tokens")

    # 1. Sample ordering.
    print("\n--- 1. sample ordering (sum of adjacent length distances, lower is better) ---")
    for method in (OrderingMethod.NONE, OrderingMethod.SORT, OrderingMethod.TSP):
        ordered = order_samples(minibatch, method)
        print(f"  {method.value:5s}: path length {path_length(ordered):10.0f}")

    # 2. DP micro-batch construction vs token-based batching.  Selective
    # recomputation is assumed so that the longest single samples respect the
    # per-micro-batch memory limit (the planner's dynamic recomputation would
    # reach the same choice for this model/memory combination).
    print("\n--- 2. micro-batch construction ---")
    from repro.model.memory import RecomputeMode

    batcher = DynamicMicroBatcher(
        cost_model,
        sum_weight=1.0 / DATA_PARALLEL,
        tmax_sample_count=16,
        recompute=RecomputeMode.SELECTIVE,
    )
    result = batcher.split(minibatch)
    solution = batcher.last_solution
    assert solution is not None
    shapes = [mb.shape() for mb in result.micro_batches]
    print(f"  DP chose {len(shapes)} micro-batches (t_max = {solution.tmax_used:.1f} ms, "
          f"{solution.cost_evaluations} cost-model queries)")
    for index, (mb, time) in enumerate(zip(result.micro_batches, solution.times)):
        shape = mb.shape()
        print(f"    micro-batch {index:2d}: {shape.batch_size:3d} x ({shape.enc_seq_len:4d} enc, "
              f"{shape.dec_seq_len:4d} dec)  t={time:6.1f} ms")
    dp_objective = cost_model.iteration_time_ms(shapes)
    token_based = TokenBasedBatching(8192).split(minibatch)
    tb_objective = cost_model.iteration_time_ms([mb.shape() for mb in token_based.micro_batches])
    print(f"  Eq.1 iteration-time estimate: DP {dp_objective:.0f} ms vs token-based {tb_objective:.0f} ms")

    # 3. Replica balancing.
    print("\n--- 3. data-parallel replica balancing (Karmarkar-Karp) ---")
    times = [cost_model.microbatch_time_ms(shape) for shape in shapes]
    assignment = karmarkar_karp_partition(times, DATA_PARALLEL)
    for replica, (group, load) in enumerate(zip(assignment.groups, assignment.sums)):
        print(f"  replica {replica}: micro-batches {group} -> {load:.1f} ms")
    print(f"  imbalance: {assignment.imbalance:.1f} ms "
          f"({100 * assignment.imbalance / assignment.makespan:.1f}% of the slowest replica)")

    # 4. Dynamic recomputation under shrinking memory budgets.
    print("\n--- 4. dynamic recomputation ---")
    static = max(cost_model.stage_static_bytes(j) for j in range(cost_model.num_stages))
    for headroom_gib in (16.0, 4.0, 1.0, 0.25):
        budget = static + headroom_gib * 1024**3
        scheduler = AdaptiveScheduler(cost_model, device_memory_bytes=budget)
        try:
            decision = select_recompute_mode(scheduler, shapes)
            print(f"  activation headroom {headroom_gib:5.2f} GiB -> {decision.mode.value:9s} "
                  f"(makespan {decision.simulation.makespan_ms:.0f} ms)")
        except OutOfMemoryError:
            print(f"  activation headroom {headroom_gib:5.2f} GiB -> out of memory (iteration cannot run)")


if __name__ == "__main__":
    main()
