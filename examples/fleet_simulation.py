"""Fleet simulation: many training jobs sharing one dynamic cluster.

The single-job runtime (planner pool + executor service) is the substrate;
this example runs a *fleet* on top of it: six jobs with different gang
shapes, epoch lengths and priorities are gang-scheduled onto an 8-GPU
cluster under the preemptive-priority policy, and the cluster itself is
dynamic —

* two devices fail mid-run and are **repaired** 25 ms later;
* two devices are absent at the start and **arrive** late;
* a high-priority job lands mid-run and **evicts** a running low-priority
  gang at its next iteration boundary (the in-flight iteration commits
  first — graceful preemption, not a failure);
* jobs that shrank their data-parallel degree after a failure **regrow**
  toward the requested gang at a checkpoint boundary once capacity
  returns.

Run with:  python examples/fleet_simulation.py

It prints the per-job outcomes, the capacity timeline and fleet metrics,
and writes a ``chrome://tracing`` timeline of cluster occupancy next to
this script.
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    ClusterTopology,
    CostModel,
    FleetConfig,
    FleetScheduler,
    JobSpec,
    ParallelConfig,
    PlannerConfig,
    SyntheticFlanDataset,
)
from repro.cluster.device import DeviceSpec
from repro.data.truncation import truncate_samples
from repro.model.config import ModelArch, ModelConfig

MAX_SEQ_LEN = 512
CLUSTER_GPUS = 8

MODEL = ModelConfig(
    name="gpt-fleet-demo",
    arch=ModelArch.GPT,
    num_layers=4,
    hidden_size=512,
    num_heads=8,
    kv_channels=64,
    ffn_hidden_size=2048,
    vocab_size=32000,
)

DEVICE = DeviceSpec(
    name="demo-gpu-8GB",
    peak_flops=100e12,
    memory_bandwidth=1e12,
    memory_capacity=8 * 1024**3,
)


def main() -> None:
    print(f"profiling {MODEL.name} for the shared cost model...")
    cost_model = CostModel(
        MODEL,
        num_stages=2,
        device_spec=DEVICE,
        max_profile_batch_size=32,
        max_profile_seq_len=1024,
    )
    samples = truncate_samples(
        SyntheticFlanDataset(num_samples=600, seed=11).samples,
        MAX_SEQ_LEN,
        decoder_only=True,
    )
    planner_config = PlannerConfig(order_search=False, tmax_sample_count=8)

    topology = ClusterTopology.for_num_gpus(CLUSTER_GPUS, device_spec=DEVICE)
    scheduler = FleetScheduler(
        topology, FleetConfig(policy="priority", repair_delay_ms=25.0)
    )
    #                name       shape                 iters  priority  submit
    job_table = [
        ("wide-a",   ParallelConfig(2, 2, 1), 5,     0,        0.0),
        ("narrow-a", ParallelConfig(1, 2, 1), 3,     0,       45.0),
        ("narrow-b", ParallelConfig(1, 2, 1), 2,     0,       45.0),
        ("wide-b",   ParallelConfig(2, 2, 1), 3,     0,       45.0),
        ("narrow-c", ParallelConfig(1, 2, 1), 4,     0,       45.0),
        ("urgent",   ParallelConfig(2, 2, 1), 2,     5,       55.0),
    ]
    for index, (name, shape, iterations, priority, submit_ms) in enumerate(job_table):
        scheduler.submit(
            JobSpec(
                name=name,
                cost_model=cost_model,
                samples=samples,
                global_batch_tokens=8192 if shape.data_parallel > 1 else 4096,
                parallel=shape,
                num_iterations=iterations,
                planner_config=planner_config,
                seed=index,
                priority=priority,
                submit_time_ms=submit_ms,
            )
        )
    # Devices 5-7 join the cluster late (only 5 devices at t=0); 0 and 1
    # die mid-run — shrinking the alive set below a dp2 gang, so the wide
    # job re-plans on dp1 — and are auto-repaired 25 ms later
    # (FleetConfig.repair_delay_ms), letting it regrow at a boundary.
    scheduler.inject_device_arrival(20.0, 5)
    scheduler.inject_device_arrival(20.0, 6)
    scheduler.inject_device_arrival(20.0, 7)
    scheduler.inject_device_failure(8.0, 0)
    scheduler.inject_device_failure(9.0, 1)

    print(
        f"running {len(job_table)} jobs on {CLUSTER_GPUS} GPUs "
        "(3 late arrivals, 2 failures + repairs, 1 priority arrival)...\n"
    )
    report = scheduler.run()

    header = (
        f"{'job':10} {'state':9} {'shape':10} {'iters':>5} {'attempts':>8} "
        f"{'queue ms':>9} {'preempt':>7} {'evict':>5} {'regrow':>6}"
    )
    print(header)
    print("-" * len(header))
    for job in report.jobs:
        queue = f"{job.queueing_delay_ms:9.1f}" if job.queueing_delay_ms is not None else "        -"
        print(
            f"{job.name:10} {job.state:9} {job.parallel:10} "
            f"{job.iterations_completed:5d} {job.attempts:8d} {queue} "
            f"{job.preemptions:7d} {job.evictions:5d} {job.regrows:6d}"
        )

    print("\ncapacity timeline (alive devices after each event):")
    for event in report.capacity_timeline:
        print(
            f"  t={event.time_ms:7.1f} ms  {event.event:8}  device {event.device}  "
            f"-> {event.alive_count} alive"
        )

    summary = report.summary()
    print(
        f"\nmakespan {summary['makespan_ms']:.1f} ms | "
        f"utilization {summary['device_utilization']:.1%} "
        f"(dead {summary['dead_device_ms']:.0f} device-ms excluded) | "
        f"mean queueing delay {summary['mean_queueing_delay_ms']:.1f} ms | "
        f"retries {summary['total_retries']} | evictions {summary['total_evictions']} | "
        f"regrows {summary['total_regrows']}"
    )

    trace_path = Path(__file__).parent / "fleet_trace.json"
    report.save_chrome_trace(trace_path)
    print(f"\ncluster-occupancy timeline written to {trace_path}")
    print("open chrome://tracing (or https://ui.perfetto.dev) and load it to see")
    print("gang placement, the eviction and the elastic shrink/regrow cycles.")


if __name__ == "__main__":
    main()
