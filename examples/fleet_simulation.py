"""Fleet simulation: many training jobs sharing one simulated cluster.

The single-job runtime (planner pool + executor service) is the substrate;
this example runs a *fleet* on top of it: six jobs with different gang
shapes and epoch lengths are gang-scheduled onto an 8-GPU cluster under the
shortest-remaining-work policy, two devices fail mid-run, and the affected
jobs are elastically re-planned — resumed from their last committed
iteration boundary, on a smaller replica group when the surviving cluster
can no longer host the requested gang.

Run with:  python examples/fleet_simulation.py

It prints the per-job outcomes and fleet metrics, and writes a
``chrome://tracing`` timeline of cluster occupancy next to this script.
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    ClusterTopology,
    CostModel,
    FleetConfig,
    FleetScheduler,
    JobSpec,
    ParallelConfig,
    PlannerConfig,
    SyntheticFlanDataset,
)
from repro.cluster.device import DeviceSpec
from repro.data.truncation import truncate_samples
from repro.model.config import ModelArch, ModelConfig

MAX_SEQ_LEN = 512
CLUSTER_GPUS = 8

MODEL = ModelConfig(
    name="gpt-fleet-demo",
    arch=ModelArch.GPT,
    num_layers=4,
    hidden_size=512,
    num_heads=8,
    kv_channels=64,
    ffn_hidden_size=2048,
    vocab_size=32000,
)

DEVICE = DeviceSpec(
    name="demo-gpu-8GB",
    peak_flops=100e12,
    memory_bandwidth=1e12,
    memory_capacity=8 * 1024**3,
)


def main() -> None:
    print(f"profiling {MODEL.name} for the shared cost model...")
    cost_model = CostModel(
        MODEL,
        num_stages=2,
        device_spec=DEVICE,
        max_profile_batch_size=32,
        max_profile_seq_len=1024,
    )
    samples = truncate_samples(
        SyntheticFlanDataset(num_samples=600, seed=11).samples,
        MAX_SEQ_LEN,
        decoder_only=True,
    )
    planner_config = PlannerConfig(order_search=False, tmax_sample_count=8)

    topology = ClusterTopology.for_num_gpus(CLUSTER_GPUS, device_spec=DEVICE)
    scheduler = FleetScheduler(topology, FleetConfig(policy="srw"))
    shapes = [
        ("wide-a", ParallelConfig(2, 2, 1), 4),
        ("narrow-a", ParallelConfig(1, 2, 1), 3),
        ("narrow-b", ParallelConfig(1, 2, 1), 2),
        ("wide-b", ParallelConfig(2, 2, 1), 3),
        ("narrow-c", ParallelConfig(1, 2, 1), 4),
        ("narrow-d", ParallelConfig(1, 2, 1), 2),
    ]
    for index, (name, shape, iterations) in enumerate(shapes):
        scheduler.submit(
            JobSpec(
                name=name,
                cost_model=cost_model,
                samples=samples,
                global_batch_tokens=8192 if shape.data_parallel > 1 else 4096,
                parallel=shape,
                num_iterations=iterations,
                planner_config=planner_config,
                seed=index,
            )
        )
    scheduler.inject_device_failure(8.0, 0)
    scheduler.inject_device_failure(20.0, 5)

    print(f"running {len(shapes)} jobs on {CLUSTER_GPUS} GPUs with 2 injected failures...\n")
    report = scheduler.run()

    header = f"{'job':10} {'state':9} {'shape':10} {'iters':>5} {'attempts':>8} {'queue ms':>9} {'preempt':>7}"
    print(header)
    print("-" * len(header))
    for job in report.jobs:
        queue = f"{job.queueing_delay_ms:9.1f}" if job.queueing_delay_ms is not None else "        -"
        print(
            f"{job.name:10} {job.state:9} {job.parallel:10} "
            f"{job.iterations_completed:5d} {job.attempts:8d} {queue} {job.preemptions:7d}"
        )

    summary = report.summary()
    print(
        f"\nmakespan {summary['makespan_ms']:.1f} ms | "
        f"utilization {summary['device_utilization']:.1%} | "
        f"mean queueing delay {summary['mean_queueing_delay_ms']:.1f} ms | "
        f"retries {summary['total_retries']} | "
        f"failed devices {summary['failed_devices']}"
    )

    trace_path = Path(__file__).parent / "fleet_trace.json"
    report.save_chrome_trace(trace_path)
    print(f"\ncluster-occupancy timeline written to {trace_path}")
    print("open chrome://tracing (or https://ui.perfetto.dev) and load it to see")
    print("gang placement, the two preemptions and the elastic re-planning.")


if __name__ == "__main__":
    main()
