"""Fleet at scale: generate a synthetic workload trace and replay it.

End-to-end tour of the trace-driven workload generator
(:mod:`repro.fleet.workloads`) and the data-oriented scheduler core:

1. **generate** a seeded multi-tenant trace — diurnal + bursty Poisson
   arrivals, a mixed GPT/T5 model catalog, priority tiers, a failure storm
   and a correlated rack outage — and save it as JSON;
2. **reload** the trace from disk (proving the replay file is
   self-contained) and **replay** it under every admission policy on the
   default bitmap scheduler core, printing the policy comparison;
3. replay the FIFO run once more on the ``object`` oracle core and verify
   the two fleet reports are bit-identical — the speed of the bitmap core
   never changes a scheduling decision.

Run with:  python examples/fleet_at_scale.py

It prints the per-policy comparison table and writes
``fleet_scale_trace.json`` next to this script.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.fleet import WorkloadTrace, generate_trace, replay_trace

NUM_JOBS = 120
NUM_NODES = 8
GPUS_PER_NODE = 8
SEED = 2024

HERE = Path(__file__).parent


def main() -> None:
    trace = generate_trace(
        num_jobs=NUM_JOBS,
        num_nodes=NUM_NODES,
        gpus_per_node=GPUS_PER_NODE,
        seed=SEED,
        base_rate_per_s=8.0,
        storm_rate_per_s=0.3,
        num_rack_outages=1,
    )
    path = trace.save(HERE / "fleet_scale_trace.json")
    print(f"generated {trace.description}")
    print(f"  arrivals span {trace.span_ms / 1000.0:.1f} s of fleet time, "
          f"{len(trace.faults)} fault events -> {path.name}")

    # Replay from the file, not the in-memory object: the JSON is the
    # complete workload description.
    loaded = WorkloadTrace.load(path)
    header = (
        f"{'policy':<10} {'wall s':>7} {'events':>7} {'finished':>9} "
        f"{'failed':>7} {'mean queue s':>13} {'util %':>7} {'evictions':>10}"
    )
    print("\n" + header)
    print("-" * len(header))
    reports = {}
    for policy in ("fifo", "srw", "priority"):
        start = time.perf_counter()
        report = replay_trace(loaded, policy=policy)
        wall_s = time.perf_counter() - start
        reports[policy] = report
        summary = report.summary()
        print(
            f"{policy:<10} {wall_s:>7.2f} {summary['events_processed']:>7} "
            f"{summary['finished']:>9} {summary['failed']:>7} "
            f"{summary['mean_queueing_delay_ms'] / 1000.0:>13.2f} "
            f"{100.0 * summary['device_utilization']:>7.1f} "
            f"{summary['total_evictions']:>10}"
        )

    oracle = replay_trace(loaded, policy="fifo", core="object")
    assert oracle.summary() == reports["fifo"].summary()
    assert oracle.jobs == reports["fifo"].jobs
    print(
        "\nobject-core oracle replay of the fifo run is bit-identical "
        f"({oracle.events_processed} events processed on both cores)"
    )


if __name__ == "__main__":
    main()
