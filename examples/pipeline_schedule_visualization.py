"""Visualising dynamic pipelines: schedules, safety stock, and deadlocks.

This example works at the scheduling layer rather than the training layer.
It takes a handful of deliberately heterogeneous micro-batches and

1. renders ASCII Gantt charts of the 1F1B schedule and DynaPipe's
   memory-aware adaptive schedule (the digits are micro-batch indices,
   upper-case rows are forward passes on each device timeline);
2. reports the bubble fraction and safety-stock statistics of each schedule
   under execution-time noise (paper Fig. 6/7/11);
3. demonstrates the communication-ordering problem of §6: the naive
   send/receive order deadlocks the instruction-level executor on the
   dynamic schedule, while DynaPipe's ahead-of-time planned order runs to
   completion.

Run with:  python examples/pipeline_schedule_visualization.py
"""

from __future__ import annotations

import numpy as np

from repro.comm.deadlock import check_comm_order
from repro.comm.planner import build_instruction_streams, build_naive_instruction_streams
from repro.comm.shapes import TransferShapes
from repro.core.adaptive_schedule import AdaptiveScheduler, ScheduleKind
from repro.costmodel.cost_model import CostModel
from repro.model.config import get_model_config
from repro.model.transformer import MicroBatchShape
from repro.schedule.safety_stock import safety_stock_profile
from repro.simulator.engine import simulate_schedule
from repro.simulator.executor import CommunicationDeadlockError, InstructionExecutor

#: A mix of small/short and large/long micro-batches (heterogeneous runtimes).
SHAPES = [
    MicroBatchShape(batch_size=8, enc_seq_len=256),
    MicroBatchShape(batch_size=1, enc_seq_len=2048),
    MicroBatchShape(batch_size=4, enc_seq_len=512),
    MicroBatchShape(batch_size=2, enc_seq_len=1024),
    MicroBatchShape(batch_size=8, enc_seq_len=256),
    MicroBatchShape(batch_size=1, enc_seq_len=1792),
    MicroBatchShape(batch_size=4, enc_seq_len=640),
    MicroBatchShape(batch_size=2, enc_seq_len=896),
]


def main() -> None:
    model = get_model_config("gpt", num_gpus=4)
    cost_model = CostModel(model, num_stages=4, max_profile_seq_len=2048)
    scheduler = AdaptiveScheduler(cost_model)

    rng = np.random.default_rng(0)
    builds = {
        "1F1B": scheduler.build(SHAPES, kind=ScheduleKind.ONE_F_ONE_B),
        "memory-aware adaptive": scheduler.build(SHAPES, kind=ScheduleKind.MEMORY_AWARE_ADAPTIVE),
    }

    for name, build in builds.items():
        noisy_durations = {
            op: duration * float(rng.uniform(0.85, 1.15))
            for op, duration in build.durations.items()
        }
        result = simulate_schedule(
            build.schedule, noisy_durations, activation_bytes=build.activation_bytes
        )
        stock = safety_stock_profile(build.schedule, result.op_times)
        print(f"\n=== {name} schedule ===")
        print(result.trace.render_gantt(width=96))
        print(f"makespan: {result.makespan_ms:.0f} ms   bubble fraction: {result.bubble_fraction:.2%}")
        print(
            "min safety stock per stage:", stock.per_stage_minimum,
            "  mean:", [round(v, 2) for v in stock.per_stage_mean],
        )

    # Communication planning: naive ordering vs ahead-of-time planning.
    adaptive = builds["memory-aware adaptive"]
    timeline = simulate_schedule(adaptive.schedule, adaptive.durations)
    transfer_shapes = TransferShapes.from_cost_model(cost_model, SHAPES)
    naive_streams = build_naive_instruction_streams(adaptive.schedule, SHAPES, transfer_shapes)
    planned_streams = build_instruction_streams(
        adaptive.schedule, timeline.op_times, SHAPES, transfer_shapes
    )

    def duration_of(instr):
        cost = cost_model.stage_cost(instr.stage, instr.shape, instr.recompute)
        return cost.forward_ms if type(instr).__name__ == "ForwardPass" else cost.backward_ms

    executor = InstructionExecutor(compute_duration_fn=duration_of)

    print("\n=== communication ordering (§6) ===")
    naive_report = check_comm_order(naive_streams)
    print(f"naive ordering consistent across channels? {naive_report.consistent}")
    if naive_report.mismatches:
        mismatch = naive_report.mismatches[0]
        print(f"  first mismatch on channel {mismatch['pair']} at position {mismatch['position']}")
    try:
        executor.run(naive_streams)
        print("  naive ordering executed (no deadlock)")
    except CommunicationDeadlockError as error:
        print(f"  naive ordering deadlocks: {error}")

    planned_report = check_comm_order(planned_streams)
    result = executor.run(planned_streams)
    print(f"planned ordering consistent across channels? {planned_report.consistent}")
    print(f"  planned ordering executes to completion: makespan {result.makespan_ms:.0f} ms, "
          f"{len(result.transfer_log)} transfers")


if __name__ == "__main__":
    main()
