"""Multi-task training throughput: DynaPipe vs the packing baseline.

Reproduces, at example scale, the paper's headline experiment: GPT-3.35B on
4 simulated A100s, training on the FLANv2-like multi-task mixture with a
65536-token global batch, comparing

* ``MLM+DS`` — packing into fixed-length rows, fixed micro-batch size, 1F1B;
* ``DynaPipe`` — DP micro-batching, memory-aware adaptive schedule, planned
  communication.

Both systems run a handful of iterations on the instruction-level cluster
simulator with execution-time noise, for two maximum sequence lengths, and
the measured tokens/s, padding efficiency and cost-model accuracy are
printed.

Run with:  python examples/multitask_training_comparison.py
"""

from __future__ import annotations

from repro import (
    BaselineConfig,
    CostModel,
    DynaPipePlanner,
    MLMDeepSpeedBaseline,
    PlannerConfig,
    RecomputeMode,
    SyntheticFlanDataset,
    TrainerConfig,
    TrainingSession,
    get_model_config,
)

NUM_ITERATIONS = 3
GLOBAL_BATCH_TOKENS = 65536
MAX_SEQ_LENS = (2048, 8192)


def run_one(max_seq_len: int) -> None:
    model = get_model_config("gpt", num_gpus=4)
    cost_model = CostModel(model, num_stages=4, max_profile_seq_len=max_seq_len)
    dataset = SyntheticFlanDataset(num_samples=8_000, seed=1)
    trainer_config = TrainerConfig(
        max_iterations=NUM_ITERATIONS, noise_std=0.05, seed=0, max_seq_len=max_seq_len
    )

    dynapipe = DynaPipePlanner(cost_model, config=PlannerConfig(tmax_sample_count=16))
    baseline = MLMDeepSpeedBaseline(
        cost_model,
        config=BaselineConfig(
            max_seq_len=max_seq_len,
            micro_batch_size=1,
            recompute=RecomputeMode.FULL if max_seq_len >= 4096 else RecomputeMode.NONE,
        ),
    )

    reports = {}
    for name, system in (("MLM+DS", baseline), ("DynaPipe", dynapipe)):
        session = TrainingSession(
            system, dataset.samples, GLOBAL_BATCH_TOKENS, trainer_config, system_name=name
        )
        reports[name] = session.run()

    print(f"\n=== GPT-3.35B, 4 GPUs, max sequence length {max_seq_len} ===")
    header = f"{'system':10s} {'tokens/s':>10s} {'padding eff':>12s} {'plan s/iter':>12s} {'time MPE %':>11s}"
    print(header)
    print("-" * len(header))
    for name, report in reports.items():
        print(
            f"{name:10s} {report.throughput_tokens_per_s:10.0f} "
            f"{report.padding_efficiency:12.3f} {report.mean_planning_time_s:12.2f} "
            f"{report.time_prediction_error_percent():11.1f}"
        )
    speedup = (
        reports["DynaPipe"].throughput_tokens_per_s
        / max(reports["MLM+DS"].throughput_tokens_per_s, 1e-9)
    )
    print(f"DynaPipe speedup over packing baseline: {speedup:.2f}x")


def main() -> None:
    for max_seq_len in MAX_SEQ_LENS:
        run_one(max_seq_len)


if __name__ == "__main__":
    main()
