"""Incremental order search: compile the schedule geometry once, re-solve deltas.

The planner's injection-order search (paper §5) scores permutations of a
replica's micro-batches by simulating the memory-aware adaptive schedule.
The legacy path rebuilds the full compute-op schedule and re-simulates the
timeline for every permutation; the incremental path compiles the schedule
*geometry* (op order + dependency structure) once per distinct memory-gated
shape and re-solves only the permuted duration/communication arrays.  Both
paths are bit-identical — this example times them side by side on a seeded
GPT configuration and prints the engine counters that prove the reuse.

Run with:  PYTHONPATH=src python examples/incremental_order_search.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.comm.shapes import TransferShapes
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.costmodel.cost_model import CostModel
from repro.model.config import ModelArch, ModelConfig
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape

CONFIG = ModelConfig(
    name="gpt-example-small",
    arch=ModelArch.GPT,
    num_layers=8,
    hidden_size=1024,
    num_heads=16,
    kv_channels=64,
    ffn_hidden_size=4096,
    vocab_size=32000,
)

NUM_MICROBATCHES = 16
REPEATS = 5


def main() -> None:
    cost_model = CostModel(
        CONFIG, num_stages=4, max_profile_batch_size=128, max_profile_seq_len=2048
    )
    planner = DynaPipePlanner(
        cost_model,
        config=PlannerConfig(
            order_search=True, num_time_clusters=4, max_order_permutations=24
        ),
    )

    rng = np.random.default_rng(42)
    shapes = [
        MicroBatchShape(
            batch_size=int(rng.integers(1, 9)),
            enc_seq_len=int(rng.choice([128, 256, 512, 1024])),
        )
        for _ in range(NUM_MICROBATCHES)
    ]
    transfer_shapes = TransferShapes.from_cost_model(cost_model, shapes)
    mode = RecomputeMode.NONE

    def search(incremental: bool):
        planner.config.incremental_order_search = incremental
        planner._search_injection_order(shapes, mode, transfer_shapes)  # warm caches
        best = float("inf")
        result = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = planner._search_injection_order(shapes, mode, transfer_shapes)
            best = min(best, time.perf_counter() - start)
        return result, best

    legacy, legacy_s = search(incremental=False)
    incremental, incremental_s = search(incremental=True)

    print(f"micro-batches: {NUM_MICROBATCHES}   stages: {cost_model.num_stages}")
    print(f"permutations evaluated: {incremental.evaluated}")
    print()
    print(f"legacy (rebuild per permutation):  {legacy_s * 1e3:8.2f} ms")
    print(f"incremental (compile-once):        {incremental_s * 1e3:8.2f} ms")
    print(f"speed-up:                          {legacy_s / incremental_s:8.1f}x")
    print()
    print(
        f"geometry compiles: {incremental.geometry_compiles}   "
        f"timeline solves: {incremental.timeline_solves}"
    )
    print(f"selected order:    {incremental.order}")
    print(f"makespan:          {incremental.makespan_ms:.3f} ms")

    assert incremental.order == legacy.order
    assert incremental.makespan_ms == legacy.makespan_ms
    print()
    print("OK: incremental search is bit-identical to the legacy rebuild path.")


if __name__ == "__main__":
    main()
