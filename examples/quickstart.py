"""Quickstart: plan one multi-task training iteration with DynaPipe.

This example builds the cost model for GPT-6.7B on a 4-stage pipeline
(2 data-parallel replicas, 8 simulated A100s total), draws one mini-batch
from the synthetic FLANv2-like mixture, and asks the DynaPipe planner for an
execution plan.  It then prints what the planner decided: the micro-batch
partition, the recomputation mode, the predicted iteration time and peak
memory, and the padding efficiency compared with the naive alternatives.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CostModel,
    DynaPipePlanner,
    MiniBatchSampler,
    NaivePaddingBatching,
    PackingBatching,
    PlannerConfig,
    SyntheticFlanDataset,
    get_model_config,
    padding_stats,
)
from repro.data.truncation import truncate_samples

MAX_SEQ_LEN = 2048
GLOBAL_BATCH_TOKENS = 65536


def main() -> None:
    # 1. Model and cost model: GPT-6.7B split over 4 pipeline stages.
    model = get_model_config("gpt", num_gpus=8)
    print(f"model: {model.name} ({model.parameter_count() / 1e9:.1f} B parameters)")
    cost_model = CostModel(model, num_stages=4, zero_shards=2, max_profile_seq_len=MAX_SEQ_LEN)

    # 2. The planner: 2 data-parallel replicas of the 4-stage pipeline.
    planner = DynaPipePlanner(
        cost_model,
        data_parallel_size=2,
        config=PlannerConfig(tmax_sample_count=16),
    )

    # 3. One mini-batch from the synthetic multi-task mixture.
    dataset = SyntheticFlanDataset(num_samples=5_000, seed=0)
    samples = truncate_samples(dataset.samples, MAX_SEQ_LEN, decoder_only=True)
    sampler = MiniBatchSampler(samples, GLOBAL_BATCH_TOKENS, seed=0)
    minibatch = next(iter(sampler))
    print(
        f"mini-batch: {len(minibatch)} samples, {minibatch.total_tokens()} tokens, "
        f"longest sequence {minibatch.max_input_tokens() + minibatch.max_target_tokens()} tokens"
    )

    # 4. Plan the iteration.
    plan = planner.plan(minibatch.samples)
    print("\n--- DynaPipe plan ---")
    print(f"planning time:            {plan.planning_time_s:.2f} s")
    print(f"micro-batches:            {plan.num_microbatches} across {len(plan.replicas)} replicas")
    print(f"recomputation mode:       {plan.recompute.value}")
    print(f"predicted iteration time: {plan.predicted_iteration_ms:.0f} ms")
    peak = max(max(r.plan.metadata.predicted_peak_memory_bytes) for r in plan.replicas)
    print(f"predicted peak memory:    {peak / 1024**3:.1f} GiB per device")
    print(f"padding efficiency:       {plan.padding.overall_efficiency:.3f}")

    print("\nmicro-batch shapes of replica 0 (batch x padded sequence length):")
    for index, shape in enumerate(plan.plans[0].microbatch_shapes):
        print(f"  micro-batch {index:2d}: {shape.batch_size:3d} x {shape.enc_seq_len}")

    # 5. Compare padding efficiency against the static alternatives.
    naive = NaivePaddingBatching(micro_batch_size=8, decoder_only=True).split(minibatch.samples)
    packing = PackingBatching(MAX_SEQ_LEN, micro_batch_size=2, decoder_only=True).split(
        minibatch.samples
    )
    print("\npadding efficiency comparison:")
    print(f"  naive padding:          {padding_stats(naive.micro_batches).overall_efficiency:.3f}")
    print(f"  packing:                {padding_stats(packing.micro_batches).overall_efficiency:.3f}")
    print(f"  DynaPipe micro-batches: {plan.padding.overall_efficiency:.3f}")


if __name__ == "__main__":
    main()
