"""Chaos harness: failure storms, rack outages and kill/restore.

The fleet scheduler survives three kinds of violence, demonstrated here
in sequence:

* a **seeded failure storm** — Poisson-arrival device failures over a
  time window, each auto-repaired a fixed delay later — plus a
  **correlated rack outage** that downs every device on one node at
  once, declared up front as a :class:`repro.fleet.FaultPlan` and lowered
  onto the scheduler by :class:`repro.fleet.FaultInjector`;
* a **scheduler crash**: the run is killed at an event boundary, the
  full scheduler state is serialised to a JSON checkpoint, and a fresh
  process restores from it — the resumed run must match the
  uninterrupted run bit for bit (same job outcomes, same makespan, same
  trace);
* the same fault plan replayed from its seed, showing chaos runs are
  reproducible end to end.

Run with:  python examples/fleet_chaos.py

It prints the fault plan, side-by-side clean/chaos fleet metrics
(preemptions, repairs, MTTR), and the kill/restore equivalence check,
and writes the checkpoint JSON next to this script.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import (
    ClusterTopology,
    CostModel,
    FleetConfig,
    FleetScheduler,
    ParallelConfig,
    PlannerConfig,
    SyntheticFlanDataset,
)
from repro.cluster.device import DeviceSpec
from repro.data.truncation import truncate_samples
from repro.fleet import (
    FaultInjector,
    FaultPlan,
    JobSpec,
    SchedulerKilled,
    failure_storm,
    rack_outage,
)
from repro.model.config import ModelArch, ModelConfig

MAX_SEQ_LEN = 512
CLUSTER_GPUS = 8
GPUS_PER_NODE = 4
NUM_JOBS = 10
KILL_AT_BOUNDARY = 6

MODEL = ModelConfig(
    name="gpt-chaos-demo",
    arch=ModelArch.GPT,
    num_layers=4,
    hidden_size=512,
    num_heads=8,
    kv_channels=64,
    ffn_hidden_size=2048,
    vocab_size=32000,
)

DEVICE = DeviceSpec(
    name="demo-gpu-8GB",
    peak_flops=100e12,
    memory_bandwidth=1e12,
    memory_capacity=8 * 1024**3,
)


def build_fault_plan() -> FaultPlan:
    storm = failure_storm(
        CLUSTER_GPUS,
        seed=17,
        start_ms=5.0,
        duration_ms=80.0,
        rate_per_s=60.0,
        repair_after_ms=12.0,
    )
    return storm.merge(rack_outage(node=1, time_ms=35.0, repair_after_ms=15.0))


def build_scheduler(jobs, plan: FaultPlan | None, config: FleetConfig | None = None):
    topology = ClusterTopology.for_num_gpus(
        CLUSTER_GPUS, gpus_per_node=GPUS_PER_NODE, device_spec=DEVICE
    )
    scheduler = FleetScheduler(topology, config or FleetConfig())
    for spec in jobs:
        scheduler.submit(spec)
    if plan is not None:
        FaultInjector(plan).apply(scheduler)
    return scheduler


def summary_line(tag: str, report) -> str:
    summary = report.summary()
    return (
        f"{tag:12} finished {summary['finished']:2d}/{summary['jobs']}  "
        f"makespan {summary['makespan_ms']:6.1f} ms  "
        f"preemptions {summary['total_preemptions']:2d}  "
        f"repairs {summary['devices_repaired']:2d}  "
        f"MTTR {summary['mttr_ms']:5.1f} ms  "
        f"utilization {summary['device_utilization']:.1%}"
    )


def main() -> None:
    print(f"profiling {MODEL.name} for the shared cost model...")
    cost_model = CostModel(
        MODEL,
        num_stages=2,
        device_spec=DEVICE,
        max_profile_batch_size=32,
        max_profile_seq_len=1024,
    )
    samples = truncate_samples(
        SyntheticFlanDataset(num_samples=400, seed=7).samples,
        MAX_SEQ_LEN,
        decoder_only=True,
    )
    planner_config = PlannerConfig(order_search=False, tmax_sample_count=8)
    jobs = [
        JobSpec(
            name=f"job{index:02d}",
            cost_model=cost_model,
            samples=samples,
            global_batch_tokens=4096,
            parallel=ParallelConfig(1, 2, 1),
            num_iterations=2,
            planner_config=planner_config,
            seed=index,
            max_retries=4,
        )
        for index in range(NUM_JOBS)
    ]

    plan = build_fault_plan()
    print(f"\nfault plan ({plan.description}, {len(plan)} events):")
    for event in plan.events:
        target = f"device {event.device}" if event.device is not None else f"node {event.node}"
        print(f"  t={event.time_ms:6.1f} ms  {event.kind:15} {target}")

    # --- clean vs chaos -------------------------------------------------
    print(f"\nrunning {NUM_JOBS} jobs on {CLUSTER_GPUS} GPUs, clean then under the plan...")
    clean_report = build_scheduler(jobs, None).run()
    chaos_report = build_scheduler(jobs, plan).run()
    print(summary_line("clean", clean_report))
    print(summary_line("storm+rack", chaos_report))

    # --- kill at an event boundary, checkpoint, restore -----------------
    captured: dict[str, dict] = {}

    def crash(scheduler: FleetScheduler) -> None:
        if scheduler._events_processed == KILL_AT_BOUNDARY:
            captured["snapshot"] = scheduler.checkpoint()
            raise SchedulerKilled(f"demo kill at boundary {KILL_AT_BOUNDARY}")

    doomed = build_scheduler(jobs, plan, FleetConfig(on_event=crash))
    try:
        doomed.run()
    except SchedulerKilled as exc:
        print(f"\nscheduler killed mid-run: {exc}")

    checkpoint_path = Path(__file__).parent / "fleet_checkpoint.json"
    checkpoint_path.write_text(json.dumps(captured["snapshot"], indent=2))
    print(f"checkpoint written to {checkpoint_path} ({len(captured['snapshot'])} top-level keys)")

    # A restore needs only the checkpoint, the topology and the job specs
    # (specs carry the unserialisable parts: cost model, samples, planner).
    restored = FleetScheduler.restore(
        json.loads(checkpoint_path.read_text()),
        ClusterTopology.for_num_gpus(
            CLUSTER_GPUS, gpus_per_node=GPUS_PER_NODE, device_spec=DEVICE
        ),
        {spec.name: spec for spec in jobs},
    )
    restored_report = restored.run()
    print(summary_line("restored", restored_report))

    identical = (
        restored_report.jobs == chaos_report.jobs
        and restored_report.makespan_ms == chaos_report.makespan_ms
        and restored_report.capacity_timeline == chaos_report.capacity_timeline
        and restored_report.trace.events == chaos_report.trace.events
    )
    print(f"kill/restore bit-identical to the uninterrupted run: {identical}")
    if not identical:
        raise SystemExit("restore diverged from the uninterrupted run")

    # --- replaying the plan from its seed is exactly reproducible -------
    replay_report = build_scheduler(jobs, build_fault_plan()).run()
    print(
        "seeded replay reproduces the chaos run: "
        f"{replay_report.jobs == chaos_report.jobs}"
    )


if __name__ == "__main__":
    main()
