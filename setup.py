"""Setuptools shim.

The offline evaluation environment ships setuptools without the ``wheel``
package, which breaks PEP 660 editable installs.  Keeping a ``setup.py``
lets ``pip install -e .`` fall back to the legacy ``setup.py develop`` code
path, which works without ``wheel``.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
