"""Figure 3 — computation time of a single T5-11B encoder layer vs sequence
length on one (simulated) A100.

The paper's point is the super-linear growth of layer time with sequence
length caused by the quadratic attention term; the same trend must appear on
the analytic device model.
"""

from __future__ import annotations

from repro.cluster.device import SimulatedGPU
from repro.model.config import get_model_config
from repro.model.transformer import LayerAssignment, MicroBatchShape, StageModel

from common import emit

SEQ_LENS = (512, 1024, 2048, 4096, 8192)


def measure_layer_times():
    config = get_model_config("t5", 8)  # T5-11B
    layer = StageModel(
        config,
        LayerAssignment(stage=0, encoder_layers=1, decoder_layers=0, has_output_projection=False),
    )
    gpu = SimulatedGPU()
    rows = []
    for seq_len in SEQ_LENS:
        shape = MicroBatchShape(batch_size=1, enc_seq_len=seq_len)
        forward = layer.forward_time_ms(gpu, shape)
        backward = layer.backward_time_ms(gpu, shape)
        rows.append([seq_len, round(forward, 3), round(backward, 3), round((forward) / seq_len * 1e3, 4)])
    return rows


def test_fig03_layer_time_vs_seq_len(benchmark, capsys):
    rows = benchmark.pedantic(measure_layer_times, rounds=1, iterations=1)
    emit(
        "fig03_layer_time",
        "Fig. 3: single T5-11B encoder layer time vs sequence length (A100 model)",
        ["seq_len", "forward_ms", "backward_ms", "fwd_us_per_token"],
        rows,
        capsys,
    )
    # Super-linear growth: time per token increases with sequence length,
    # and doubling the sequence length more than doubles the layer time.
    per_token = [row[3] for row in rows]
    assert per_token == sorted(per_token)
    times = [row[1] for row in rows]
    for shorter, longer in zip(times, times[1:]):
        assert longer > 2.0 * shorter * 0.95
