"""Tier-2 benchmark: fleet at scale — trace replay over ~1k jobs and devices.

Replays one seeded synthetic multi-tenant trace
(:mod:`repro.fleet.workloads`: diurnal + bursty arrivals, mixed GPT/T5
model mix, priority tiers, failure storm + correlated rack outages) under
every admission policy on the **bitmap** scheduler core, and replays the
FIFO run again on the **object** oracle core:

* the policy table compares fifo/srw/priority at scale (makespan,
  queueing delay, utilization, evictions) on identical inputs;
* the core rows measure the data-oriented rearchitecture: both cores
  process the *identical* event sequence (``events_processed`` is
  core-independent), so wall-clock per event is a like-for-like speed
  comparison — the full workload must replay at a ≥ 10× event-loop
  speedup on the bitmap core, with bit-identical fleet reports.

Run it with

    pytest benchmarks/bench_fleet_scale.py --benchmark-disable -s

(or ``pytest benchmarks/ -m tier2_bench``).  Set ``REPRO_BENCH_SMOKE=1``
for the reduced workload the tier-1 suite runs so this file cannot
silently rot; the speedup floor is only asserted at full scale (the smoke
workload is too small for the asymptotics to separate the cores).
"""

from __future__ import annotations

import dataclasses
import os
import time

import pytest

from repro.fleet.workloads import generate_trace, replay_trace

from common import emit

#: Reduced workload (used as a tier-1 smoke check).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

TRACE_SEED = 42
NUM_JOBS = 60 if SMOKE else 1000
NUM_NODES = 4 if SMOKE else 128
GPUS_PER_NODE = 8
#: Arrival rate chosen to saturate the cluster: a deep pending backlog is
#: exactly the regime that separates the cores (the oracle re-sorts the
#: whole queue at every event; the bitmap core's dirty-guard + feasibility
#: precheck skip the scan when nothing can change).
BASE_RATE_PER_S = 10.0 if SMOKE else 40.0
MIN_ITERATIONS = 2 if SMOKE else 4
MAX_ITERATIONS = 5 if SMOKE else 16
STORM_RATE_PER_S = 0.2 if SMOKE else 0.5
NUM_RACK_OUTAGES = 1 if SMOKE else 2

POLICIES = ("fifo", "srw", "priority")
#: Event-loop speedup floor of the bitmap core at full scale.
SPEEDUP_FLOOR = 10.0

HEADERS = [
    "policy",
    "core",
    "wall s",
    "events",
    "events/s",
    "finished",
    "failed",
    "mean queue s",
    "util %",
    "evictions",
    "retries",
]


def build_trace():
    return generate_trace(
        num_jobs=NUM_JOBS,
        num_nodes=NUM_NODES,
        gpus_per_node=GPUS_PER_NODE,
        seed=TRACE_SEED,
        base_rate_per_s=BASE_RATE_PER_S,
        min_iterations=MIN_ITERATIONS,
        max_iterations=MAX_ITERATIONS,
        storm_rate_per_s=STORM_RATE_PER_S,
        num_rack_outages=NUM_RACK_OUTAGES,
    )


def timed_replay(trace, policy: str, core: str):
    start = time.perf_counter()
    report = replay_trace(trace, policy=policy, core=core)
    return report, time.perf_counter() - start


def run_scale_sweep():
    trace = build_trace()
    rows = []
    reports = {}
    timings = {}
    for policy in POLICIES:
        report, wall_s = timed_replay(trace, policy, "bitmap")
        reports[(policy, "bitmap")] = report
        timings[(policy, "bitmap")] = wall_s
        rows.append(_row(policy, "bitmap", report, wall_s))
    # The oracle replays the FIFO run: same trace, same event sequence.
    report, wall_s = timed_replay(trace, "fifo", "object")
    reports[("fifo", "object")] = report
    timings[("fifo", "object")] = wall_s
    rows.append(_row("fifo", "object", report, wall_s))
    speedup = timings[("fifo", "object")] / timings[("fifo", "bitmap")]
    rows.append(["fifo", "speedup", f"{speedup:.1f}x", "", "", "", "", "", "", "", ""])
    return rows, (trace, reports, timings, speedup)


def _row(policy: str, core: str, report, wall_s: float):
    summary = report.summary()
    events = summary["events_processed"]
    return [
        policy,
        core,
        f"{wall_s:.2f}",
        events,
        f"{events / wall_s:.0f}",
        summary["finished"],
        summary["failed"],
        f"{summary['mean_queueing_delay_ms'] / 1000.0:.2f}",
        f"{100.0 * summary['device_utilization']:.1f}",
        summary["total_evictions"],
        summary["total_retries"],
    ]


@pytest.mark.tier2_bench
def test_fleet_scale_bench(benchmark, capsys):
    rows, (trace, reports, timings, speedup) = benchmark.pedantic(
        run_scale_sweep, rounds=1, iterations=1
    )
    emit(
        "fleet_scale",
        f"Fleet at scale: {NUM_JOBS} jobs over "
        f"{NUM_NODES * GPUS_PER_NODE} devices ({trace.description})",
        HEADERS,
        rows,
        capsys,
    )
    fast = reports[("fifo", "bitmap")]
    oracle = reports[("fifo", "object")]
    # Both cores processed the identical event sequence and produced
    # bit-identical reports — the speedup is a pure data-structure win.
    assert fast.summary() == oracle.summary()
    assert [dataclasses.asdict(j) for j in fast.jobs] == [
        dataclasses.asdict(j) for j in oracle.jobs
    ]
    assert fast.capacity_timeline == oracle.capacity_timeline
    assert fast.trace.events == oracle.trace.events
    # Every policy replayed the full population to termination.
    for report in reports.values():
        assert report.finished_jobs + report.failed_jobs == NUM_JOBS
        assert report.events_processed > 0
    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"bitmap core event-loop speedup {speedup:.1f}x is below the "
            f"{SPEEDUP_FLOOR:.0f}x floor"
        )
