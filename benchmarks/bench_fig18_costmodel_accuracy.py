"""Figure 18 — accuracy of the iteration-time and peak-memory cost models.

For both GPT and T5, several training iterations are planned with the
interpolated cost model and then executed on the instruction-level simulator
driven by the *analytic* stage models with execution-time noise — the same
relationship the paper has between its profiled cost model and real GPU
execution.  Predicted vs measured iteration time and peak memory are
collected and the mean percentage error is reported.
"""

from __future__ import annotations

import pytest

from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.training.trainer import TrainerConfig, TrainingSession

from common import cost_model, emit, parallel_candidates, truncated_samples

MAX_SEQ_LEN = 2048
GLOBAL_BATCH_TOKENS = 32768
ITERATIONS = 4


def run(arch: str):
    config = parallel_candidates(arch, 8)[0]
    cm = cost_model(
        arch, 8, config.pipeline_parallel, config.tensor_parallel, config.data_parallel,
        MAX_SEQ_LEN,
    )
    planner = DynaPipePlanner(
        cm,
        data_parallel_size=config.data_parallel,
        config=PlannerConfig(order_search=False, tmax_sample_count=16),
    )
    samples = truncated_samples(MAX_SEQ_LEN, arch == "gpt")
    session = TrainingSession(
        planner,
        list(samples),
        global_batch_tokens=GLOBAL_BATCH_TOKENS,
        config=TrainerConfig(max_iterations=ITERATIONS, noise_std=0.05, seed=1),
        system_name="DynaPipe",
    )
    report = session.run()
    rows = [
        [
            arch.upper(),
            record.iteration,
            round(record.predicted_ms, 1),
            round(record.measured_ms, 1),
            round(record.predicted_peak_bytes / 1e9, 2),
            round(record.measured_peak_bytes / 1e9, 2),
        ]
        for record in report.records
    ]
    rows.append(
        [
            arch.upper(),
            "MPE%",
            round(report.time_prediction_error_percent(), 2),
            "",
            round(report.memory_prediction_error_percent(), 2),
            "",
        ]
    )
    return rows


HEADERS = [
    "model", "iteration", "predicted_ms", "measured_ms", "predicted_peak_GB", "measured_peak_GB",
]


@pytest.mark.parametrize("arch", ["gpt", "t5"])
def test_fig18_costmodel_accuracy(benchmark, capsys, arch):
    rows = benchmark.pedantic(run, args=(arch,), rounds=1, iterations=1)
    emit(
        f"fig18_costmodel_accuracy_{arch}",
        f"Fig. 18: cost-model prediction accuracy — {arch.upper()}",
        HEADERS,
        rows,
        capsys,
    )
    mpe_row = rows[-1]
    time_mpe, memory_mpe = mpe_row[2], mpe_row[4]
    # The paper reports 4.3% (T5) and 11.2% (GPT) time MPE and < 6% memory MPE.
    # The analytic substrate is cleaner than real hardware, so a generous but
    # still informative bound is asserted here.
    assert time_mpe < 25.0
    assert memory_mpe < 10.0
