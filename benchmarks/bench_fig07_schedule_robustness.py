"""Figure 7 — per-iteration makespan of 1F1B vs adaptive scheduling under
increasing micro-batch execution-time variation.

Micro-batches start uniform; zero-mean Gaussian noise with growing standard
deviation is added to their execution times, and the makespan of each
schedule is normalised by its own no-variation makespan.  The paper's claim:
1F1B degrades quickly (especially with many stages) while the adaptive
schedule stays close to 1.
"""

from __future__ import annotations

import numpy as np

from repro.schedule.cyclic import cyclic_schedule
from repro.schedule.events import ComputeOp, OpType
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.simulator.engine import simulate_schedule

from common import emit

STAGE_COUNTS = (2, 4, 8, 16)
NOISE_STDS = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
NUM_MICROBATCHES = 32
TRIALS = 5
BASE_FORWARD_MS = 1.0
BASE_BACKWARD_MS = 2.0


def _noisy_durations(rng: np.random.Generator, std: float) -> dict:
    durations = {}
    for mb in range(NUM_MICROBATCHES):
        forward = max(0.05, BASE_FORWARD_MS + rng.normal(0.0, std * BASE_FORWARD_MS / 3.0))
        backward = max(0.05, BASE_BACKWARD_MS + rng.normal(0.0, std * BASE_BACKWARD_MS / 3.0))
        durations[(mb, OpType.FORWARD)] = forward
        durations[(mb, OpType.BACKWARD)] = backward
    return durations


def run_sweep():
    rows = []
    for num_stages in STAGE_COUNTS:
        one_f = one_f_one_b_schedule(num_stages, NUM_MICROBATCHES)
        adaptive = cyclic_schedule(
            num_stages, [[1.0] * num_stages for _ in range(NUM_MICROBATCHES)]
        )
        baseline_duration = lambda op: (
            BASE_FORWARD_MS if op.op_type is OpType.FORWARD else BASE_BACKWARD_MS
        )
        base_1f1b = simulate_schedule(one_f, baseline_duration).makespan_ms
        base_adaptive = simulate_schedule(adaptive, baseline_duration).makespan_ms
        for std in NOISE_STDS:
            rng = np.random.default_rng(17)
            ratios_1f1b, ratios_adaptive = [], []
            for _ in range(TRIALS):
                table = _noisy_durations(rng, std)
                duration = lambda op: table[(op.microbatch, op.op_type)]
                ratios_1f1b.append(simulate_schedule(one_f, duration).makespan_ms / base_1f1b)
                ratios_adaptive.append(
                    simulate_schedule(adaptive, duration).makespan_ms / base_adaptive
                )
            rows.append(
                [
                    num_stages,
                    std,
                    round(float(np.mean(ratios_1f1b)), 3),
                    round(float(np.mean(ratios_adaptive)), 3),
                ]
            )
    return rows


def test_fig07_schedule_robustness(benchmark, capsys):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "fig07_schedule_robustness",
        "Fig. 7: normalized makespan under execution-time variation (1F1B vs adaptive)",
        ["stages", "noise_std", "1f1b_norm_makespan", "adaptive_norm_makespan"],
        rows,
        capsys,
    )
    by_key = {(row[0], row[1]): (row[2], row[3]) for row in rows}
    # At high variation the adaptive schedule beats 1F1B for deep pipelines.
    for stages in (8, 16):
        one_f, adaptive = by_key[(stages, 3.0)]
        assert adaptive < one_f
    # 1F1B's degradation grows with the number of stages (paper Fig. 7).
    assert by_key[(16, 3.0)][0] > by_key[(2, 3.0)][0]
    # Without variation both schedules are at their baseline (ratio 1).
    for stages in STAGE_COUNTS:
        assert abs(by_key[(stages, 0.0)][0] - 1.0) < 1e-6
