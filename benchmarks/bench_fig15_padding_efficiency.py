"""Figure 15 — padding-efficiency case study.

GPT-6.7B and T5-11B on 8 GPUs, under both the maximum-sequence-length sweep
and the global-batch-size sweep.  For GPT a single padding efficiency is
reported per system; for T5 the encoder and decoder tensors are reported
separately — packing keeps the encoder dense but leaves the decoder sparse,
while DynaPipe is balanced across the two (it considers both sequence
lengths in its DP).
"""

from __future__ import annotations

import pytest

from common import GLOBAL_BATCH_TOKENS_DEFAULT, baseline_point, dynapipe_point, emit

NUM_GPUS = 8
SEQ_LENS = {"gpt": (512, 1024, 2048, 4096, 8192), "t5": (512, 1024, 2048, 4096)}
GLOBAL_BATCHES = (16384, 32768, 65536, 131072)


def run(arch: str):
    rows = []
    for seq_len in SEQ_LENS[arch]:
        base = baseline_point(arch, NUM_GPUS, seq_len, GLOBAL_BATCH_TOKENS_DEFAULT, execute=False)
        dyna = dynapipe_point(arch, NUM_GPUS, seq_len, GLOBAL_BATCH_TOKENS_DEFAULT, execute=False)
        rows.append(
            [
                "max_seq_len", seq_len,
                round(base.encoder_padding_efficiency, 3),
                round(base.decoder_padding_efficiency, 3) if base.decoder_padding_efficiency is not None else "-",
                round(dyna.encoder_padding_efficiency, 3),
                round(dyna.decoder_padding_efficiency, 3) if dyna.decoder_padding_efficiency is not None else "-",
            ]
        )
    for global_batch in GLOBAL_BATCHES:
        base = baseline_point(arch, NUM_GPUS, 2048, global_batch, execute=False)
        dyna = dynapipe_point(arch, NUM_GPUS, 2048, global_batch, execute=False)
        rows.append(
            [
                "global_batch", global_batch,
                round(base.encoder_padding_efficiency, 3),
                round(base.decoder_padding_efficiency, 3) if base.decoder_padding_efficiency is not None else "-",
                round(dyna.encoder_padding_efficiency, 3),
                round(dyna.decoder_padding_efficiency, 3) if dyna.decoder_padding_efficiency is not None else "-",
            ]
        )
    return rows


HEADERS = [
    "sweep", "value", "MLM+DS enc eff", "MLM+DS dec eff", "DynaPipe enc eff", "DynaPipe dec eff",
]


def test_fig15_padding_efficiency_gpt(benchmark, capsys):
    rows = benchmark.pedantic(run, args=("gpt",), rounds=1, iterations=1)
    emit(
        "fig15_padding_efficiency_gpt",
        "Fig. 15a: padding efficiency — GPT-6.7B on 8 GPUs",
        HEADERS,
        rows,
        capsys,
    )
    # Both systems keep padding efficiency high for GPT (paper: > 0.8).
    for row in rows:
        assert row[2] > 0.75
        assert row[4] > 0.75


def test_fig15_padding_efficiency_t5(benchmark, capsys):
    rows = benchmark.pedantic(run, args=("t5",), rounds=1, iterations=1)
    emit(
        "fig15_padding_efficiency_t5",
        "Fig. 15b: padding efficiency — T5-11B on 8 GPUs (encoder / decoder)",
        HEADERS,
        rows,
        capsys,
    )
    for row in rows:
        # Packing keeps the encoder dense but its decoder efficiency trails
        # (paper Fig. 15b).  Note: this repo's packer co-packs the decoder
        # against its own budget, which is more charitable to the baseline
        # than Megatron's fixed decoder length, so the decoder gap here is
        # smaller than the paper's — see EXPERIMENTS.md.
        assert row[3] < row[2]
        # Both systems keep the encoder tensors dense.
        assert row[2] > 0.8 and row[4] > 0.8
