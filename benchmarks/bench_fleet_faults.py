"""Tier-2 benchmark of the chaos harness: fault storms and kill/restore.

Two tables:

* **fault workloads** — the same job mix run clean, under a seeded
  failure storm, and under storm + correlated rack outage, with the
  fault-tolerance metrics (preemptions, repairs, MTTR, utilization on
  live capacity) side by side.
* **kill/restore** — the storm scenario killed at an event boundary
  mid-run, restored from the JSON checkpoint and driven to completion;
  the restored run must match the uninterrupted run bit for bit.

Run it with

    pytest benchmarks/bench_fleet_faults.py --benchmark-disable -s

(or ``pytest benchmarks/ -m tier2_bench``).  Set ``REPRO_BENCH_SMOKE=1``
for the reduced workload the tier-1 suite runs so this file cannot
silently rot.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster.device import DeviceSpec
from repro.cluster.topology import ClusterTopology
from repro.core.planner import PlannerConfig
from repro.costmodel.cost_model import CostModel
from repro.data.flan import SyntheticFlanDataset
from repro.data.truncation import truncate_samples
from repro.fleet import (
    FaultInjector,
    FaultPlan,
    FleetConfig,
    FleetScheduler,
    JobSpec,
    JobState,
    SchedulerKilled,
    failure_storm,
    rack_outage,
)
from repro.model.config import ModelArch, ModelConfig
from repro.parallel.config import ParallelConfig

from common import emit

#: Reduced workload (used as a tier-1 smoke check).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

NUM_JOBS = 4 if SMOKE else 10
ITERATIONS = 2
CLUSTER_GPUS = 8
GPUS_PER_NODE = 4
STORM_SEED = 17
STORM_RATE_PER_S = 150.0 if SMOKE else 60.0
STORM_WINDOW_MS = 80.0
STORM_REPAIR_MS = 12.0
RACK_OUTAGE_MS = 20.0 if SMOKE else 35.0
RACK_REPAIR_MS = 15.0
#: Boundary the kill/restore table crashes the storm run at.
KILL_AT_BOUNDARY = 6

FLEET_MODEL = ModelConfig(
    name="gpt-fleet-small",
    arch=ModelArch.GPT,
    num_layers=4,
    hidden_size=512,
    num_heads=8,
    kv_channels=64,
    ffn_hidden_size=2048,
    vocab_size=32000,
)

FLEET_DEVICE = DeviceSpec(
    name="fleet-gpu-8GB",
    peak_flops=100e12,
    memory_bandwidth=1e12,
    memory_capacity=8 * 1024**3,
)


def build_jobs(cost_model: CostModel, samples) -> list[JobSpec]:
    planner_config = PlannerConfig(order_search=False, tmax_sample_count=8)
    return [
        JobSpec(
            name=f"job{index:02d}",
            cost_model=cost_model,
            samples=samples,
            global_batch_tokens=4096,
            parallel=ParallelConfig(1, 2, 1),
            num_iterations=ITERATIONS,
            planner_config=planner_config,
            seed=index,
            max_retries=4,
        )
        for index in range(NUM_JOBS)
    ]


def fault_plans() -> dict[str, FaultPlan]:
    storm = failure_storm(
        CLUSTER_GPUS,
        seed=STORM_SEED,
        start_ms=2.0,
        duration_ms=STORM_WINDOW_MS,
        rate_per_s=STORM_RATE_PER_S,
        repair_after_ms=STORM_REPAIR_MS,
    )
    return {
        "clean": FaultPlan(description="no faults"),
        "storm": storm,
        "storm+rack": storm.merge(
            rack_outage(node=1, time_ms=RACK_OUTAGE_MS, repair_after_ms=RACK_REPAIR_MS)
        ),
    }


def build_scheduler(jobs, plan: FaultPlan, config: FleetConfig | None = None):
    topology = ClusterTopology.for_num_gpus(
        CLUSTER_GPUS, gpus_per_node=GPUS_PER_NODE, device_spec=FLEET_DEVICE
    )
    scheduler = FleetScheduler(topology, config or FleetConfig())
    for spec in jobs:
        scheduler.submit(spec)
    FaultInjector(plan).apply(scheduler)
    return scheduler


def build_workload():
    cost_model = CostModel(
        FLEET_MODEL,
        num_stages=2,
        device_spec=FLEET_DEVICE,
        max_profile_batch_size=32,
        max_profile_seq_len=1024,
    )
    samples = truncate_samples(
        SyntheticFlanDataset(num_samples=400, seed=7).samples, 512, decoder_only=True
    )
    return build_jobs(cost_model, samples)


def run_fault_workloads():
    jobs = build_workload()
    rows = []
    reports = {}
    for scenario, plan in fault_plans().items():
        scheduler = build_scheduler(jobs, plan)
        report = scheduler.run()
        reports[scenario] = (scheduler, report, plan)
        summary = report.summary()
        rows.append(
            [
                scenario,
                len(plan),
                summary["jobs"],
                summary["finished"],
                summary["failed"],
                round(summary["makespan_ms"], 1),
                summary["total_preemptions"],
                summary["devices_repaired"],
                round(summary["mttr_ms"], 1),
                round(summary["device_utilization"], 3),
            ]
        )
    return rows, reports


def run_kill_restore():
    jobs = build_workload()
    plan = fault_plans()["storm+rack"]
    reference = build_scheduler(jobs, plan)
    reference_report = reference.run()

    captured = {}

    def crash(scheduler: FleetScheduler) -> None:
        if scheduler._events_processed == KILL_AT_BOUNDARY:
            captured["snapshot"] = scheduler.checkpoint()
            raise SchedulerKilled(f"benchmark kill at boundary {KILL_AT_BOUNDARY}")

    doomed = build_scheduler(jobs, plan, FleetConfig(on_event=crash))
    try:
        doomed.run()
    except SchedulerKilled:
        pass
    snapshot = json.loads(json.dumps(captured["snapshot"]))
    restored = FleetScheduler.restore(
        snapshot,
        ClusterTopology.for_num_gpus(
            CLUSTER_GPUS, gpus_per_node=GPUS_PER_NODE, device_spec=FLEET_DEVICE
        ),
        {spec.name: spec for spec in jobs},
    )
    restored_report = restored.run()

    rows = []
    for mode, report in (
        ("uninterrupted", reference_report),
        ("killed+restored", restored_report),
    ):
        summary = report.summary()
        rows.append(
            [
                mode,
                summary["jobs"],
                summary["finished"],
                round(summary["makespan_ms"], 1),
                summary["total_preemptions"],
                summary["devices_repaired"],
                round(summary["mttr_ms"], 1),
            ]
        )
    return rows, (reference_report, restored_report, len(snapshot))


WORKLOAD_HEADERS = [
    "scenario", "faults", "jobs", "finished", "failed", "makespan_ms",
    "preemptions", "repairs", "mttr_ms", "utilization",
]

RESTORE_HEADERS = [
    "mode", "jobs", "finished", "makespan_ms", "preemptions", "repairs",
    "mttr_ms",
]


@pytest.mark.tier2_bench
def test_fleet_faults_bench(benchmark, capsys):
    rows, reports = benchmark.pedantic(run_fault_workloads, rounds=1, iterations=1)
    emit(
        "fleet_faults",
        f"Chaos harness: {NUM_JOBS} jobs on {CLUSTER_GPUS} GPUs "
        f"(2 racks), seeded storm (seed {STORM_SEED}) and a correlated "
        f"rack outage",
        WORKLOAD_HEADERS,
        rows,
        capsys,
    )
    for scenario, (scheduler, report, plan) in reports.items():
        # Every job terminal and no leaked devices, under every workload.
        for job in report.jobs:
            assert job.state in (JobState.FINISHED, JobState.FAILED), (scenario, job)
        scheduler.allocator.check_consistent()
        assert scheduler.allocator.busy_count == 0
        assert (
            scheduler.allocator.free_count == scheduler.allocator.alive_count
        ), scenario
    clean = reports["clean"][1]
    storm = reports["storm"][1]
    stormy_rack = reports["storm+rack"][1]
    assert clean.total_preemptions == 0
    assert clean.mttr_ms == 0.0
    # The storm actually preempted work and its repairs were accounted.
    assert storm.total_preemptions >= 1
    assert storm.devices_repaired >= 1
    assert storm.mttr_ms > 0.0
    assert len(storm.repair_durations_ms) == storm.devices_repaired
    # The rack outage adds correlated failures on top of the storm.
    rack_failures = [
        e for e in stormy_rack.capacity_timeline
        if e.event == "failure" and e.time_ms == RACK_OUTAGE_MS
    ]
    assert len(rack_failures) >= 1


@pytest.mark.tier2_bench
def test_fleet_kill_restore_bench(benchmark, capsys):
    rows, (reference, restored, snapshot_keys) = benchmark.pedantic(
        run_kill_restore, rounds=1, iterations=1
    )
    emit(
        "fleet_kill_restore",
        f"Kill/restore: storm+rack fleet crashed at event boundary "
        f"{KILL_AT_BOUNDARY}, restored from a {snapshot_keys}-key JSON "
        f"snapshot",
        RESTORE_HEADERS,
        rows,
        capsys,
    )
    # The restored run is bit-identical to the uninterrupted run.
    assert restored.jobs == reference.jobs
    assert restored.makespan_ms == reference.makespan_ms
    assert restored.busy_device_ms == reference.busy_device_ms
    assert restored.dead_device_ms == reference.dead_device_ms
    assert restored.capacity_timeline == reference.capacity_timeline
    assert restored.repair_durations_ms == reference.repair_durations_ms
    assert restored.trace.events == reference.trace.events
