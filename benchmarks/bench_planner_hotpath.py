"""Tier-2 micro-benchmark of the planner's DP hot path.

A solver-only regression guard for planning time: it exercises exactly the
vectorized fast path that dominates per-iteration planning — window-shape
table construction, the batched cost-model query over unique shapes, and
the dense-matrix DP — on a small model whose profile builds in about a
second, so the whole benchmark runs in seconds.  Run it with

    pytest benchmarks/bench_planner_hotpath.py --benchmark-disable -s

(or ``pytest benchmarks/ -m tier2_bench``) to catch planning-time
regressions without the full Fig. 17 sweep.  Besides timing, it asserts
that the vectorized partition matches the scalar reference path exactly.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.microbatch import DynamicMicroBatcher
from repro.costmodel.cost_model import CostModel
from repro.data.tasks import Sample
from repro.model.config import ModelArch, ModelConfig

from common import emit

#: Ceiling on the mean vectorized split time for the largest mini-batch.
#: The fast path runs it in well under 100 ms; the pre-vectorization scalar
#: chain took several seconds, so this catches order-of-magnitude
#: regressions with ample headroom for slow CI machines.
SPLIT_TIME_LIMIT_S = 1.0

MINIBATCH_SIZES = (64, 192, 448)
REPEATS = 3

BENCH_CONFIG = ModelConfig(
    name="gpt-bench-small",
    arch=ModelArch.GPT,
    num_layers=8,
    hidden_size=1024,
    num_heads=16,
    kv_channels=64,
    ffn_hidden_size=4096,
    vocab_size=32000,
)


def synthetic_minibatch(num_samples: int, seed: int) -> list[Sample]:
    """Seeded heavy-tailed sample lengths (mimicking the FLAN mixture)."""
    rng = np.random.default_rng(seed)
    lengths = np.clip(rng.lognormal(mean=5.0, sigma=0.8, size=num_samples), 8, 2040)
    return [Sample(input_tokens=int(n), target_tokens=0) for n in lengths]


def run():
    cost_model = CostModel(
        BENCH_CONFIG, num_stages=4, max_profile_batch_size=128, max_profile_seq_len=2048
    )
    rows = []
    for num_samples in MINIBATCH_SIZES:
        batcher = DynamicMicroBatcher(cost_model, tmax_sample_count=16)
        samples = synthetic_minibatch(num_samples, seed=num_samples)
        elapsed = []
        for repeat in range(REPEATS):
            # Fresh geometry per repeat: perturb one sample so the one-slot
            # geometry cache cannot serve the timing run.
            perturbed = list(samples)
            perturbed[0] = Sample(
                input_tokens=samples[0].input_tokens + repeat, target_tokens=0
            )
            start = time.perf_counter()
            batcher.split(perturbed)
            elapsed.append(time.perf_counter() - start)
        solution = batcher.last_solution
        rows.append(
            [
                num_samples,
                round(sum(elapsed) / len(elapsed), 4),
                round(max(elapsed), 4),
                solution.cost_evaluations,
                solution.num_microbatches,
            ]
        )

    # Correctness guard: the fast path must match the scalar reference.
    samples = synthetic_minibatch(MINIBATCH_SIZES[0], seed=7)
    fast = DynamicMicroBatcher(cost_model, tmax_sample_count=16, vectorized=True)
    slow = DynamicMicroBatcher(cost_model, tmax_sample_count=16, vectorized=False)
    fast.split(samples)
    slow.split(samples)
    assert fast.last_solution.boundaries == slow.last_solution.boundaries
    assert fast.last_solution.objective == slow.last_solution.objective
    return rows


HEADERS = [
    "minibatch_samples", "mean_split_s", "max_split_s",
    "dp_cost_evaluations", "num_microbatches",
]


@pytest.mark.tier2_bench
def test_planner_hotpath(benchmark, capsys):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "planner_hotpath",
        "Planner hot path: vectorized DP split time (solver only)",
        HEADERS,
        rows,
        capsys,
    )
    # Split time grows with the mini-batch but stays far below the scalar
    # regime; a regression to per-window Python cost evaluation trips this.
    mean_times = [row[1] for row in rows]
    assert mean_times[-1] < SPLIT_TIME_LIMIT_S
    # The DP evaluated a deduplicated shape set, not every window.
    for row in rows:
        num_samples, evaluations = row[0], row[3]
        max_windows = num_samples * min(num_samples, 256)
        assert 0 < evaluations <= max_windows
