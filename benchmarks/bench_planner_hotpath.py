"""Tier-2 micro-benchmark of the planner's DP hot path and planner pool.

A regression guard for planning time: it exercises the vectorized fast path
that dominates per-iteration planning — window-shape table construction, the
batched cost-model query over unique shapes, and the dense-matrix DP — plus
the process-backed :class:`~repro.runtime.planner_pool.PlannerPool`, on a
small model whose profile builds in about a second.  Run it with

    pytest benchmarks/bench_planner_hotpath.py --benchmark-disable -s

(or ``pytest benchmarks/ -m tier2_bench``) to catch planning-time
regressions without the full Fig. 17 sweep.  Besides timing, it asserts that
the vectorized partition matches the scalar reference path exactly and that
pooled plans are bit-identical to serial planning.

Set ``REPRO_BENCH_SMOKE=1`` to run a reduced workload with the timing
assertions relaxed — the smoke mode the tier-1 suite uses to keep these
benchmark files from silently rotting.  The multi-core speed-up assertion
additionally requires >= 4 CPU cores (the claim is about multi-core hosts).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.microbatch import DynamicMicroBatcher
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.costmodel.cost_model import CostModel
from repro.data.tasks import Sample
from repro.instructions.store import InstructionStore
from repro.model.config import ModelArch, ModelConfig
from repro.runtime.planner_pool import PlannerPool

from common import emit

#: Reduced workload + relaxed timing asserts (used as a tier-1 smoke check).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

#: Ceiling on the mean vectorized split time for the largest mini-batch.
#: The fast path runs it in well under 100 ms; the pre-vectorization scalar
#: chain took several seconds, so this catches order-of-magnitude
#: regressions with ample headroom for slow CI machines.
SPLIT_TIME_LIMIT_S = 1.0

MINIBATCH_SIZES = (64, 192) if SMOKE else (64, 192, 448)
REPEATS = 1 if SMOKE else 3

#: Planner-pool scaling: worker counts compared on the same iteration set.
POOL_WORKER_COUNTS = (1, 4)
POOL_ITERATIONS = 3 if SMOKE else 12
POOL_MINIBATCH_SAMPLES = 96 if SMOKE else 256
#: Required wall-clock speed-up of 4 workers over 1 on a multi-core host.
POOL_SPEEDUP_FLOOR = 2.0

BENCH_CONFIG = ModelConfig(
    name="gpt-bench-small",
    arch=ModelArch.GPT,
    num_layers=8,
    hidden_size=1024,
    num_heads=16,
    kv_channels=64,
    ffn_hidden_size=4096,
    vocab_size=32000,
)


def synthetic_minibatch(num_samples: int, seed: int) -> list[Sample]:
    """Seeded heavy-tailed sample lengths (mimicking the FLAN mixture)."""
    rng = np.random.default_rng(seed)
    lengths = np.clip(rng.lognormal(mean=5.0, sigma=0.8, size=num_samples), 8, 2040)
    return [Sample(input_tokens=int(n), target_tokens=0) for n in lengths]


def run():
    cost_model = CostModel(
        BENCH_CONFIG, num_stages=4, max_profile_batch_size=128, max_profile_seq_len=2048
    )
    rows = []
    for num_samples in MINIBATCH_SIZES:
        batcher = DynamicMicroBatcher(cost_model, tmax_sample_count=16)
        samples = synthetic_minibatch(num_samples, seed=num_samples)
        elapsed = []
        for repeat in range(REPEATS):
            # Fresh geometry per repeat: perturb one sample so the one-slot
            # geometry cache cannot serve the timing run.
            perturbed = list(samples)
            perturbed[0] = Sample(
                input_tokens=samples[0].input_tokens + repeat, target_tokens=0
            )
            start = time.perf_counter()
            batcher.split(perturbed)
            elapsed.append(time.perf_counter() - start)
        solution = batcher.last_solution
        rows.append(
            [
                num_samples,
                round(sum(elapsed) / len(elapsed), 4),
                round(max(elapsed), 4),
                solution.cost_evaluations,
                solution.num_microbatches,
            ]
        )

    # Correctness guard: the fast path must match the scalar reference.
    samples = synthetic_minibatch(MINIBATCH_SIZES[0], seed=7)
    fast = DynamicMicroBatcher(cost_model, tmax_sample_count=16, vectorized=True)
    slow = DynamicMicroBatcher(cost_model, tmax_sample_count=16, vectorized=False)
    fast.split(samples)
    slow.split(samples)
    assert fast.last_solution.boundaries == slow.last_solution.boundaries
    assert fast.last_solution.objective == slow.last_solution.objective
    return rows


HEADERS = [
    "minibatch_samples", "mean_split_s", "max_split_s",
    "dp_cost_evaluations", "num_microbatches",
]


@pytest.mark.tier2_bench
def test_planner_hotpath(benchmark, capsys):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "planner_hotpath",
        "Planner hot path: vectorized DP split time (solver only)",
        HEADERS,
        rows,
        capsys,
    )
    # Split time grows with the mini-batch but stays far below the scalar
    # regime; a regression to per-window Python cost evaluation trips this.
    mean_times = [row[1] for row in rows]
    if not SMOKE:
        assert mean_times[-1] < SPLIT_TIME_LIMIT_S
    # The DP evaluated a deduplicated shape set, not every window.
    for row in rows:
        num_samples, evaluations = row[0], row[3]
        max_windows = num_samples * min(num_samples, 256)
        assert 0 < evaluations <= max_windows


# --------------------------------------------------------------------- pool


def run_pool():
    """Plan the same iteration set with 1 and 4 worker processes.

    Returns one row per worker count: wall-clock time from pool start to the
    last plan landing in the store, the CPU time the workers spent planning,
    and the ratio of the two (> 1 means real parallelism).
    """
    cost_model = CostModel(
        BENCH_CONFIG, num_stages=4, max_profile_batch_size=128, max_profile_seq_len=2048
    )
    planner = DynaPipePlanner(
        cost_model, config=PlannerConfig(order_search=False, tmax_sample_count=16)
    )
    minibatches = [
        synthetic_minibatch(POOL_MINIBATCH_SAMPLES, seed=100 + i)
        for i in range(POOL_ITERATIONS)
    ]
    rows = []
    wall: dict[int, float] = {}
    stores: dict[int, InstructionStore] = {}
    for workers in POOL_WORKER_COUNTS:
        store = InstructionStore()
        pool = PlannerPool(
            planner=planner,
            minibatches=minibatches,
            store=store,
            num_workers=workers,
            lookahead=len(minibatches),
        )
        start = time.perf_counter()
        pool.start()
        deadline = start + 600
        while (
            len(pool.planned_iterations()) < len(minibatches)
            and time.perf_counter() < deadline
        ):
            time.sleep(0.005)
        elapsed = time.perf_counter() - start
        abandoned = pool.stop()
        assert not pool.errors, pool.errors
        assert not abandoned, abandoned
        wall[workers] = elapsed
        stores[workers] = store
        planning_cpu = sum(record.planning_time_s for record in pool.records)
        rows.append([workers, round(elapsed, 3), round(planning_cpu, 3),
                     round(planning_cpu / elapsed, 2)])

    # Correctness guards: every worker count produced plans that match
    # serial (in-process) planning bit for bit, for every iteration — the
    # later iterations are the ones planned under contention.
    for iteration, minibatch in enumerate(minibatches):
        reference = planner.plan(list(minibatch), iteration=iteration).plans[0].to_dict()
        for workers, store in stores.items():
            stored = store.fetch(iteration, 0)
            reference["metadata"]["planning_time_s"] = stored["metadata"]["planning_time_s"]
            assert stored == reference, (
                f"pooled plan (iteration {iteration}, {workers} workers) != serial plan"
            )

    speedup = wall[POOL_WORKER_COUNTS[0]] / wall[POOL_WORKER_COUNTS[-1]]
    rows.append(["speedup_4v1", round(speedup, 2), "", ""])
    return rows, speedup


POOL_HEADERS = ["workers", "wall_s", "planning_cpu_s", "parallelism"]


@pytest.mark.tier2_bench
def test_planner_pool_scaling(benchmark, capsys):
    rows, speedup = benchmark.pedantic(run_pool, rounds=1, iterations=1)
    emit(
        "planner_pool_scaling",
        "Planner pool: wall-clock planning time vs worker processes",
        POOL_HEADERS,
        rows,
        capsys,
    )
    # The paper's Fig. 17 overlap claim needs *real* parallel speed-up from
    # extra planner workers; single-core hosts (and the smoke mode) only run
    # the correctness guards inside run_pool().
    if not SMOKE and (os.cpu_count() or 1) >= 4:
        assert speedup >= POOL_SPEEDUP_FLOOR, (
            f"4 planner workers only {speedup:.2f}x faster than 1 "
            f"(need >= {POOL_SPEEDUP_FLOOR}x)"
        )
