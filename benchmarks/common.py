"""Shared infrastructure for the benchmark harnesses.

Every benchmark regenerates one of the paper's tables or figures on the
simulated cluster.  Because the planner is exercised with the real Table-1
model configurations, a full paper-scale sweep would take hours; the default
scope is therefore scaled down the same way the paper's artifact evaluation
is (single-node cluster sizes, a down-sampled dataset, one or two iterations
per data point).  Set the environment variable ``REPRO_BENCH_FULL=1`` to
also cover the 16- and 32-GPU configurations.

Results are printed as tables (mirroring the figure series of the paper) and
written as JSON under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Sequence

from repro.baselines.mlm_ds import BaselineConfig, MLMDeepSpeedBaseline
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.core.recomputation import OutOfMemoryError
from repro.costmodel.cost_model import CostModel
from repro.data.flan import SyntheticFlanDataset
from repro.data.sampler import MiniBatchSampler
from repro.data.truncation import truncate_samples
from repro.model.config import ModelArch, get_model_config
from repro.model.memory import RecomputeMode
from repro.parallel.config import ParallelConfig
from repro.training.trainer import TrainerConfig, TrainingSession

RESULTS_DIR = Path(__file__).parent / "results"

#: Number of synthetic samples in the benchmark dataset (paper: 100 K).
DATASET_SIZE = int(os.environ.get("REPRO_BENCH_DATASET", "20000"))
#: Iterations measured per data point.
ITERATIONS_PER_POINT = int(os.environ.get("REPRO_BENCH_ITERATIONS", "1"))
#: Whether to include the multi-node (16/32 GPU) configurations.
FULL_SCOPE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def _default_planner_processes() -> int:
    """Planner-pool workers for the DynaPipe sessions (0 = inline planning).

    Multi-core hosts running multi-iteration sweeps plan through a
    process-backed :class:`~repro.runtime.planner_pool.PlannerPool` (plans
    are bit-identical to inline planning, so the figures are unchanged);
    single-core hosts and single-iteration points skip the pool, whose
    spawn overhead would then exceed the planning it parallelises.
    """
    if (os.cpu_count() or 1) < 4 or ITERATIONS_PER_POINT < 2:
        return 0
    return 4


#: Planner-pool workers used by the DynaPipe training sessions; override
#: with ``REPRO_BENCH_PLANNER_PROCS`` (0 forces inline planning).
PLANNER_PROCESSES = int(
    os.environ.get("REPRO_BENCH_PLANNER_PROCS", str(_default_planner_processes()))
)

#: Cluster sizes covered by default (single p4d node, as in the artifact) and
#: under the full scope.
DEFAULT_CLUSTER_SIZES = (4, 8)
FULL_CLUSTER_SIZES = (4, 8, 16, 32)

#: The paper's default global batch size (in tokens) for the sequence-length
#: sweeps (§8.1).
GLOBAL_BATCH_TOKENS_DEFAULT = 65536


def cluster_sizes() -> tuple[int, ...]:
    """Cluster sizes included in the current benchmark scope."""
    return FULL_CLUSTER_SIZES if FULL_SCOPE else DEFAULT_CLUSTER_SIZES


#: Candidate 3D parallel configurations per (arch, num_gpus).  The paper grid
#: searches the full power-of-two space for every system; here a short list of
#: the configurations that grid search actually lands on (plus close
#: runners-up) is searched per data point, which keeps the harness fast while
#: preserving the "each system under its best configuration" methodology.
#: GPT favours pipeline parallelism; T5's huge FFN favours tensor parallelism
#: (§8.2, §8.4).
PARALLEL_CANDIDATES: dict[tuple[str, int], tuple[ParallelConfig, ...]] = {
    ("gpt", 4): (ParallelConfig(1, 4, 1), ParallelConfig(2, 2, 1), ParallelConfig(1, 2, 2)),
    ("gpt", 8): (ParallelConfig(2, 4, 1), ParallelConfig(2, 2, 2), ParallelConfig(1, 4, 2)),
    ("gpt", 16): (ParallelConfig(2, 4, 2), ParallelConfig(4, 2, 2), ParallelConfig(2, 2, 4)),
    ("gpt", 32): (ParallelConfig(2, 4, 4), ParallelConfig(4, 2, 4), ParallelConfig(4, 4, 2)),
    ("t5", 4): (ParallelConfig(1, 1, 4), ParallelConfig(1, 2, 2), ParallelConfig(2, 1, 2)),
    ("t5", 8): (ParallelConfig(1, 1, 8), ParallelConfig(2, 1, 4), ParallelConfig(1, 2, 4)),
    ("t5", 16): (ParallelConfig(2, 1, 8), ParallelConfig(2, 2, 4), ParallelConfig(1, 4, 4)),
    ("t5", 32): (ParallelConfig(2, 2, 8), ParallelConfig(4, 1, 8), ParallelConfig(2, 4, 4)),
}


def parallel_candidates(arch: str, num_gpus: int) -> tuple[ParallelConfig, ...]:
    """Candidate configurations searched for a (model, cluster) pair."""
    return PARALLEL_CANDIDATES[(arch, num_gpus)]

#: Baseline micro-batch sizes tried per data point (its packing rows are all
#: max_seq_len long, so small micro-batches dominate the feasible set).
BASELINE_MICRO_BATCH_SIZES = (1, 2, 4)


@lru_cache(maxsize=1)
def dataset() -> SyntheticFlanDataset:
    """The shared synthetic FLANv2-like dataset."""
    return SyntheticFlanDataset(num_samples=DATASET_SIZE, seed=2024)


@lru_cache(maxsize=32)
def truncated_samples(max_seq_len: int, decoder_only: bool) -> tuple:
    """Dataset samples truncated for the given maximum sequence length."""
    return tuple(truncate_samples(dataset().samples, max_seq_len, decoder_only=decoder_only))


@lru_cache(maxsize=64)
def cost_model(arch: str, num_gpus: int, pipeline: int, tensor: int, zero: int, max_seq_len: int) -> CostModel:
    """Cached cost model for a Table-1 model under a parallel configuration."""
    model = get_model_config(arch, num_gpus)
    return CostModel(
        model,
        num_stages=pipeline,
        tensor_parallel=tensor,
        zero_shards=zero,
        max_profile_seq_len=max(max_seq_len, 512),
        max_profile_batch_size=128,
    )


@dataclass
class PointResult:
    """Throughput measurement for one (system, x-value) data point."""

    system: str
    x_value: float
    throughput: float
    padding_efficiency: float
    encoder_padding_efficiency: float = 0.0
    decoder_padding_efficiency: float | None = None
    planning_time_s: float = 0.0
    planning_ratio: float = 0.0
    time_mpe: float = 0.0
    memory_mpe: float = 0.0
    detail: str = ""


def _run_session(
    planner,
    samples,
    global_batch_tokens: int,
    system: str,
    execute: bool,
    planner_processes: int = 0,
) -> PointResult:
    session = TrainingSession(
        planner,
        list(samples),
        global_batch_tokens=global_batch_tokens,
        config=TrainerConfig(
            max_iterations=ITERATIONS_PER_POINT,
            noise_std=0.05,
            seed=0,
            max_seq_len=None,  # samples are already truncated
            execute_plans=execute,
            planner_processes=planner_processes,
        ),
        system_name=system,
    )
    report = session.run()
    return PointResult(
        system=system,
        x_value=0.0,
        throughput=report.throughput_tokens_per_s,
        padding_efficiency=report.padding_efficiency,
        encoder_padding_efficiency=report.encoder_padding_efficiency,
        decoder_padding_efficiency=report.decoder_padding_efficiency,
        planning_time_s=report.mean_planning_time_s,
        planning_ratio=report.planning_to_iteration_ratio,
        time_mpe=report.time_prediction_error_percent(),
        memory_mpe=report.memory_prediction_error_percent(),
    )


def _dynapipe_single(
    arch: str,
    num_gpus: int,
    max_seq_len: int,
    global_batch_tokens: int,
    config: ParallelConfig,
    execute: bool,
    order_search: bool,
) -> PointResult:
    decoder_only = ModelArch(arch) is ModelArch.GPT
    samples = truncated_samples(max_seq_len, decoder_only)
    cm = cost_model(
        arch, num_gpus, config.pipeline_parallel, config.tensor_parallel,
        config.data_parallel, max_seq_len,
    )
    try:
        planner = DynaPipePlanner(
            cm,
            data_parallel_size=config.data_parallel,
            config=PlannerConfig(order_search=order_search, tmax_sample_count=16),
        )
        result = _run_session(
            planner, samples, global_batch_tokens, "DynaPipe", execute,
            planner_processes=PLANNER_PROCESSES,
        )
    except OutOfMemoryError as exc:
        return PointResult(
            system="DynaPipe", x_value=0.0, throughput=0.0, padding_efficiency=0.0,
            detail=f"{config.describe()} OOM: {exc}",
        )
    result.detail = config.describe()
    return result


def dynapipe_point(
    arch: str,
    num_gpus: int,
    max_seq_len: int,
    global_batch_tokens: int,
    parallel: ParallelConfig | None = None,
    execute: bool = True,
    order_search: bool = False,
) -> PointResult:
    """Measure DynaPipe at one data point under its best candidate parallel
    configuration (paper methodology: every system is reported under its own
    grid-searched configuration)."""
    if parallel is not None:
        return _dynapipe_single(
            arch, num_gpus, max_seq_len, global_batch_tokens, parallel, execute, order_search
        )
    best: PointResult | None = None
    for config in parallel_candidates(arch, num_gpus):
        result = _dynapipe_single(
            arch, num_gpus, max_seq_len, global_batch_tokens, config, execute, order_search
        )
        if best is None or result.throughput > best.throughput:
            best = result
    assert best is not None
    return best


def _baseline_single(
    arch: str,
    num_gpus: int,
    max_seq_len: int,
    global_batch_tokens: int,
    config: ParallelConfig,
    execute: bool,
    system: str,
    micro_batch_sizes: Sequence[int],
) -> PointResult:
    decoder_only = ModelArch(arch) is ModelArch.GPT
    samples = truncated_samples(max_seq_len, decoder_only)
    cm = cost_model(
        arch, num_gpus, config.pipeline_parallel, config.tensor_parallel,
        config.data_parallel, max_seq_len,
    )
    best: PointResult | None = None
    for micro_batch_size in micro_batch_sizes:
        for recompute in (RecomputeMode.NONE, RecomputeMode.FULL):
            try:
                baseline = MLMDeepSpeedBaseline(
                    cm,
                    data_parallel_size=config.data_parallel,
                    config=BaselineConfig(
                        max_seq_len=max_seq_len,
                        micro_batch_size=micro_batch_size,
                        recompute=recompute,
                    ),
                )
                result = _run_session(baseline, samples, global_batch_tokens, system, execute)
            except (OutOfMemoryError, ValueError):
                continue
            result.detail = f"{config.describe()} mbs={micro_batch_size} recompute={recompute.value}"
            if best is None or result.throughput > best.throughput:
                best = result
    if best is None:
        return PointResult(
            system=system, x_value=0.0, throughput=0.0, padding_efficiency=0.0,
            detail=f"{config.describe()} OOM",
        )
    return best


def baseline_point(
    arch: str,
    num_gpus: int,
    max_seq_len: int,
    global_batch_tokens: int,
    parallel: ParallelConfig | None = None,
    execute: bool = True,
    system: str = "MLM+DS",
    micro_batch_sizes: Sequence[int] = BASELINE_MICRO_BATCH_SIZES,
) -> PointResult:
    """Measure the packing baseline at one data point, grid searching its
    parallel configuration, micro-batch size and recomputation strategy.
    Returns zero throughput when every candidate OOMs.

    Pass ``parallel`` to pin the configuration — this is the paper's
    "MLM+DS (c)" variant, which runs the baseline under DynaPipe's best
    configuration instead of its own.
    """
    if parallel is not None:
        return _baseline_single(
            arch, num_gpus, max_seq_len, global_batch_tokens, parallel, execute, system,
            micro_batch_sizes,
        )
    best: PointResult | None = None
    for config in parallel_candidates(arch, num_gpus):
        result = _baseline_single(
            arch, num_gpus, max_seq_len, global_batch_tokens, config, execute, system,
            micro_batch_sizes,
        )
        if best is None or result.throughput > best.throughput:
            best = result
    assert best is not None
    return best


# --------------------------------------------------------------------------- output


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Format a result table the way the paper's figures report their series."""
    widths = [len(str(h)) for h in headers]
    text_rows = []
    for row in rows:
        cells = [
            f"{value:.3f}" if isinstance(value, float) else str(value) for value in row
        ]
        text_rows.append(cells)
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for cells in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def emit(name: str, title: str, headers: Sequence[str], rows: Sequence[Sequence], capsys=None) -> str:
    """Print a table (bypassing capture when possible) and save it as JSON."""
    table = format_table(title, headers, rows)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "title": title,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
    }
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=2))
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    if capsys is not None:
        with capsys.disabled():
            print("\n" + table)
    else:  # pragma: no cover - fallback when no capsys fixture is available
        print("\n" + table)
    return table
