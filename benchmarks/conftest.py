"""Benchmark-suite configuration.

Makes the shared ``common`` helpers importable when pytest is invoked from
the repository root (``pytest benchmarks/ --benchmark-only``) and registers
the ``tier2_bench`` marker for the quick regression benchmarks
(``pytest benchmarks/ -m tier2_bench``), which run in seconds and guard the
planner hot path without the full figure sweeps.
"""

from __future__ import annotations

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "tier2_bench: quick (seconds-scale) planner hot-path regression "
        "benchmarks, runnable without the full figure sweeps",
    )
