"""Benchmark-suite configuration.

Makes the shared ``common`` helpers importable when pytest is invoked from
the repository root (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))
