"""Figure 17 — execution planning time.

Single-thread wall-clock time of the DynaPipe planner per training iteration
as the global batch size grows, for GPT and T5, plus the ratio of planning
time to the (simulated) iteration time.  The paper's point: planning takes
up to tens of seconds per iteration but the ratio to iteration time is small
enough (≤ ~13×) that planning can be fully overlapped with training using a
modest number of CPU cores.
"""

from __future__ import annotations

import pytest

from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.data.sampler import MiniBatchSampler

from common import cost_model, emit, parallel_candidates, truncated_samples

MAX_SEQ_LEN = 2048
GLOBAL_BATCHES = (16384, 32768, 65536, 131072)
MINIBATCHES_PER_POINT = 2


def run(arch: str):
    config = parallel_candidates(arch, 8)[0]
    cm = cost_model(
        arch, 8, config.pipeline_parallel, config.tensor_parallel, config.data_parallel,
        MAX_SEQ_LEN,
    )
    planner = DynaPipePlanner(
        cm,
        data_parallel_size=config.data_parallel,
        config=PlannerConfig(order_search=True, tmax_sample_count=16),
    )
    samples = truncated_samples(MAX_SEQ_LEN, arch == "gpt")
    rows = []
    for global_batch in GLOBAL_BATCHES:
        sampler = MiniBatchSampler(list(samples), global_batch, seed=0)
        planning_times, ratios, cost_evals = [], [], []
        for index, minibatch in enumerate(sampler.epoch(0)):
            if index >= MINIBATCHES_PER_POINT:
                break
            plan = planner.plan(minibatch.samples, iteration=index)
            planning_times.append(plan.planning_time_s)
            ratios.append(plan.planning_time_s * 1e3 / plan.predicted_iteration_ms)
            cost_evals.append(plan.dp_solution.cost_evaluations)
        rows.append(
            [
                arch.upper(),
                global_batch,
                round(sum(planning_times) / len(planning_times), 3),
                round(max(planning_times), 3),
                round(sum(ratios) / len(ratios), 2),
                int(sum(cost_evals) / len(cost_evals)),
            ]
        )
    return rows


HEADERS = [
    "model", "global_batch_tokens", "mean_planning_s", "max_planning_s",
    "planning/iteration ratio", "dp_cost_evaluations",
]


@pytest.mark.parametrize("arch", ["gpt", "t5"])
def test_fig17_planning_time(benchmark, capsys, arch):
    rows = benchmark.pedantic(run, args=(arch,), rounds=1, iterations=1)
    emit(
        f"fig17_planning_time_{arch}",
        f"Fig. 17: per-iteration planning time — {arch.upper()} (single thread)",
        HEADERS,
        rows,
        capsys,
    )
    # Planning time grows with the global batch size (more samples to partition).
    mean_times = [row[2] for row in rows]
    assert mean_times[-1] >= mean_times[0]
    # The planning-to-iteration ratio stays small enough to overlap planning
    # with execution on a handful of CPU cores (paper: peaks at ~13x).
    assert all(row[4] < 30.0 for row in rows)
