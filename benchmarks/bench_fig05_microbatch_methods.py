"""Figure 5 — throughput of token-based and fixed-size micro-batching,
normalized to the DP-based micro-batching solution, per maximum sequence
length.

For every maximum sequence length the token budget (left panels) or the
micro-batch size (right panels) is swept, and each point's modelled
throughput is normalised by the throughput of the dynamic-programming
partition on the same mini-batch.  Configurations whose peak activation
memory exceeds the device budget are marked OOM (throughput 0), reproducing
the paper's observation that fixed-size micro-batching OOMs before reaching
its best throughput at long sequence lengths.
"""

from __future__ import annotations

import pytest

from repro.batching.fixed_size import FixedSizeBatching
from repro.batching.token_based import TokenBasedBatching, sort_by_length
from repro.core.dp_solver import PartitionError
from repro.core.microbatch import DynamicMicroBatcher
from repro.data.sampler import MiniBatchSampler
from repro.model.memory import RecomputeMode

from common import GLOBAL_BATCH_TOKENS_DEFAULT, cost_model, emit, truncated_samples

SEQ_LENS_GPT = (512, 1024, 2048, 4096, 8192)
TOKEN_BUDGETS = (1024, 2048, 4096, 8192, 16384)
MICRO_BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64)
NUM_GPUS = 4
PIPELINE_STAGES = 4


def _first_minibatch(max_seq_len: int):
    samples = truncated_samples(max_seq_len, True)
    sampler = MiniBatchSampler(list(samples), GLOBAL_BATCH_TOKENS_DEFAULT, seed=0)
    return next(iter(sampler)).samples


def _modelled_throughput(cm, micro_batches, recompute) -> float:
    """Tokens/s under the Eq. 1 iteration-time model, or 0 on predicted OOM."""
    shapes = [mb.shape() for mb in micro_batches]
    peak = cm.peak_memory_bytes(shapes, in_flight=cm.num_stages, recompute=recompute)
    if peak > cm.device_spec.memory_capacity:
        return 0.0
    actual_tokens = sum(mb.actual_tokens() for mb in micro_batches)
    time_ms = cm.iteration_time_ms(shapes, recompute)
    return actual_tokens / (time_ms / 1e3) if time_ms > 0 else 0.0


def _dp_split(cm, minibatch):
    """DP partition under the cheapest recomputation mode that is feasible
    (mirrors the planner's dynamic recomputation)."""
    for mode in (RecomputeMode.NONE, RecomputeMode.SELECTIVE, RecomputeMode.FULL):
        try:
            result = DynamicMicroBatcher(cm, recompute=mode, tmax_sample_count=16).split(minibatch)
            return result, mode
        except PartitionError:
            continue
    raise PartitionError("no recomputation mode admits single-sample micro-batches")


def run():
    rows = []
    for max_seq_len in SEQ_LENS_GPT:
        cm = cost_model("gpt", NUM_GPUS, PIPELINE_STAGES, 1, 1, max_seq_len)
        minibatch = _first_minibatch(max_seq_len)
        dp_result, mode = _dp_split(cm, minibatch)
        dp_throughput = _modelled_throughput(cm, dp_result.micro_batches, mode)
        for budget in TOKEN_BUDGETS:
            tb = TokenBasedBatching(budget, decoder_only=True).split(minibatch)
            rows.append(
                [
                    "token-based", max_seq_len, budget,
                    round(_modelled_throughput(cm, tb.micro_batches, mode) / dp_throughput, 3),
                ]
            )
        for micro_batch_size in MICRO_BATCH_SIZES:
            fixed = FixedSizeBatching(
                micro_batch_size, decoder_only=True, ordering=sort_by_length
            ).split(minibatch)
            rows.append(
                [
                    "fixed-size", max_seq_len, micro_batch_size,
                    round(_modelled_throughput(cm, fixed.micro_batches, mode) / dp_throughput, 3),
                ]
            )
    return rows


def test_fig05_microbatch_methods(benchmark, capsys):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig05_microbatch_methods",
        "Fig. 5 (GPT): token-based / fixed-size micro-batching throughput normalized to the DP solution",
        ["method", "max_seq_len", "parameter", "normalized_throughput"],
        rows,
        capsys,
    )
    normalized = [row[3] for row in rows]
    # No swept configuration beats the DP solution by a meaningful margin.
    assert max(normalized) <= 1.05
    # Fixed-size micro-batching OOMs at large sizes and long sequence lengths.
    ooms = [row for row in rows if row[0] == "fixed-size" and row[1] >= 4096 and row[3] == 0.0]
    assert ooms
    # The best token-based configuration comes close to the DP solution but
    # the worst one is far off (the paper's point: the parameter matters).
    token_rows = [row[3] for row in rows if row[0] == "token-based" and row[3] > 0]
    assert max(token_rows) >= 0.8
    assert min(token_rows) <= 0.8
