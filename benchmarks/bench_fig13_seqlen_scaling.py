"""Figure 13 — training throughput under maximum-sequence-length scaling.

For every (model, cluster size) pair the global batch size is fixed at
65536 tokens and the maximum sequence length sweeps 512…8192 (GPT) or
512…4096 (T5).  Three systems are reported, as in the paper:

* ``MLM+DS``      — the packing baseline under its own best configuration;
* ``MLM+DS (c)``  — the packing baseline pinned to DynaPipe's configuration;
* ``DynaPipe``    — dynamic micro-batching under its best configuration.

By default only the single-node cluster sizes (4 and 8 GPUs — the sub-figures
the paper's artifact can reproduce on one p4d node) are run; set
``REPRO_BENCH_FULL=1`` for 16 and 32 GPUs.

On multi-core hosts with ``REPRO_BENCH_ITERATIONS >= 2`` the DynaPipe
sessions plan through a process-backed planner pool
(``TrainerConfig.planner_processes``; override with
``REPRO_BENCH_PLANNER_PROCS``), cutting the sweep's wall-clock time without
changing the figures — pooled plans are bit-identical to inline planning.
"""

from __future__ import annotations

import pytest

from common import (
    GLOBAL_BATCH_TOKENS_DEFAULT,
    baseline_point,
    cluster_sizes,
    dynapipe_point,
    emit,
)

GPT_SEQ_LENS = (512, 1024, 2048, 4096, 8192)
T5_SEQ_LENS = (512, 1024, 2048, 4096)


def run(arch: str, num_gpus: int):
    seq_lens = GPT_SEQ_LENS if arch == "gpt" else T5_SEQ_LENS
    rows = []
    for seq_len in seq_lens:
        dyna = dynapipe_point(arch, num_gpus, seq_len, GLOBAL_BATCH_TOKENS_DEFAULT)
        dyna_config = None
        from repro.parallel.config import ParallelConfig

        if dyna.detail and dyna.detail.startswith("dp"):
            dp, pp, tp = (int(part[2:]) for part in dyna.detail.split()[0].split("-"))
            dyna_config = ParallelConfig(dp, pp, tp)
        base = baseline_point(arch, num_gpus, seq_len, GLOBAL_BATCH_TOKENS_DEFAULT)
        base_c = baseline_point(
            arch, num_gpus, seq_len, GLOBAL_BATCH_TOKENS_DEFAULT,
            parallel=dyna_config, system="MLM+DS (c)",
        )
        speedup = dyna.throughput / base.throughput if base.throughput > 0 else float("inf")
        rows.append(
            [
                f"{arch.upper()}@{num_gpus}GPU",
                seq_len,
                round(base_c.throughput),
                round(base.throughput),
                round(dyna.throughput),
                round(speedup, 2),
                dyna.detail,
                base.detail,
            ]
        )
    return rows


HEADERS = [
    "model", "max_seq_len", "MLM+DS (c) tok/s", "MLM+DS tok/s", "DynaPipe tok/s",
    "speedup", "dynapipe_config", "baseline_config",
]


@pytest.mark.parametrize("arch", ["gpt", "t5"])
@pytest.mark.parametrize("num_gpus", cluster_sizes())
def test_fig13_seqlen_scaling(benchmark, capsys, arch, num_gpus):
    rows = benchmark.pedantic(run, args=(arch, num_gpus), rounds=1, iterations=1)
    emit(
        f"fig13_seqlen_scaling_{arch}_{num_gpus}gpu",
        f"Fig. 13: throughput vs max sequence length — {arch.upper()} on {num_gpus} GPUs",
        HEADERS,
        rows,
        capsys,
    )
    # DynaPipe's advantage grows with the maximum sequence length and it wins
    # clearly at the longest lengths (the paper's headline trend).  At short
    # maximum lengths packing is competitive, so only near-parity is required
    # there.
    speedups = [row[5] for row in rows]
    assert all(s >= 0.85 for s in speedups)
    assert speedups[-1] >= speedups[0]
    assert speedups[-1] >= 1.1
    # DynaPipe's own throughput decays slowly with the maximum sequence length.
    dyna = [row[4] for row in rows]
    assert dyna[-1] > 0.4 * dyna[0]
