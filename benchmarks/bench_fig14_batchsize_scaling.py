"""Figure 14 — training throughput under global-batch-size scaling.

The maximum sequence length is fixed at 2048 tokens and the global batch
size sweeps 16 Ki…128 Ki tokens.  The same three systems as Fig. 13 are
reported.  Larger global batches help both systems (less frequent gradient
synchronisation, smaller relative pipeline bubble) and help DynaPipe more
(more room for micro-batch optimisation).

On multi-core hosts with ``REPRO_BENCH_ITERATIONS >= 2`` the DynaPipe
sessions plan through a process-backed planner pool
(``TrainerConfig.planner_processes``; override with
``REPRO_BENCH_PLANNER_PROCS``), cutting the sweep's wall-clock time without
changing the figures — pooled plans are bit-identical to inline planning.
"""

from __future__ import annotations

import pytest

from repro.parallel.config import ParallelConfig

from common import baseline_point, cluster_sizes, dynapipe_point, emit

MAX_SEQ_LEN = 2048
GLOBAL_BATCH_SIZES = (16384, 32768, 65536, 131072)


def run(arch: str, num_gpus: int):
    rows = []
    for global_batch in GLOBAL_BATCH_SIZES:
        dyna = dynapipe_point(arch, num_gpus, MAX_SEQ_LEN, global_batch)
        dyna_config = None
        if dyna.detail and dyna.detail.startswith("dp"):
            dp, pp, tp = (int(part[2:]) for part in dyna.detail.split()[0].split("-"))
            dyna_config = ParallelConfig(dp, pp, tp)
        base = baseline_point(arch, num_gpus, MAX_SEQ_LEN, global_batch)
        base_c = baseline_point(
            arch, num_gpus, MAX_SEQ_LEN, global_batch, parallel=dyna_config,
            system="MLM+DS (c)",
        )
        speedup = dyna.throughput / base.throughput if base.throughput > 0 else float("inf")
        rows.append(
            [
                f"{arch.upper()}@{num_gpus}GPU",
                global_batch,
                round(base_c.throughput),
                round(base.throughput),
                round(dyna.throughput),
                round(speedup, 2),
            ]
        )
    return rows


HEADERS = [
    "model", "global_batch_tokens", "MLM+DS (c) tok/s", "MLM+DS tok/s",
    "DynaPipe tok/s", "speedup",
]


@pytest.mark.parametrize("arch", ["gpt", "t5"])
@pytest.mark.parametrize("num_gpus", cluster_sizes())
def test_fig14_batchsize_scaling(benchmark, capsys, arch, num_gpus):
    rows = benchmark.pedantic(run, args=(arch, num_gpus), rounds=1, iterations=1)
    emit(
        f"fig14_batchsize_scaling_{arch}_{num_gpus}gpu",
        f"Fig. 14: throughput vs global batch size — {arch.upper()} on {num_gpus} GPUs",
        HEADERS,
        rows,
        capsys,
    )
    # DynaPipe is at least on par with the baseline at every batch size.
    assert all(row[5] >= 0.95 for row in rows)
    # DynaPipe's throughput does not degrade when the global batch size grows.
    dyna = [row[4] for row in rows]
    assert dyna[-1] >= dyna[0] * 0.9
