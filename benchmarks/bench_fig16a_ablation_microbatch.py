"""Figure 16a — ablation of micro-batch construction methods.

T5-11B on 8 GPUs, maximum sequence length 4096, global batch size 65536
tokens; the grid-searched best parallelism for this setting uses no
pipelining (the paper makes the same observation), which isolates the
micro-batching method.  Five methods are compared:

* ``MLM+DS`` — packing;
* ``TB (S)`` / ``TB (T)`` — token-based micro-batching with sorted / TSP
  sample ordering (token budget grid searched);
* ``DP (S)`` / ``DP (T)`` — DynaPipe's DP construction with sorted / TSP
  sample ordering.
"""

from __future__ import annotations

from repro.batching.packing import PackingBatching
from repro.batching.token_based import TokenBasedBatching
from repro.core.microbatch import DynamicMicroBatcher
from repro.core.ordering import OrderingMethod, order_samples
from repro.data.sampler import MiniBatchSampler
from repro.model.memory import RecomputeMode

from common import cost_model, emit, truncated_samples

NUM_GPUS = 8
MAX_SEQ_LEN = 4096
GLOBAL_BATCH_TOKENS = 65536
TOKEN_BUDGETS = (2048, 4096, 8192, 16384)
NUM_MINIBATCHES = 2


def _minibatches():
    samples = truncated_samples(MAX_SEQ_LEN, False)
    sampler = MiniBatchSampler(list(samples), GLOBAL_BATCH_TOKENS, seed=0)
    batches = []
    for minibatch in sampler.epoch(0):
        batches.append(minibatch.samples)
        if len(batches) >= NUM_MINIBATCHES:
            break
    return batches


def _throughput(cm, micro_batches) -> float:
    shapes = [mb.shape() for mb in micro_batches]
    actual_tokens = sum(mb.actual_tokens() for mb in micro_batches)
    time_ms = cm.iteration_time_ms(shapes, RecomputeMode.NONE)
    return actual_tokens / (time_ms / 1e3) if time_ms > 0 else 0.0


def run():
    # The no-pipelining configuration (tp=8) mirrors the paper's observation
    # that the optimal parallelism for this setting does not use pipelining.
    cm = cost_model("t5", NUM_GPUS, 1, 8, 1, MAX_SEQ_LEN)
    minibatches = _minibatches()

    def mean_throughput(split_fn) -> float:
        values = []
        for samples in minibatches:
            values.append(_throughput(cm, split_fn(samples)))
        return sum(values) / len(values)

    results = {}
    results["MLM+DS"] = mean_throughput(
        lambda samples: PackingBatching(MAX_SEQ_LEN, micro_batch_size=2).split(samples).micro_batches
    )
    for label, method in (("TB (S)", OrderingMethod.SORT), ("TB (T)", OrderingMethod.TSP)):
        best = 0.0
        for budget in TOKEN_BUDGETS:
            value = mean_throughput(
                lambda samples, budget=budget, method=method: TokenBasedBatching(
                    budget, ordering=lambda s: order_samples(s, method)
                ).split(samples).micro_batches
            )
            best = max(best, value)
        results[label] = best
    for label, method in (("DP (S)", OrderingMethod.SORT), ("DP (T)", OrderingMethod.TSP)):
        results[label] = mean_throughput(
            lambda samples, method=method: DynamicMicroBatcher(
                cm, ordering=method, tmax_sample_count=16
            ).split(samples).micro_batches
        )
    return [[name, round(value)] for name, value in results.items()]


def test_fig16a_ablation_microbatching(benchmark, capsys):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig16a_ablation_microbatch",
        "Fig. 16a: micro-batching method ablation — T5-11B, 8 GPUs, max seq 4096 (modelled tokens/s)",
        ["method", "throughput_tokens_per_s"],
        rows,
        capsys,
    )
    by_name = dict(rows)
    # Token-based batching already beats packing; the DP construction beats
    # (or at least matches) the best token-based configuration.
    assert by_name["TB (S)"] > by_name["MLM+DS"]
    assert by_name["DP (S)"] >= 0.98 * by_name["TB (S)"]
    assert by_name["DP (S)"] > by_name["MLM+DS"]
    # Sorting vs TSP ordering makes little difference (paper §8.4).
    assert abs(by_name["DP (S)"] - by_name["DP (T)"]) / by_name["DP (S)"] < 0.1
    assert abs(by_name["TB (S)"] - by_name["TB (T)"]) / by_name["TB (S)"] < 0.15
