"""Tier-2 benchmark of telemetry overhead: disabled vs enabled.

Two workloads, timed once with telemetry disabled (the default) and once
with the flag on:

* **Fig. 7-style sweep row** — the compiled engine's batched re-simulation
  sweep from ``bench_sim_engine`` (one geometry compile, one batched wave
  solve over all duration tables).  The sweep's inner loop carries no
  span/event sites, so the enabled run must track the disabled run within
  noise; the disabled run is the row the cross-commit ≤ 2 % perturbation
  budget of the observability work is judged against.
* **Fleet chaos run** — the seeded storm scenario from
  ``bench_fleet_faults`` (10 jobs on 8 GPUs; 4 jobs in smoke mode).  The
  enabled run additionally records lifecycle events, job.step/plan/execute
  spans and per-iteration op traces, and builds the merged chrome trace.

Primary outputs are asserted bit-identical between the two runs in *every*
mode — makespans for the sweep, the full report summary and occupancy trace
for the fleet — so telemetry can never silently change results.  Timing
bounds are only enforced in the full run on multi-core hosts.

Run with ``pytest benchmarks/bench_telemetry_overhead.py
--benchmark-disable -s`` (or ``pytest benchmarks/ -m tier2_bench``).  Set
``REPRO_BENCH_SMOKE=1`` for the reduced tier-1 smoke workload.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.obs.merge import merge_fleet_trace
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.simulator.engine import compile_schedule

from bench_fleet_faults import build_scheduler, build_workload, fault_plans
from common import emit

#: Reduced workload + no timing asserts (used as a tier-1 smoke check).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
MULTI_CORE = (os.cpu_count() or 1) >= 4

NUM_STAGES = 4
NUM_MICROBATCHES = 8 if SMOKE else 32
NUM_DURATION_TABLES = 8 if SMOKE else 64
SWEEP_REPEATS = 3 if SMOKE else 10

#: Enabled-vs-disabled wall-clock bounds (full run, multi-core hosts).
#: The sweep has no telemetry sites in its hot loop; the fleet run pays
#: for span/event/op-trace recording but must stay a bounded fraction of
#: the planning+simulation work it annotates.
SWEEP_OVERHEAD_BOUND_PCT = 10.0
FLEET_OVERHEAD_BOUND_PCT = 30.0

HEADERS = [
    "workload",
    "disabled_s",
    "enabled_s",
    "overhead_pct",
    "outputs_identical",
]


def _overhead_pct(disabled_s: float, enabled_s: float) -> float:
    if disabled_s <= 0:
        return 0.0
    return (enabled_s - disabled_s) / disabled_s * 100.0


# ----------------------------------------------------------------- sweep


def _run_sweep() -> tuple[float, list[float]]:
    """One Fig. 7-style batched re-simulation; returns (best_s, makespans)."""
    rng = np.random.default_rng(17)
    forward = np.maximum(
        0.05, 1.0 + rng.normal(0.0, 0.3, (NUM_DURATION_TABLES, NUM_MICROBATCHES))
    )
    backward = np.maximum(
        0.05, 2.0 + rng.normal(0.0, 0.6, (NUM_DURATION_TABLES, NUM_MICROBATCHES))
    )
    schedule = one_f_one_b_schedule(NUM_STAGES, NUM_MICROBATCHES)
    best = float("inf")
    makespans: list[float] = []
    for _ in range(SWEEP_REPEATS):
        start = time.perf_counter()
        timeline = compile_schedule(schedule)
        durations = np.where(
            timeline.op_is_forward,
            forward[:, timeline.op_microbatch],
            backward[:, timeline.op_microbatch],
        )
        makespans = list(timeline.solve_batch(durations).makespan_ms)
        best = min(best, time.perf_counter() - start)
    return best, makespans


def run_sweep_pair() -> tuple[list, float]:
    obs.reset()
    obs.disable()
    disabled_s, disabled_makespans = _run_sweep()
    with obs.telemetry():
        enabled_s, enabled_makespans = _run_sweep()
    obs.reset()
    identical = enabled_makespans == disabled_makespans
    assert identical, "telemetry changed sweep makespans"
    overhead = _overhead_pct(disabled_s, enabled_s)
    row = [
        f"fig07 sweep ({NUM_STAGES}st x {NUM_MICROBATCHES}mb x {NUM_DURATION_TABLES}tbl)",
        round(disabled_s, 5),
        round(enabled_s, 5),
        round(overhead, 1),
        identical,
    ]
    return row, overhead


# ----------------------------------------------------------------- fleet


def _run_fleet():
    jobs = build_workload()
    scheduler = build_scheduler(jobs, fault_plans()["storm"])
    start = time.perf_counter()
    report = scheduler.run()
    return time.perf_counter() - start, report


def run_fleet_pair() -> tuple[list, float, dict]:
    obs.reset()
    obs.disable()
    disabled_s, disabled_report = _run_fleet()
    with obs.telemetry():
        enabled_s, enabled_report = _run_fleet()
        merged = merge_fleet_trace(enabled_report)
    obs.reset()
    identical = (
        enabled_report.summary() == disabled_report.summary()
        and enabled_report.trace.events == disabled_report.trace.events
        and [job.__dict__ for job in enabled_report.jobs]
        == [job.__dict__ for job in disabled_report.jobs]
    )
    assert identical, "telemetry changed the fleet run"
    # The enabled run's merged trace must be valid, populated JSON.
    payload = json.loads(json.dumps(merged))
    assert payload["traceEvents"], "merged trace is empty"
    overhead = _overhead_pct(disabled_s, enabled_s)
    row = [
        f"fleet storm ({len(disabled_report.jobs)} jobs)",
        round(disabled_s, 5),
        round(enabled_s, 5),
        round(overhead, 1),
        identical,
    ]
    return row, overhead, payload


# ------------------------------------------------------------------ test


@pytest.mark.tier2_bench
def test_telemetry_overhead(benchmark, capsys):
    def run():
        sweep_row, sweep_overhead = run_sweep_pair()
        fleet_row, fleet_overhead, payload = run_fleet_pair()
        return [sweep_row, fleet_row], sweep_overhead, fleet_overhead, payload

    rows, sweep_overhead, fleet_overhead, _ = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "telemetry_overhead",
        "Telemetry overhead: identical seeded workloads with the flag off vs on "
        "(outputs asserted bit-identical in both modes)",
        HEADERS,
        rows,
        capsys,
    )
    if not SMOKE and MULTI_CORE:
        assert sweep_overhead <= SWEEP_OVERHEAD_BOUND_PCT, (
            f"enabled sweep overhead {sweep_overhead:.1f}% "
            f"exceeds {SWEEP_OVERHEAD_BOUND_PCT}%"
        )
        assert fleet_overhead <= FLEET_OVERHEAD_BOUND_PCT, (
            f"enabled fleet overhead {fleet_overhead:.1f}% "
            f"exceeds {FLEET_OVERHEAD_BOUND_PCT}%"
        )
