"""Tier-2 benchmark of execution-backend overhead: sim vs local.

Runs identical planner-style instruction streams through the simulator
oracle and the real multiprocess local backend, and reports a Fig. 7-style
row per pipeline geometry:

* ``sim_s`` — wall time of the discrete-event run (virtual time inside),
* ``local_s`` — wall time of the real run (process spawn + IPC + matching),
* ``overhead_x`` — how many times slower the real execution is, and
* ``conformant`` — whether the two backends' conformance fingerprints
  (per-device completion order, per-channel matching order, completed
  transfer set) were identical — asserted, so the benchmark doubles as an
  end-to-end conformance check on larger streams than the unit suite uses.

The local backend's wall time is dominated by worker startup, so the
interesting signal is how the overhead *scales* with stream size: matching
itself is cheap and the per-geometry times should grow far slower than the
instruction count.

Run with ``pytest benchmarks/bench_backend_overhead.py --benchmark-disable
-s`` (or ``pytest benchmarks/ -m tier2_bench``).  Set
``REPRO_BENCH_SMOKE=1`` for the reduced tier-1 smoke workload.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.backends import BackendOptions, get_backend
from repro.comm.planner import build_instruction_streams
from repro.comm.shapes import TransferShapes
from repro.model.transformer import MicroBatchShape
from repro.schedule.cyclic import cyclic_schedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.simulator.engine import simulate_schedule

from common import emit

#: Reduced workload + no timing asserts (used as a tier-1 smoke check).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

#: (label, schedule builder) per benchmarked geometry.
if SMOKE:
    GEOMETRIES = [
        ("1f1b 2st x 4mb", lambda: one_f_one_b_schedule(2, 4)),
        ("1f1b 4st x 8mb", lambda: one_f_one_b_schedule(4, 8)),
    ]
else:
    GEOMETRIES = [
        ("1f1b 2st x 8mb", lambda: one_f_one_b_schedule(2, 8)),
        ("1f1b 4st x 16mb", lambda: one_f_one_b_schedule(4, 16)),
        ("1f1b 4st x 32mb", lambda: one_f_one_b_schedule(4, 32)),
        (
            "cyclic 4st x 16mb",
            lambda: cyclic_schedule(
                4, [[1.0] * 4 for _ in range(16)], memory_limits=[8.0] * 4
            ),
        ),
    ]

HEADERS = ["geometry", "instructions", "transfers", "sim_s", "local_s", "overhead_x", "conformant"]

SHAPE = MicroBatchShape(batch_size=1, enc_seq_len=64)

#: Generous watchdog knobs: the streams are deadlock-free by construction,
#: so these only bound how long a regression could hang the benchmark.
LOCAL_KWARGS = dict(block_report_s=1.0, grace_s=0.4, timeout_s=120.0, poll_s=0.01)


def planned_streams(schedule):
    shapes = [SHAPE] * schedule.num_microbatches
    transfer_shapes = TransferShapes(
        activation_bytes=[[256.0] * schedule.num_stages for _ in shapes],
        gradient_bytes=[[256.0] * schedule.num_stages for _ in shapes],
    )
    sim = simulate_schedule(schedule, lambda op: 1.0)
    return build_instruction_streams(schedule, sim.op_times, shapes, transfer_shapes)


def bench_geometry(label: str, schedule) -> list:
    streams = planned_streams(schedule)
    num_instructions = sum(len(stream) for stream in streams)
    options = BackendOptions(
        compute_duration_fn=lambda instr: 1.0,
        transfer_time_fn=lambda nbytes, src, dst: 0.1,
    )

    started = time.perf_counter()
    sim_report = get_backend("sim", options).run_report(streams)
    sim_s = time.perf_counter() - started

    started = time.perf_counter()
    local_report = get_backend("local", options, **LOCAL_KWARGS).run_report(streams)
    local_s = time.perf_counter() - started

    conformant = (
        local_report.conformance_fingerprint() == sim_report.conformance_fingerprint()
    )
    assert conformant, f"{label}: local backend diverged from the simulator"
    assert local_report.payload_errors == 0, f"{label}: corrupted payloads"
    overhead = local_s / sim_s if sim_s > 0 else float("inf")
    return [
        label,
        num_instructions,
        len(sim_report.result.transfer_log),
        round(sim_s, 5),
        round(local_s, 5),
        round(overhead, 1),
        conformant,
    ]


@pytest.mark.tier2_bench
def test_backend_overhead(benchmark, capsys):
    def run():
        return [bench_geometry(label, build()) for label, build in GEOMETRIES]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "backend_overhead",
        "Execution-backend overhead: identical planned streams on the simulator "
        "oracle vs the real multiprocess backend (fingerprints asserted equal)",
        HEADERS,
        rows,
        capsys,
    )
    # Ordering conformance is asserted per geometry above; the only timing
    # claim worth enforcing is that real execution stays within a sane
    # multiple of the simulation on the largest stream (process startup
    # dominates, so small streams are allowed to look arbitrarily bad).
    if not SMOKE:
        largest = rows[-2]  # 1f1b 4st x 32mb
        assert largest[4] < 30.0, f"local backend took {largest[4]}s on {largest[0]}"
