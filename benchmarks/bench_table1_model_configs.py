"""Table 1 — model configurations and parameter counts.

Regenerates the paper's Table 1: for every (model, cluster size) pair the
layer count, model dimension, head count, KV channels, FFN dimension and the
parameter count computed by the analytic model, next to the count the paper
reports.
"""

from __future__ import annotations

from repro.model.config import GPT_CONFIGS, PAPER_PARAM_BILLIONS, T5_CONFIGS

from common import emit


def build_rows():
    rows = []
    for table, arch in ((GPT_CONFIGS, "GPT"), (T5_CONFIGS, "T5")):
        for num_gpus, config in sorted(table.items()):
            rows.append(
                [
                    arch,
                    num_gpus,
                    config.num_layers,
                    config.hidden_size,
                    config.num_heads,
                    config.kv_channels,
                    config.ffn_hidden_size,
                    round(config.parameter_count() / 1e9, 2),
                    PAPER_PARAM_BILLIONS[config.name],
                ]
            )
    return rows


def test_table1_model_configs(benchmark, capsys):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    emit(
        "table1_model_configs",
        "Table 1: DNN model configurations (computed vs paper parameter counts)",
        ["model", "#GPUs", "#layers", "dim", "#heads", "kv", "ffn", "params (B)", "paper (B)"],
        rows,
        capsys,
    )
    for row in rows:
        computed, paper = row[-2], row[-1]
        assert abs(computed - paper) / paper < 0.06
