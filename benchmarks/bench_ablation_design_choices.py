"""Ablations of DynaPipe's own design knobs (DESIGN.md §5).

These are not paper figures; they quantify the design choices the paper
mentions in passing and that `DESIGN.md` calls out as worth ablating:

* the number of ``t_max`` candidates the DP samples (paper: every 5 µs) —
  solution quality vs planning time;
* the number of execution-time clusters used by the micro-batch
  injection-order search (paper: 3–4 clusters suffice).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.adaptive_schedule import AdaptiveScheduler, ScheduleKind
from repro.core.microbatch import DynamicMicroBatcher
from repro.core.microbatch_ordering import cluster_and_order
from repro.data.sampler import MiniBatchSampler
from repro.simulator.engine import simulate_schedule

from common import cost_model, emit, truncated_samples

MAX_SEQ_LEN = 2048
GLOBAL_BATCH_TOKENS = 32768
NUM_GPUS = 4
PIPELINE_STAGES = 4


def _minibatch():
    samples = truncated_samples(MAX_SEQ_LEN, True)
    return next(iter(MiniBatchSampler(list(samples), GLOBAL_BATCH_TOKENS, seed=0))).samples


def run_tmax_ablation():
    cm = cost_model("gpt", NUM_GPUS, PIPELINE_STAGES, 1, 1, MAX_SEQ_LEN)
    minibatch = _minibatch()
    rows = []
    for candidates in (2, 4, 8, 16, 32, 64):
        batcher = DynamicMicroBatcher(cm, tmax_sample_count=candidates)
        start = time.perf_counter()
        result = batcher.split(minibatch)
        elapsed = time.perf_counter() - start
        solution = batcher.last_solution
        assert solution is not None
        iteration_ms = cm.iteration_time_ms([mb.shape() for mb in result.micro_batches])
        rows.append(
            [candidates, round(iteration_ms, 1), solution.num_microbatches, round(elapsed, 3)]
        )
    return rows


def test_ablation_tmax_candidates(benchmark, capsys):
    rows = benchmark.pedantic(run_tmax_ablation, rounds=1, iterations=1)
    emit(
        "ablation_tmax_candidates",
        "Ablation: number of t_max candidates vs DP solution quality and planning time",
        ["tmax_candidates", "eq1_iteration_ms", "num_microbatches", "planning_s"],
        rows,
        capsys,
    )
    objectives = [row[1] for row in rows]
    # More candidates never hurt the objective, and a handful already gets
    # within 5% of the best found.
    assert min(objectives) == objectives[-1] or objectives[-1] <= min(objectives) * 1.01
    assert objectives[2] <= min(objectives) * 1.05


def run_cluster_ablation():
    cm = cost_model("gpt", NUM_GPUS, PIPELINE_STAGES, 1, 1, MAX_SEQ_LEN)
    scheduler = AdaptiveScheduler(cm)
    minibatch = _minibatch()
    result = DynamicMicroBatcher(cm, tmax_sample_count=16).split(minibatch)
    shapes = [mb.shape() for mb in result.micro_batches]
    times = [cm.microbatch_time_ms(shape) for shape in shapes]
    rng = np.random.default_rng(5)

    def score(order) -> float:
        build = scheduler.build(
            shapes, kind=ScheduleKind.MEMORY_AWARE_ADAPTIVE, injection_order=order
        )
        noisy = {
            op: duration * float(rng.uniform(0.9, 1.1)) for op, duration in build.durations.items()
        }
        return simulate_schedule(build.schedule, noisy).makespan_ms

    rows = []
    for clusters in (1, 2, 3, 4, 5):
        start = time.perf_counter()
        search = cluster_and_order(times, score, num_clusters=clusters, max_permutations=120)
        elapsed = time.perf_counter() - start
        rows.append([clusters, round(search.makespan_ms, 1), search.evaluated, round(elapsed, 3)])
    return rows


def test_ablation_injection_order_clusters(benchmark, capsys):
    rows = benchmark.pedantic(run_cluster_ablation, rounds=1, iterations=1)
    emit(
        "ablation_order_clusters",
        "Ablation: execution-time clusters in the injection-order search",
        ["clusters", "best_makespan_ms", "orders_evaluated", "search_s"],
        rows,
        capsys,
    )
    makespans = {row[0]: row[1] for row in rows}
    # 3-4 clusters capture almost all of the benefit (paper §5): adding a 5th
    # cluster improves the makespan by less than a few percent over 3.
    assert makespans[5] >= makespans[3] * 0.97
    # The search cost grows factorially with the cluster count.
    evaluated = {row[0]: row[2] for row in rows}
    assert evaluated[5] > evaluated[3] > evaluated[1]
