"""Figure 4 — motivation: packing vs dynamic micro-batching as the maximum
sequence length grows (normalized throughput and padding efficiency).

Both systems run under the same parallel configuration (DynaPipe's best for
the 4-GPU cluster), isolating the batching method, which is how the paper's
preliminary comparison is set up.  Throughput is normalised to the dynamic
micro-batching value at the shortest maximum sequence length.
"""

from __future__ import annotations

from repro.batching.metrics import padding_stats
from repro.batching.padding import NaivePaddingBatching
from repro.data.sampler import MiniBatchSampler

from common import (
    GLOBAL_BATCH_TOKENS_DEFAULT,
    baseline_point,
    dynapipe_point,
    emit,
    parallel_candidates,
    truncated_samples,
)

GPT_SEQ_LENS = (512, 1024, 2048, 4096, 8192)
T5_SEQ_LENS = (512, 1024, 2048, 4096)


def _naive_padding_efficiency(max_seq_len: int, decoder_only: bool) -> float:
    samples = truncated_samples(max_seq_len, decoder_only)
    sampler = MiniBatchSampler(list(samples), GLOBAL_BATCH_TOKENS_DEFAULT, seed=0)
    minibatch = next(iter(sampler))
    result = NaivePaddingBatching(micro_batch_size=8, decoder_only=decoder_only).split(
        minibatch.samples
    )
    return padding_stats(result.micro_batches).overall_efficiency


def run(arch: str, seq_lens):
    pinned = parallel_candidates(arch, 4)[0]
    rows = []
    reference = None
    for seq_len in seq_lens:
        dyna = dynapipe_point(arch, 4, seq_len, GLOBAL_BATCH_TOKENS_DEFAULT, parallel=pinned)
        pack = baseline_point(
            arch, 4, seq_len, GLOBAL_BATCH_TOKENS_DEFAULT, parallel=pinned, system="Packing"
        )
        if reference is None:
            reference = dyna.throughput or 1.0
        rows.append(
            [
                arch.upper(),
                seq_len,
                round(pack.throughput / reference, 3),
                round(dyna.throughput / reference, 3),
                round(_naive_padding_efficiency(seq_len, arch == "gpt"), 3),
                round(pack.padding_efficiency, 3),
                round(dyna.padding_efficiency, 3),
            ]
        )
    return rows


def test_fig04_motivation_gpt(benchmark, capsys):
    rows = benchmark.pedantic(run, args=("gpt", GPT_SEQ_LENS), rounds=1, iterations=1)
    emit(
        "fig04_motivation_gpt",
        "Fig. 4a: GPT packing vs dynamic micro-batching (normalized throughput, padding efficiency)",
        ["model", "max_seq_len", "packing_norm_tput", "dynamic_norm_tput",
         "naive_pad_eff", "packing_pad_eff", "dynamic_pad_eff"],
        rows,
        capsys,
    )
    # Dynamic micro-batching holds throughput as the max sequence length grows,
    # while packing's throughput decays (quadratic attention over packed rows).
    packing_drop = rows[0][2] / max(rows[-1][2], 1e-9)
    dynamic_drop = rows[0][3] / max(rows[-1][3], 1e-9)
    assert packing_drop > dynamic_drop
    # Naive padding wastes most tokens at long max sequence lengths.
    assert rows[-1][4] < 0.35
    # Both packing and dynamic micro-batching keep padding efficiency high.
    assert rows[-1][5] > 0.7 and rows[-1][6] > 0.7


def test_fig04_motivation_t5(benchmark, capsys):
    rows = benchmark.pedantic(run, args=("t5", T5_SEQ_LENS), rounds=1, iterations=1)
    emit(
        "fig04_motivation_t5",
        "Fig. 4b: T5 packing vs dynamic micro-batching (normalized throughput, padding efficiency)",
        ["model", "max_seq_len", "packing_norm_tput", "dynamic_norm_tput",
         "naive_pad_eff", "packing_pad_eff", "dynamic_pad_eff"],
        rows,
        capsys,
    )
    packing_drop = rows[0][2] / max(rows[-1][2], 1e-9)
    dynamic_drop = rows[0][3] / max(rows[-1][3], 1e-9)
    assert packing_drop > dynamic_drop
    assert rows[-1][6] > 0.6
