"""Tier-2 benchmark of the data-oriented simulation engine.

Two measurements, mirroring where the simulator dominates:

* **Fig. 7-style re-simulation sweep** — the schedule-robustness figures
  re-simulate a fixed schedule under dozens of perturbed duration tables.
  The scalar engine re-runs its per-op Python event loop per table; the
  compiled engine compiles the geometry once and solves all duration
  vectors in one batched wave sweep.  Per-solve makespans are asserted
  bit-identical before any timing is reported.

* **Fig. 16-style order search** — the planner's injection-order search
  scores permutations of one replica's micro-batches.  Three variants are
  timed: the seed's path (rebuild the schedule + scalar simulation per
  permutation), the rebuild path on the vectorized engine, and the
  incremental scorer (geometry compiled once, array re-solves per
  permutation).  All three must select the same order with the same
  makespan.

Run with ``pytest benchmarks/bench_sim_engine.py --benchmark-disable -s``
(or ``pytest benchmarks/ -m tier2_bench``).  Set ``REPRO_BENCH_SMOKE=1``
for the reduced tier-1 smoke workload, which asserts only equivalence; the
>= 10x speed-up claim on the sweep rows is enforced on multi-core hosts in
the full run.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.comm.shapes import TransferShapes
from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.costmodel.cost_model import CostModel
from repro.model.config import ModelArch, ModelConfig
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape
from repro.schedule.cyclic import cyclic_schedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.simulator.engine import compile_schedule, simulate_schedule_scalar

from common import emit

#: Reduced workload + relaxed timing asserts (used as a tier-1 smoke check).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
MULTI_CORE = (os.cpu_count() or 1) >= 4

#: Required speed-up of the batched compiled solve over the scalar loop on
#: the Fig. 7-style sweep rows (full run, multi-core hosts only).
SWEEP_SPEEDUP_FLOOR = 10.0

STAGE_COUNTS = (2, 4) if SMOKE else (4, 8, 16)
NUM_MICROBATCHES = 8 if SMOKE else 32
NUM_DURATION_TABLES = 8 if SMOKE else 64

ORDER_SEARCH_MICROBATCHES = 6 if SMOKE else 16
ORDER_SEARCH_REPEATS = 1 if SMOKE else 3

BENCH_CONFIG = ModelConfig(
    name="gpt-bench-small",
    arch=ModelArch.GPT,
    num_layers=8,
    hidden_size=1024,
    num_heads=16,
    kv_channels=64,
    ffn_hidden_size=4096,
    vocab_size=32000,
)

BASE_FORWARD_MS = 1.0
BASE_BACKWARD_MS = 2.0


def _noise_tables(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Per-solve (table, microbatch) forward/backward duration matrices,
    mirroring the Fig. 7 noise model across its noise levels."""
    stds = np.linspace(0.0, 3.0, NUM_DURATION_TABLES)
    forward = np.maximum(
        0.05,
        BASE_FORWARD_MS
        + rng.normal(0.0, 1.0, (NUM_DURATION_TABLES, NUM_MICROBATCHES))
        * stds[:, None] * BASE_FORWARD_MS / 3.0,
    )
    backward = np.maximum(
        0.05,
        BASE_BACKWARD_MS
        + rng.normal(0.0, 1.0, (NUM_DURATION_TABLES, NUM_MICROBATCHES))
        * stds[:, None] * BASE_BACKWARD_MS / 3.0,
    )
    return forward, backward


def run_resimulation_sweep() -> list[list]:
    rows = []
    rng = np.random.default_rng(17)
    for num_stages in STAGE_COUNTS:
        schedules = {
            "1f1b": one_f_one_b_schedule(num_stages, NUM_MICROBATCHES),
            "adaptive": cyclic_schedule(
                num_stages, [[1.0] * num_stages for _ in range(NUM_MICROBATCHES)]
            ),
        }
        forward, backward = _noise_tables(rng)
        for name, schedule in schedules.items():
            tables = [
                {
                    (mb, is_forward): (forward if is_forward else backward)[t, mb]
                    for mb in range(NUM_MICROBATCHES)
                    for is_forward in (True, False)
                }
                for t in range(NUM_DURATION_TABLES)
            ]

            start = time.perf_counter()
            scalar_makespans = []
            for table in tables:
                duration = lambda op: table[(op.microbatch, op.op_type.value == "F")]
                scalar_makespans.append(
                    simulate_schedule_scalar(schedule, duration).makespan_ms
                )
            scalar_s = time.perf_counter() - start

            start = time.perf_counter()
            timeline = compile_schedule(schedule)
            durations = np.where(
                timeline.op_is_forward,
                forward[:, timeline.op_microbatch],
                backward[:, timeline.op_microbatch],
            )
            batch = timeline.solve_batch(durations)
            vector_s = time.perf_counter() - start

            assert list(batch.makespan_ms) == scalar_makespans
            speedup = scalar_s / vector_s if vector_s > 0 else float("inf")
            rows.append(
                [
                    f"fig07/{name}",
                    num_stages,
                    NUM_MICROBATCHES,
                    NUM_DURATION_TABLES,
                    round(scalar_s, 4),
                    round(vector_s, 4),
                    round(speedup, 1),
                ]
            )
    return rows


def _order_search_shapes() -> list[MicroBatchShape]:
    rng = np.random.default_rng(23)
    return [
        MicroBatchShape(
            batch_size=int(rng.integers(1, 9)),
            enc_seq_len=int(rng.choice([128, 256, 512, 1024])),
        )
        for _ in range(ORDER_SEARCH_MICROBATCHES)
    ]


def run_order_search() -> list[list]:
    cost_model = CostModel(
        BENCH_CONFIG, num_stages=4, max_profile_batch_size=128, max_profile_seq_len=2048
    )
    planner = DynaPipePlanner(
        cost_model,
        config=PlannerConfig(
            order_search=True, num_time_clusters=4, max_order_permutations=24
        ),
    )
    shapes = _order_search_shapes()
    transfer_shapes = TransferShapes.from_cost_model(cost_model, shapes)
    mode = RecomputeMode.NONE

    def timed_search(incremental: bool, engine: str | None):
        planner.config.incremental_order_search = incremental
        previous = os.environ.pop("REPRO_SIM_ENGINE", None)
        if engine is not None:
            os.environ["REPRO_SIM_ENGINE"] = engine
        try:
            # Warm the cost-model caches so only scoring is timed.
            planner._search_injection_order(shapes, mode, transfer_shapes)
            best = float("inf")
            result = None
            for _ in range(ORDER_SEARCH_REPEATS):
                start = time.perf_counter()
                result = planner._search_injection_order(shapes, mode, transfer_shapes)
                best = min(best, time.perf_counter() - start)
            return result, best
        finally:
            if engine is not None:
                del os.environ["REPRO_SIM_ENGINE"]
            if previous is not None:
                os.environ["REPRO_SIM_ENGINE"] = previous

    seed_result, seed_s = timed_search(incremental=False, engine="scalar")
    rebuild_result, rebuild_s = timed_search(incremental=False, engine=None)
    incremental_result, incremental_s = timed_search(incremental=True, engine=None)

    assert incremental_result.order == seed_result.order == rebuild_result.order
    assert (
        incremental_result.makespan_ms
        == seed_result.makespan_ms
        == rebuild_result.makespan_ms
    )
    assert incremental_result.geometry_compiles is not None
    assert incremental_result.geometry_compiles < incremental_result.timeline_solves

    def row(variant: str, elapsed: float) -> list:
        return [
            f"fig16/order-search/{variant}",
            cost_model.num_stages,
            ORDER_SEARCH_MICROBATCHES,
            incremental_result.evaluated,
            round(elapsed, 4),
            round(incremental_s, 4),
            round(elapsed / incremental_s if incremental_s > 0 else float("inf"), 1),
        ]

    return [
        row("seed-rebuild-scalar", seed_s),
        row("rebuild-vector", rebuild_s),
    ]


HEADERS = [
    "sweep", "stages", "microbatches", "solves",
    "baseline_s", "compiled_s", "speedup",
]


@pytest.mark.tier2_bench
def test_sim_engine(benchmark, capsys):
    def run():
        return run_resimulation_sweep() + run_order_search()

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "sim_engine",
        "Simulation engine: scalar loop vs compiled batched timeline solver",
        HEADERS,
        rows,
        capsys,
    )
    sweep_speedups = [row[-1] for row in rows if str(row[0]).startswith("fig07/")]
    search_speedups = [row[-1] for row in rows if str(row[0]).startswith("fig16/")]
    assert sweep_speedups and search_speedups
    if not SMOKE and MULTI_CORE:
        # The batched compiled solve must beat the scalar loop by an order
        # of magnitude on the re-simulation sweeps...
        assert max(sweep_speedups) >= SWEEP_SPEEDUP_FLOOR
        # ...and the incremental order search must clearly beat the seed's
        # rebuild-and-simulate-scalar scoring path.
        assert max(search_speedups) >= 2.0
