"""Tier-2 benchmark of the fleet scheduler: multi-job runs on one cluster.

Runs a mixed fleet of training jobs — heterogeneous gang shapes, batch
sizes, priorities and submission times — on a shared simulated cluster
under all three admission policies (FIFO, shortest-remaining-work,
preemptive priority), with mid-run device failures *and* repairs
exercising the dynamic-capacity path, and reports the fleet metrics
(makespan, queueing delay, live-capacity device utilization,
retries/preemptions/evictions) side by side.  Run it with

    pytest benchmarks/bench_fleet_scheduler.py --benchmark-disable -s

(or ``pytest benchmarks/ -m tier2_bench``).  Besides producing the table,
it asserts the fleet invariants end to end: every job reaches a terminal
state, both injected failures are recorded and repaired, no device leaks,
shortest-remaining-work does not lose to FIFO on mean queueing delay for
this heterogeneous mix, and the preemptive policy does not lose to FIFO on
the *priority* jobs' mean queueing delay.

Set ``REPRO_BENCH_SMOKE=1`` for the reduced workload the tier-1 suite runs
(fewer jobs and iterations) so this file cannot silently rot.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.cluster.device import DeviceSpec
from repro.cluster.topology import ClusterTopology
from repro.core.planner import PlannerConfig
from repro.costmodel.cost_model import CostModel
from repro.data.flan import SyntheticFlanDataset
from repro.data.truncation import truncate_samples
from repro.fleet import FleetConfig, FleetScheduler, JobSpec, JobState
from repro.model.config import ModelArch, ModelConfig
from repro.parallel.config import ParallelConfig

from common import emit

#: Reduced workload (used as a tier-1 smoke check).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

NUM_JOBS = 4 if SMOKE else 10
ITERATIONS_LONG = 2 if SMOKE else 4
CLUSTER_GPUS = 8
FAILURE_SCHEDULE = ((10.0, 0), (25.0, 5))
#: Every failed device returns to the free pool this long after dying, so
#: the policy comparison runs over a shrinking *and* regrowing cluster.
REPAIR_DELAY_MS = 30.0
#: Planner workers of the pooled planning-mode comparison.
PLANNER_PROCS = 1 if SMOKE else 2

FLEET_MODEL = ModelConfig(
    name="gpt-fleet-small",
    arch=ModelArch.GPT,
    num_layers=4,
    hidden_size=512,
    num_heads=8,
    kv_channels=64,
    ffn_hidden_size=2048,
    vocab_size=32000,
)

FLEET_DEVICE = DeviceSpec(
    name="fleet-gpu-8GB",
    peak_flops=100e12,
    memory_bandwidth=1e12,
    memory_capacity=8 * 1024**3,
)


def build_jobs(cost_model: CostModel, samples) -> list[JobSpec]:
    """A heterogeneous job mix: wide/narrow gangs, long/short epochs, and
    every fourth job a high-priority arrival (exercised by the preemptive
    policy, ignored by FIFO/SRW)."""
    planner_config = PlannerConfig(order_search=False, tmax_sample_count=8)
    jobs = []
    for index in range(NUM_JOBS):
        wide = index % 3 == 0
        jobs.append(
            JobSpec(
                name=f"job{index:02d}",
                cost_model=cost_model,
                samples=samples,
                global_batch_tokens=8192 if wide else 4096,
                parallel=ParallelConfig(2 if wide else 1, 2, 1),
                num_iterations=ITERATIONS_LONG if index % 2 == 0 else 1,
                planner_config=planner_config,
                seed=index,
                priority=2 if index % 4 == 1 else 0,
                submit_time_ms=5.0 * (index // 4),
            )
        )
    return jobs


def run_policy(policy: str, jobs: list[JobSpec], **config):
    topology = ClusterTopology.for_num_gpus(CLUSTER_GPUS, device_spec=FLEET_DEVICE)
    scheduler = FleetScheduler(
        topology,
        FleetConfig(policy=policy, repair_delay_ms=REPAIR_DELAY_MS, **config),
    )
    for spec in jobs:
        scheduler.submit(spec)
    for time_ms, device in FAILURE_SCHEDULE:
        scheduler.inject_device_failure(time_ms, device)
    return scheduler.run()


def priority_queueing_delay_ms(report) -> float:
    """Mean queueing delay of the high-priority jobs only."""
    delays = [
        job.queueing_delay_ms
        for job in report.jobs
        if job.priority > 0 and job.queueing_delay_ms is not None
    ]
    return sum(delays) / len(delays) if delays else 0.0


#: Planning transports compared by the planning-mode table: private pools
#: per job attempt vs. the fleet-wide shared pool ("planning cluster").
PLANNING_MODES = {
    "per-attempt": dict(planner_processes=PLANNER_PROCS),
    "shared-pool": dict(planner_processes=PLANNER_PROCS, shared_planner_pool=True),
}


def run_planning_modes(jobs: list[JobSpec]):
    """The same fleet, planned through per-attempt pools vs the shared pool.

    Simulated results (makespan, per-job outcomes) are identical by
    construction — the rows show what the planning *cluster* buys: worker
    spawn is paid once for the fleet instead of once per attempt.
    """
    rows = []
    reports = {}
    for mode, config in PLANNING_MODES.items():
        start = time.perf_counter()
        report = run_policy("fifo", jobs, **config)
        wall_s = time.perf_counter() - start
        reports[mode] = report
        summary = report.summary()
        rows.append(
            [
                mode,
                summary["jobs"],
                summary["finished"],
                round(summary["makespan_ms"], 1),
                sum(job.attempts for job in report.jobs),
                report.planner_workers_spawned,
                round(wall_s, 2),
            ]
        )
    return rows, reports


def run():
    cost_model = CostModel(
        FLEET_MODEL,
        num_stages=2,
        device_spec=FLEET_DEVICE,
        max_profile_batch_size=32,
        max_profile_seq_len=1024,
    )
    samples = truncate_samples(
        SyntheticFlanDataset(num_samples=400, seed=7).samples, 512, decoder_only=True
    )
    jobs = build_jobs(cost_model, samples)
    rows = []
    reports = {}
    for policy in ("fifo", "srw", "priority"):
        report = run_policy(policy, jobs)
        reports[policy] = report
        summary = report.summary()
        rows.append(
            [
                policy,
                summary["jobs"],
                summary["finished"],
                summary["failed"],
                round(summary["makespan_ms"], 1),
                round(summary["mean_queueing_delay_ms"], 1),
                round(priority_queueing_delay_ms(report), 1),
                round(summary["device_utilization"], 3),
                summary["total_retries"],
                summary["total_preemptions"],
                summary["total_evictions"],
                summary["devices_repaired"],
            ]
        )
    return rows, reports


HEADERS = [
    "policy", "jobs", "finished", "failed", "makespan_ms",
    "mean_queue_ms", "prio_queue_ms", "utilization", "retries",
    "preemptions", "evictions", "repairs",
]

PLANNING_HEADERS = [
    "planning", "jobs", "finished", "makespan_ms", "attempts",
    "workers_spawned", "wall_s",
]


@pytest.mark.tier2_bench
def test_fleet_scheduler_bench(benchmark, capsys):
    rows, reports = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fleet_scheduler",
        f"Fleet scheduler: {NUM_JOBS} jobs on {CLUSTER_GPUS} GPUs, "
        f"{len(FAILURE_SCHEDULE)} device failures repaired after "
        f"{REPAIR_DELAY_MS:.0f} ms",
        HEADERS,
        rows,
        capsys,
    )
    for policy, report in reports.items():
        # Every job terminal; both failures recorded and repaired; nothing
        # leaked.
        for job in report.jobs:
            assert job.state in (JobState.FINISHED, JobState.FAILED), (policy, job)
            if job.state == JobState.FINISHED:
                assert job.iterations_completed == job.target_iterations
        failures = [e for e in report.capacity_timeline if e.event == "failure"]
        assert sorted(e.device for e in failures) == sorted(
            d for t, d in FAILURE_SCHEDULE if t <= report.makespan_ms
        )
        # A repair fires only if due within the run; a failure whose repair
        # lands after the last job event stays dead to the end (its dead
        # time then runs failure → makespan).
        expected_dead = 0.0
        unrepaired = []
        for time_ms, device in FAILURE_SCHEDULE:
            if time_ms > report.makespan_ms:
                continue
            if time_ms + REPAIR_DELAY_MS <= report.makespan_ms:
                expected_dead += REPAIR_DELAY_MS
            else:
                expected_dead += report.makespan_ms - time_ms
                unrepaired.append(device)
        assert report.failed_devices == sorted(unrepaired)
        assert report.devices_repaired == len(failures) - len(unrepaired)
        assert report.dead_device_ms == pytest.approx(expected_dead)
        assert 0 < report.device_utilization <= 1
        assert report.finished_jobs == NUM_JOBS  # elastic retries absorb the failures
    # The heterogeneous mix is exactly where shortest-remaining-work earns
    # its keep over FIFO on mean queueing delay (ties allowed).
    assert (
        reports["srw"].mean_queueing_delay_ms
        <= reports["fifo"].mean_queueing_delay_ms * 1.001
    )
    # The preemptive policy earns its keep on the priority jobs' queueing
    # delay (ties allowed — with light load they may be admitted instantly
    # under every policy).
    assert (
        priority_queueing_delay_ms(reports["priority"])
        <= priority_queueing_delay_ms(reports["fifo"]) * 1.001
    )


@pytest.mark.tier2_bench
def test_fleet_planning_modes_bench(benchmark, capsys):
    """Per-attempt pools vs the fleet-wide shared pool (planning cluster)."""
    cost_model = CostModel(
        FLEET_MODEL,
        num_stages=2,
        device_spec=FLEET_DEVICE,
        max_profile_batch_size=32,
        max_profile_seq_len=1024,
    )
    samples = truncate_samples(
        SyntheticFlanDataset(num_samples=400, seed=7).samples, 512, decoder_only=True
    )
    jobs = build_jobs(cost_model, samples)
    rows, reports = benchmark.pedantic(
        run_planning_modes, args=(jobs,), rounds=1, iterations=1
    )
    emit(
        "fleet_planning_modes",
        f"Fleet planning transports: {NUM_JOBS} jobs, {PLANNER_PROCS} planner "
        f"worker(s), {len(FAILURE_SCHEDULE)} injected device failures",
        PLANNING_HEADERS,
        rows,
        capsys,
    )
    per_attempt = reports["per-attempt"]
    shared = reports["shared-pool"]
    # The transport is invisible in the simulated outcome...
    assert per_attempt.finished_jobs == shared.finished_jobs == NUM_JOBS
    assert per_attempt.makespan_ms == shared.makespan_ms
    # ...but worker spawn is amortised fleet-wide: exactly one pool's
    # workers for the whole run vs one pool per job attempt.
    assert shared.planner_workers_spawned == PLANNER_PROCS
    total_attempts = sum(job.attempts for job in per_attempt.jobs)
    assert per_attempt.planner_workers_spawned == total_attempts * PLANNER_PROCS
    assert shared.planner_workers_spawned < per_attempt.planner_workers_spawned
