"""Figure 16b — ablation of pipeline schedules.

GPT on a 4-stage pipeline (the grid-searched best for the paper's setting),
maximum sequence length 4096.  The same DP-constructed micro-batches are
executed under three schedules — 1F1B, adaptive without micro-batch
reordering, and adaptive with the cluster-permutation reordering — and the
measured (noisy) throughput is normalised to 1F1B, for global batch sizes
16384 and 65536 tokens.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive_schedule import AdaptiveScheduler, ScheduleKind
from repro.core.microbatch import DynamicMicroBatcher
from repro.core.microbatch_ordering import cluster_and_order
from repro.data.sampler import MiniBatchSampler
from repro.model.memory import RecomputeMode
from repro.simulator.engine import simulate_schedule

from common import cost_model, emit, truncated_samples

NUM_GPUS = 8
PIPELINE_STAGES = 4
MAX_SEQ_LEN = 4096
GLOBAL_BATCHES = (16384, 65536)
NOISE_STD = 0.15
TRIALS = 5


def _noisy_makespan(build, rng) -> float:
    noisy = {
        op: max(0.05, duration * (1.0 + rng.normal(0.0, NOISE_STD)))
        for op, duration in build.durations.items()
    }
    return simulate_schedule(build.schedule, noisy).makespan_ms


def run():
    cm = cost_model("gpt", NUM_GPUS, PIPELINE_STAGES, 1, 2, MAX_SEQ_LEN)
    scheduler = AdaptiveScheduler(cm)
    samples = truncated_samples(MAX_SEQ_LEN, True)
    rows = []
    for global_batch in GLOBAL_BATCHES:
        sampler = MiniBatchSampler(list(samples), global_batch, seed=0)
        minibatch = next(iter(sampler)).samples
        # Selective recomputation keeps single long-sequence samples within the
        # per-micro-batch memory limit at this model scale (the planner's
        # dynamic recomputation would make the same choice).
        mode = RecomputeMode.SELECTIVE
        result = DynamicMicroBatcher(cm, recompute=mode, tmax_sample_count=16).split(minibatch)
        shapes = [mb.shape() for mb in result.micro_batches]

        builds = {
            "1F1B": scheduler.build(shapes, kind=ScheduleKind.ONE_F_ONE_B, recompute=mode),
            "Adaptive (no reorder)": scheduler.build(
                shapes, kind=ScheduleKind.MEMORY_AWARE_ADAPTIVE, recompute=mode
            ),
        }
        times = [cm.microbatch_time_ms(shape, mode) for shape in shapes]
        search = cluster_and_order(
            times,
            lambda order: simulate_schedule(
                scheduler.build(
                    shapes, kind=ScheduleKind.MEMORY_AWARE_ADAPTIVE, recompute=mode,
                    injection_order=order,
                ).schedule,
                scheduler.duration_map(shapes, mode),
            ).makespan_ms,
            num_clusters=3,
        )
        builds["Adaptive"] = scheduler.build(
            shapes, kind=ScheduleKind.MEMORY_AWARE_ADAPTIVE, recompute=mode,
            injection_order=search.order,
        )

        rng = np.random.default_rng(11)
        makespans = {
            name: float(np.mean([_noisy_makespan(build, rng) for _ in range(TRIALS)]))
            for name, build in builds.items()
        }
        reference = makespans["1F1B"]
        for name, makespan in makespans.items():
            rows.append([global_batch, name, round(reference / makespan, 3)])
    return rows


def test_fig16b_ablation_schedule(benchmark, capsys):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig16b_ablation_schedule",
        "Fig. 16b: pipeline schedule ablation — normalized throughput vs 1F1B (GPT, 4 stages)",
        ["global_batch_tokens", "schedule", "normalized_throughput"],
        rows,
        capsys,
    )
    by_key = {(row[0], row[1]): row[2] for row in rows}
    for global_batch in GLOBAL_BATCHES:
        assert by_key[(global_batch, "1F1B")] == 1.0
        # Adaptive scheduling improves throughput over 1F1B under execution
        # time variation (paper reports 7-10%; any consistent gain counts).
        assert by_key[(global_batch, "Adaptive")] >= 1.0
        assert by_key[(global_batch, "Adaptive (no reorder)")] >= 0.98
