"""Figure 11 — the trade-off between safety stock and memory consumption.

Three schedules over the same micro-batches are compared: 1F1B, the
adaptive schedule with unrestricted injection, and the memory-aware adaptive
schedule with a peak-memory limit.  For each we report the steady-state
safety stock of the middle stages, the peak number of in-flight micro-batch
activations, and the makespan under execution-time noise — reproducing the
qualitative trade-off of Fig. 11a/b/c.
"""

from __future__ import annotations

import numpy as np

from repro.schedule.cyclic import cyclic_schedule
from repro.schedule.events import OpType
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.schedule.safety_stock import safety_stock_profile
from repro.simulator.engine import simulate_schedule

from common import emit

NUM_STAGES = 4
NUM_MICROBATCHES = 8
NOISE_STD = 0.4
TRIALS = 10
MEMORY_LIMIT = 3.0  # micro-batch activations per stage (Fig. 11c uses 3)


def run():
    activation = [[1.0] * NUM_STAGES for _ in range(NUM_MICROBATCHES)]
    schedules = {
        "1F1B": one_f_one_b_schedule(NUM_STAGES, NUM_MICROBATCHES),
        "Adaptive": cyclic_schedule(NUM_STAGES, activation),
        "Adaptive (mem<=3)": cyclic_schedule(
            NUM_STAGES, activation, memory_limits=[MEMORY_LIMIT] * NUM_STAGES
        ),
    }
    rng = np.random.default_rng(3)
    rows = []
    for name, schedule in schedules.items():
        uniform = simulate_schedule(
            schedule,
            lambda op: 1.0 if op.op_type is OpType.FORWARD else 2.0,
            activation_bytes=activation,
        )
        stock = safety_stock_profile(schedule, uniform.op_times)
        mean_stock = float(np.mean([np.mean(s) for s in stock.per_stage_samples[1:-1]]))
        peak_in_flight = max(uniform.peak_activation_bytes)
        makespans = []
        for _ in range(TRIALS):
            noise = {
                (mb, op_type): max(
                    0.05,
                    (1.0 if op_type is OpType.FORWARD else 2.0) * (1.0 + rng.normal(0, NOISE_STD)),
                )
                for mb in range(NUM_MICROBATCHES)
                for op_type in OpType
            }
            result = simulate_schedule(
                schedule, lambda op: noise[(op.microbatch, op.op_type)]
            )
            makespans.append(result.makespan_ms)
        rows.append(
            [
                name,
                round(mean_stock, 2),
                round(peak_in_flight, 1),
                round(float(np.mean(makespans)), 2),
            ]
        )
    return rows


def test_fig11_safety_stock_memory_tradeoff(benchmark, capsys):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig11_safety_stock",
        "Fig. 11: safety stock vs peak in-flight activations vs noisy makespan",
        ["schedule", "mean_safety_stock(mid stages)", "peak_in_flight_activations", "noisy_makespan_ms"],
        rows,
        capsys,
    )
    by_name = {row[0]: row for row in rows}
    # Adaptive injection raises safety stock and memory relative to 1F1B.
    assert by_name["Adaptive"][1] >= by_name["1F1B"][1]
    assert by_name["Adaptive"][2] >= by_name["1F1B"][2]
    # The memory-aware variant respects the configured limit.
    assert by_name["Adaptive (mem<=3)"][2] <= MEMORY_LIMIT + 1e-9
    # And the extra stock translates into a lower makespan under noise.
    assert by_name["Adaptive"][3] <= by_name["1F1B"][3] * 1.02
