"""Synthetic multi-task dataset substrate.

The paper evaluates on the FLANv2 zero-shot collection (1836 tasks, heavy
tailed sequence-length distribution, Fig. 1b), down-sampled to 100 K
samples.  The raw dataset and its tokenizer are not available offline, so
this package generates a synthetic mixture whose *length statistics* are
calibrated to the numbers the paper quotes (CNN/DailyMail mean input 977.7
tokens, MNLI mean 51.6, lengths spanning tens to tens of thousands of
tokens).  The planner and all baselines consume nothing but sequence-length
pairs, so this preserves the behaviour that drives every experiment.
"""

from repro.data.flan import FLAN_TASK_SPECS, SyntheticFlanDataset
from repro.data.sampler import MiniBatch, MiniBatchSampler
from repro.data.tasks import Sample, TaskSpec
from repro.data.truncation import truncate_sample, truncate_samples

__all__ = [
    "Sample",
    "TaskSpec",
    "FLAN_TASK_SPECS",
    "SyntheticFlanDataset",
    "MiniBatch",
    "MiniBatchSampler",
    "truncate_sample",
    "truncate_samples",
]
