"""Mini-batch sampling.

The paper fixes the *global batch size* in tokens (e.g. 65536 tokens per
training iteration) and draws mini-batches randomly from the task mixture.
DynaPipe deliberately does not change how mini-batches are constructed —
only how a given mini-batch is split into micro-batches — so the same
sampler feeds the packing baselines and DynaPipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.data.tasks import Sample
from repro.utils.rng import SeedLike, new_rng


@dataclass
class MiniBatch:
    """One training iteration's worth of samples.

    Attributes:
        index: Iteration index within the epoch.
        samples: The samples in the mini-batch, in sampling order.
    """

    index: int
    samples: list[Sample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def total_tokens(self) -> int:
        """Total non-padding tokens (input + target) in the mini-batch."""
        return sum(s.total_tokens for s in self.samples)

    def max_input_tokens(self) -> int:
        """Longest input sequence in the mini-batch."""
        return max((s.input_tokens for s in self.samples), default=0)

    def max_target_tokens(self) -> int:
        """Longest target sequence in the mini-batch."""
        return max((s.target_tokens for s in self.samples), default=0)


class MiniBatchSampler:
    """Randomly partitions a dataset epoch into token-budgeted mini-batches.

    Samples are shuffled once per epoch and greedily accumulated until the
    global token budget is reached, matching how token-based global batch
    sizes are realised in Megatron-LM style dataloaders.

    Args:
        samples: The dataset's samples.
        global_batch_tokens: Target number of (non-padding) tokens per
            mini-batch.
        seed: Shuffle seed.
        drop_last: Whether to drop a final under-full mini-batch.
    """

    def __init__(
        self,
        samples: Sequence[Sample],
        global_batch_tokens: int,
        seed: SeedLike = 0,
        drop_last: bool = False,
    ) -> None:
        if global_batch_tokens < 1:
            raise ValueError(
                f"global_batch_tokens must be >= 1, got {global_batch_tokens}"
            )
        if not samples:
            raise ValueError("samples must not be empty")
        self._samples = list(samples)
        self.global_batch_tokens = global_batch_tokens
        self.drop_last = drop_last
        self._seed = seed

    def epoch(self, epoch_index: int = 0) -> Iterator[MiniBatch]:
        """Iterate over the mini-batches of one epoch.

        Each epoch uses an independent shuffle derived from the sampler seed
        and the epoch index, so epochs differ but remain reproducible.
        """
        rng = new_rng(None if self._seed is None else hash((self._seed, epoch_index)) % (2**63))
        order = rng.permutation(len(self._samples))
        current: list[Sample] = []
        tokens = 0
        batch_index = 0
        for position in order:
            sample = self._samples[int(position)]
            current.append(sample)
            tokens += sample.total_tokens
            if tokens >= self.global_batch_tokens:
                yield MiniBatch(index=batch_index, samples=current)
                batch_index += 1
                current = []
                tokens = 0
        if current and not self.drop_last:
            yield MiniBatch(index=batch_index, samples=current)

    def __iter__(self) -> Iterator[MiniBatch]:
        return self.epoch(0)

    def num_batches_estimate(self) -> int:
        """Rough number of mini-batches per epoch."""
        total = sum(s.total_tokens for s in self._samples)
        return max(1, total // self.global_batch_tokens)
