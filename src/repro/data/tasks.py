"""Task and sample abstractions.

A multi-task training *sample* is reduced to the only attributes that matter
to batching and scheduling decisions: the task it came from, the tokenised
input length and the tokenised target length.  For decoder-only (GPT)
training the two are concatenated into a single sequence; for
encoder-decoder (T5) training they feed the encoder and decoder separately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True, order=True)
class Sample:
    """One training sample, reduced to its sequence lengths.

    Attributes:
        input_tokens: Number of tokens in the (instruction + context) input.
        target_tokens: Number of tokens in the expected response.
        task: Name of the originating task (used for mixture bookkeeping).
    """

    input_tokens: int
    target_tokens: int
    task: str = "unknown"

    def __post_init__(self) -> None:
        if self.input_tokens < 1:
            raise ValueError(f"input_tokens must be >= 1, got {self.input_tokens}")
        if self.target_tokens < 0:
            raise ValueError(f"target_tokens must be >= 0, got {self.target_tokens}")

    @property
    def total_tokens(self) -> int:
        """Input plus target tokens (the decoder-only sequence length)."""
        return self.input_tokens + self.target_tokens

    def as_decoder_only_length(self) -> int:
        """Sequence length when input and target are concatenated (GPT)."""
        return self.total_tokens


@dataclass(frozen=True)
class TaskSpec:
    """Statistical description of one task's sequence lengths.

    Lengths are drawn from log-normal distributions, which match the heavy
    right tail visible in the paper's Fig. 1b, parameterised by the *mean*
    and coefficient-of-variation of the token counts.

    Attributes:
        name: Task name.
        mean_input_tokens: Mean tokenised input length.
        mean_target_tokens: Mean tokenised target length.
        input_cv: Coefficient of variation (std / mean) of the input length.
        target_cv: Coefficient of variation of the target length.
        weight: Relative sampling weight of the task in the mixture.
    """

    name: str
    mean_input_tokens: float
    mean_target_tokens: float
    input_cv: float = 0.6
    target_cv: float = 0.6
    weight: float = 1.0

    def __post_init__(self) -> None:
        check_positive("mean_input_tokens", self.mean_input_tokens)
        check_non_negative("mean_target_tokens", self.mean_target_tokens)
        check_positive("weight", self.weight)
        check_non_negative("input_cv", self.input_cv)
        check_non_negative("target_cv", self.target_cv)

    def _lognormal_params(self, mean: float, cv: float) -> tuple[float, float]:
        """Convert (mean, cv) of the length into log-normal (mu, sigma)."""
        variance_ratio = 1.0 + cv * cv
        sigma = float(np.sqrt(np.log(variance_ratio)))
        mu = float(np.log(mean) - 0.5 * sigma * sigma)
        return mu, sigma

    def draw(self, rng: np.random.Generator) -> Sample:
        """Draw one sample's lengths from the task distributions."""
        in_mu, in_sigma = self._lognormal_params(self.mean_input_tokens, self.input_cv)
        input_tokens = max(1, int(round(rng.lognormal(in_mu, in_sigma))))
        if self.mean_target_tokens <= 0:
            target_tokens = 0
        else:
            tg_mu, tg_sigma = self._lognormal_params(self.mean_target_tokens, self.target_cv)
            target_tokens = max(1, int(round(rng.lognormal(tg_mu, tg_sigma))))
        return Sample(input_tokens=input_tokens, target_tokens=target_tokens, task=self.name)
