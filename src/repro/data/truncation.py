"""Sequence truncation.

Both packing-based baselines and DynaPipe truncate individual sequences that
exceed the configured maximum sequence length (paper §8.1: "sequences that
are longer are truncated").  Raising the maximum sequence length therefore
*increases* the number of non-padding tokens available for training, which
is why the paper reports throughput in actual (non-padding) tokens per
second.
"""

from __future__ import annotations

from typing import Iterable

from repro.data.tasks import Sample


def truncate_sample(sample: Sample, max_input_tokens: int, max_target_tokens: int | None = None) -> Sample:
    """Truncate one sample's input (and optionally target) length.

    Args:
        sample: The sample to truncate.
        max_input_tokens: Maximum allowed input length.  For decoder-only
            models callers should pass the full maximum sequence length here
            and leave ``max_target_tokens`` as None, then re-check the
            concatenated length.
        max_target_tokens: Maximum allowed target length (None = unlimited).
    """
    if max_input_tokens < 1:
        raise ValueError(f"max_input_tokens must be >= 1, got {max_input_tokens}")
    input_tokens = min(sample.input_tokens, max_input_tokens)
    target_tokens = sample.target_tokens
    if max_target_tokens is not None:
        if max_target_tokens < 0:
            raise ValueError(f"max_target_tokens must be >= 0, got {max_target_tokens}")
        target_tokens = min(target_tokens, max_target_tokens)
    if input_tokens == sample.input_tokens and target_tokens == sample.target_tokens:
        return sample
    return Sample(input_tokens=input_tokens, target_tokens=target_tokens, task=sample.task)


def truncate_samples(
    samples: Iterable[Sample],
    max_seq_len: int,
    decoder_only: bool = False,
    target_fraction: float = 0.25,
) -> list[Sample]:
    """Truncate a collection of samples to a maximum sequence length.

    For encoder-decoder models the input and target sequences are truncated
    independently to ``max_seq_len``.  For decoder-only models the
    concatenated sequence must fit in ``max_seq_len``; when it does not, the
    input is truncated first, preserving at most ``target_fraction`` of the
    budget for the target (mirroring common instruction-tuning dataloaders
    that keep responses intact whenever possible).
    """
    if max_seq_len < 2:
        raise ValueError(f"max_seq_len must be >= 2, got {max_seq_len}")
    result: list[Sample] = []
    for sample in samples:
        if decoder_only:
            if sample.total_tokens <= max_seq_len:
                result.append(sample)
                continue
            target_budget = min(sample.target_tokens, int(max_seq_len * target_fraction))
            input_budget = max(1, max_seq_len - target_budget)
            result.append(
                Sample(
                    input_tokens=min(sample.input_tokens, input_budget),
                    target_tokens=min(sample.target_tokens, max_seq_len - min(sample.input_tokens, input_budget)),
                    task=sample.task,
                )
            )
        else:
            result.append(truncate_sample(sample, max_seq_len, max_seq_len))
    return result
