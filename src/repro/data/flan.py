"""Synthetic FLANv2-like multi-task mixture.

The real FLANv2 zero-shot collection mixes 1836 tasks whose tokenised input
lengths range from a handful of tokens (single-sentence grammaticality
checks) to tens of thousands (long-document summarisation), producing the
heavy-tailed distribution of the paper's Fig. 1b and an average padding
waste above 80% under naive padding.

The task specifications below are a condensed mixture covering the task
categories the paper's introduction highlights, with length statistics
calibrated to the numbers quoted in the paper (e.g. CNN/DailyMail mean input
977.7 tokens, MNLI mean 51.6).  Weights skew toward short tasks, as in the
real collection, so the length distribution is heavy tailed to the right.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.data.tasks import Sample, TaskSpec
from repro.utils.rng import SeedLike, new_rng

#: Condensed FLANv2-like task mixture.
FLAN_TASK_SPECS: tuple[TaskSpec, ...] = (
    # Long-context tasks (summarisation / information extraction).
    TaskSpec("cnn_dailymail_summarization", 977.7, 60.0, input_cv=0.45, target_cv=0.5, weight=0.08),
    TaskSpec("xsum_summarization", 430.0, 25.0, input_cv=0.55, target_cv=0.4, weight=0.07),
    TaskSpec("multi_news_summarization", 2100.0, 270.0, input_cv=0.8, target_cv=0.5, weight=0.03),
    TaskSpec("long_document_qa", 3800.0, 40.0, input_cv=1.0, target_cv=0.6, weight=0.02),
    TaskSpec("scientific_summarization", 5200.0, 180.0, input_cv=1.1, target_cv=0.5, weight=0.01),
    # Medium-length tasks (translation, reading comprehension).
    TaskSpec("wmt_translation", 140.0, 140.0, input_cv=0.6, target_cv=0.6, weight=0.14),
    TaskSpec("squad_qa", 180.0, 8.0, input_cv=0.5, target_cv=0.7, weight=0.12),
    TaskSpec("boolq", 120.0, 3.0, input_cv=0.5, target_cv=0.2, weight=0.08),
    TaskSpec("common_gen", 35.0, 25.0, input_cv=0.4, target_cv=0.5, weight=0.07),
    # Short tasks (classification-style instruction tuning).
    TaskSpec("mnli_entailment", 51.6, 3.0, input_cv=0.45, target_cv=0.2, weight=0.15),
    TaskSpec("cola_grammaticality", 28.0, 3.0, input_cv=0.35, target_cv=0.2, weight=0.12),
    TaskSpec("sst2_sentiment", 32.0, 3.0, input_cv=0.4, target_cv=0.2, weight=0.11),
)


class SyntheticFlanDataset:
    """A finite synthetic multi-task dataset.

    Samples are materialised eagerly (the paper down-samples FLANv2 to 100 K
    samples; the default here is smaller to keep tests fast) so that epochs
    are reproducible and the dataset can be iterated multiple times.

    Args:
        num_samples: Number of samples to generate.
        task_specs: Task mixture (defaults to :data:`FLAN_TASK_SPECS`).
        seed: Random seed for reproducibility.
    """

    def __init__(
        self,
        num_samples: int = 10_000,
        task_specs: Sequence[TaskSpec] = FLAN_TASK_SPECS,
        seed: SeedLike = 0,
    ) -> None:
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        if not task_specs:
            raise ValueError("task_specs must not be empty")
        self.task_specs = tuple(task_specs)
        rng = new_rng(seed)
        weights = np.array([spec.weight for spec in self.task_specs], dtype=float)
        weights = weights / weights.sum()
        task_indices = rng.choice(len(self.task_specs), size=num_samples, p=weights)
        self._samples: list[Sample] = [
            self.task_specs[int(idx)].draw(rng) for idx in task_indices
        ]

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self._samples)

    def __getitem__(self, index: int) -> Sample:
        return self._samples[index]

    @property
    def samples(self) -> list[Sample]:
        """All samples of the dataset (a copy is not made; do not mutate)."""
        return self._samples

    def total_tokens(self) -> int:
        """Total number of (non-padding) tokens across the dataset."""
        return sum(s.total_tokens for s in self._samples)

    def input_length_statistics(self) -> dict[str, float]:
        """Summary statistics of input sequence lengths (mean/p50/p95/max)."""
        lengths = np.array([s.input_tokens for s in self._samples], dtype=float)
        return {
            "mean": float(lengths.mean()),
            "p50": float(np.percentile(lengths, 50)),
            "p95": float(np.percentile(lengths, 95)),
            "p99": float(np.percentile(lengths, 99)),
            "max": float(lengths.max()),
        }

    def task_histogram(self) -> dict[str, int]:
        """Number of samples drawn from each task."""
        histogram: dict[str, int] = {}
        for sample in self._samples:
            histogram[sample.task] = histogram.get(sample.task, 0) + 1
        return histogram
