"""Argument validation helpers shared by the public API.

Raising early with a precise message is preferred over letting a bad
parameter propagate into the planner where the failure mode would be an
opaque scheduling error.
"""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value
