"""Small statistics helpers used throughout the reproduction.

These exist so that benchmark harnesses and cost-model accuracy reports
(Fig. 18 in the paper) compute their summary statistics the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty iterable."""
    values = list(values)
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean() of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean() requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of ``values``."""
    if not values:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(data[lo])
    frac = rank - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


def mean_percentage_error(predicted: Sequence[float], measured: Sequence[float]) -> float:
    """Mean absolute percentage error (in percent) of predictions.

    This is the metric the paper reports for cost-model accuracy
    (Fig. 18): ``mean(|pred - meas| / meas) * 100``.
    """
    if len(predicted) != len(measured):
        raise ValueError(
            f"length mismatch: {len(predicted)} predictions vs {len(measured)} measurements"
        )
    if not predicted:
        raise ValueError("mean_percentage_error() of empty sequences")
    errors = []
    for p, m in zip(predicted, measured):
        if m == 0:
            raise ValueError("measured value of zero makes percentage error undefined")
        errors.append(abs(p - m) / abs(m))
    return 100.0 * mean(errors)


@dataclass
class RunningStat:
    """Streaming mean/variance/min/max accumulator (Welford's algorithm)."""

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    min_value: float = field(default=math.inf)
    max_value: float = field(default=-math.inf)

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Mean of the observations seen so far (0.0 if none)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Return a new accumulator combining ``self`` and ``other``."""
        if self.count == 0:
            return RunningStat(
                other.count, other._mean, other._m2, other.min_value, other.max_value
            )
        if other.count == 0:
            return RunningStat(
                self.count, self._mean, self._m2, self.min_value, self.max_value
            )
        total = self.count + other.count
        delta = other._mean - self._mean
        merged_mean = self._mean + delta * other.count / total
        merged_m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        return RunningStat(
            total,
            merged_mean,
            merged_m2,
            min(self.min_value, other.min_value),
            max(self.max_value, other.max_value),
        )
