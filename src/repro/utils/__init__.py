"""Shared utilities for the DynaPipe reproduction.

The utilities are intentionally small and dependency free: deterministic
random number helpers, light-weight statistics, and a logging shim that the
rest of the package uses instead of configuring the root logger.
"""

from repro.utils.rng import RngMixin, new_rng, spawn_rng
from repro.utils.stats import (
    RunningStat,
    geometric_mean,
    mean,
    mean_percentage_error,
    percentile,
)
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "RngMixin",
    "new_rng",
    "spawn_rng",
    "RunningStat",
    "geometric_mean",
    "mean",
    "mean_percentage_error",
    "percentile",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
