"""Deterministic random-number helpers.

Every stochastic component in the reproduction (synthetic dataset
generation, execution-time noise injection, permutation search) accepts an
explicit seed or ``numpy.random.Generator``.  These helpers keep the
construction of generators consistent so experiments are reproducible
bit-for-bit across runs.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged so
    callers can thread one generator through a call chain), or ``None`` for
    an OS-entropy seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used when work is farmed out to logically-parallel components (e.g. one
    generator per data-parallel replica) so that changing the number of
    components does not perturb the random stream of the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


class RngMixin:
    """Mixin providing a lazily-created, seedable generator attribute."""

    _rng: Optional[np.random.Generator] = None
    _seed: SeedLike = None

    def set_seed(self, seed: SeedLike) -> None:
        """Set (or reset) the seed; the generator is rebuilt on next use."""
        self._seed = seed
        self._rng = None

    @property
    def rng(self) -> np.random.Generator:
        """The lazily constructed random generator."""
        if self._rng is None:
            self._rng = new_rng(self._seed)
        return self._rng
