"""repro — a from-scratch reproduction of DynaPipe (EuroSys 2024).

DynaPipe trains multi-task language models efficiently by replacing padding
and packing with *dynamic micro-batching*: each training iteration's
mini-batch is partitioned into variable-size, variable-sequence-length
micro-batches with a dynamic-programming optimiser, scheduled on the
pipeline with a memory-aware adaptive schedule robust to execution-time
variation, and executed with ahead-of-time planned, deadlock-free
communication.

The reproduction runs entirely on an analytic cluster simulator (no GPUs
required) while exercising the same planner/executor code paths as the real
system; see ``DESIGN.md`` for the substitution map and the per-experiment
index.

Quickstart::

    from repro import (
        CostModel, DynaPipePlanner, SyntheticFlanDataset, get_model_config,
    )

    model = get_model_config("gpt", num_gpus=8)
    cost_model = CostModel(model, num_stages=4)
    planner = DynaPipePlanner(cost_model, data_parallel_size=2)
    dataset = SyntheticFlanDataset(num_samples=2_000, seed=0)
    plan = planner.plan(dataset.samples[:128])
    print(plan.predicted_iteration_ms, plan.padding.overall_efficiency)
"""

from repro.baselines import BaselineConfig, MLMDeepSpeedBaseline
from repro.batching import (
    FixedSizeBatching,
    MicroBatch,
    NaivePaddingBatching,
    PackingBatching,
    TokenBasedBatching,
    padding_stats,
)
from repro.cluster import A100_40GB, ClusterTopology, DeviceSpec, NetworkModel, SimulatedGPU
from repro.core import (
    AdaptiveScheduler,
    DynamicMicroBatcher,
    DynaPipePlanner,
    ExecutionPlan,
    IterationPlan,
    OrderingMethod,
    PlannerConfig,
    ScheduleKind,
)
from repro.costmodel import CostModel
from repro.data import MiniBatchSampler, Sample, SyntheticFlanDataset, TaskSpec
from repro.model import (
    GPT_CONFIGS,
    T5_CONFIGS,
    MicroBatchShape,
    ModelArch,
    ModelConfig,
    RecomputeMode,
    get_model_config,
)
from repro.fleet import (
    FleetConfig,
    FleetReport,
    FleetScheduler,
    JobSpec,
    JobState,
    PreemptivePriorityPolicy,
)
from repro import obs
from repro.backends import ExecutionBackend, available_backends, get_backend
from repro.parallel import ParallelConfig, enumerate_parallel_configs, grid_search
from repro.runtime import ExecutorService, PlannerPool, TrainingOrchestrator
from repro.training import TrainerConfig, TrainingReport, TrainingSession

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model / substrate
    "ModelArch",
    "ModelConfig",
    "GPT_CONFIGS",
    "T5_CONFIGS",
    "get_model_config",
    "MicroBatchShape",
    "RecomputeMode",
    "DeviceSpec",
    "SimulatedGPU",
    "A100_40GB",
    "NetworkModel",
    "ClusterTopology",
    "CostModel",
    # data
    "Sample",
    "TaskSpec",
    "SyntheticFlanDataset",
    "MiniBatchSampler",
    # batching
    "MicroBatch",
    "NaivePaddingBatching",
    "PackingBatching",
    "TokenBasedBatching",
    "FixedSizeBatching",
    "padding_stats",
    # core contribution
    "DynamicMicroBatcher",
    "OrderingMethod",
    "AdaptiveScheduler",
    "ScheduleKind",
    "DynaPipePlanner",
    "PlannerConfig",
    "IterationPlan",
    "ExecutionPlan",
    # parallelism / baselines / training
    "ParallelConfig",
    "enumerate_parallel_configs",
    "grid_search",
    "MLMDeepSpeedBaseline",
    "BaselineConfig",
    "TrainingSession",
    "TrainerConfig",
    "TrainingReport",
    "PlannerPool",
    "ExecutorService",
    "TrainingOrchestrator",
    # fleet scheduling
    "FleetScheduler",
    "FleetConfig",
    "FleetReport",
    "JobSpec",
    "JobState",
    "PreemptivePriorityPolicy",
    # execution backends
    "ExecutionBackend",
    "available_backends",
    "get_backend",
    # observability
    "obs",
]
