"""Scheduler checkpoint/restore: crash resilience for the fleet itself.

PRs 3–5 made *jobs* fault-tolerant — each one resumes from its
:class:`~repro.fleet.job.JobCheckpoint` after preemption — but the
:class:`~repro.fleet.scheduler.FleetScheduler` was a run-to-completion
loop that died with the process.  This module snapshots the **full
scheduler state at an event boundary** to one JSON-safe dict and rebuilds
a scheduler that resumes the event loop deterministically:

* **What is captured** — every job record (life-cycle counters, attempts,
  committed checkpoint, planning-failure/backoff bookkeeping), the pending
  queue *in order*, running attempts with their gangs and in-flight
  completion times, the gang allocator's free/failed/absent partition plus
  explicit per-gang device ownership, the queued capacity-event heap
  (repairs, arrivals, planner faults) and its tie-break sequence, the
  failure schedule and its cursor, failure epochs, down-time and busy-time
  accounting, the scheduler RNG state (backoff jitter), trace events and
  the capacity timeline.

* **What is not** — job *specs* (cost models, sample sets, planner
  factories hold closures and large arrays); :func:`restore_scheduler`
  takes them again by name.  In-flight iterations are not serialised
  either: the determinism contract of
  :meth:`~repro.fleet.job.JobSpec.trainer_config` (noise RNG
  fast-forwarded by the committed-iteration count) means re-stepping a
  rebuilt attempt regenerates the snapshot's pending iteration
  bit-identically, so only its start/completion stamps are kept.

**Restore invariants.**  A run killed at any event boundary (via the
``on_event`` hook raising, e.g. :class:`SchedulerKilled`) and restored
from the boundary's snapshot produces per-job records and a
:class:`~repro.fleet.metrics.FleetReport` bit-identical to the
uninterrupted run — modulo wall-clock planning times and, in pooled mode,
the respawned worker count.  The 4-way device partition invariant is
re-checked on restore; a snapshot whose policy or cluster size disagrees
with the restoring configuration is rejected.
"""

from __future__ import annotations

import heapq
from dataclasses import asdict
from typing import TYPE_CHECKING, Any

from repro.cluster.topology import ClusterTopology
from repro.fleet.gang import DeviceGang
from repro.fleet.job import JobAttempt, JobCheckpoint, JobRecord, JobSpec
from repro.fleet.metrics import CapacityEvent
from repro.simulator.trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scheduler imports us lazily)
    from repro.fleet.scheduler import FleetConfig, FleetScheduler

#: Format version of the snapshot dict; bumped on incompatible layout changes.
#: Version 2 (the scheduler-core split) added the ``"core"`` provenance
#: field and canonicalized ``"capacity_heap"`` to ``(time, seq)`` order so
#: snapshots are byte-identical across cores; version-1 snapshots (raw heap
#: order, no core field) are still read.
SNAPSHOT_VERSION = 2

#: Snapshot versions :func:`restore_scheduler` accepts.
SUPPORTED_SNAPSHOT_VERSIONS = (1, 2)


class SchedulerKilled(RuntimeError):
    """Raised by test/chaos ``on_event`` hooks to simulate a scheduler crash.

    Raising it from :attr:`~repro.fleet.scheduler.FleetConfig.on_event`
    aborts ``run()`` at an event boundary exactly the way a process death
    would — after the previous event fully applied, before the next
    admission pass — while the ``finally`` block still tears down planner
    resources (a real crash would leak the processes; the simulation keeps
    the test host clean).
    """


def _serialize_gang(gang: DeviceGang) -> dict[str, Any]:
    return {
        "job": gang.job,
        "devices": list(gang.devices),
        "data_parallel": gang.data_parallel,
        "pipeline_parallel": gang.pipeline_parallel,
        "tensor_parallel": gang.tensor_parallel,
    }


def _restore_gang(payload: dict[str, Any]) -> DeviceGang:
    return DeviceGang(
        job=payload["job"],
        devices=tuple(payload["devices"]),
        data_parallel=payload["data_parallel"],
        pipeline_parallel=payload["pipeline_parallel"],
        tensor_parallel=payload["tensor_parallel"],
    )


def _serialize_record(record: JobRecord) -> dict[str, Any]:
    return {
        "name": record.spec.name,
        "sequence": record.sequence,
        "state": record.state,
        "checkpoint": record.checkpoint.to_dict(),
        "attempts": [
            {**asdict(attempt), "devices": list(attempt.devices)}
            for attempt in record.attempts
        ],
        "retries": record.retries,
        "preemptions": record.preemptions,
        "evictions": record.evictions,
        "regrows": record.regrows,
        "first_admitted_ms": record.first_admitted_ms,
        "finished_ms": record.finished_ms,
        "failure_reason": record.failure_reason,
        "not_before_ms": record.not_before_ms,
        "planning_retries": record.planning_retries,
        "planning_failure_streak": record.planning_failure_streak,
        "planning_failed_since_ms": record.planning_failed_since_ms,
        "last_queued_ms": record.last_queued_ms,
        "degraded_iterations": record.degraded_iterations,
    }


def _restore_record(payload: dict[str, Any], spec: JobSpec) -> JobRecord:
    return JobRecord(
        spec=spec,
        sequence=payload["sequence"],
        state=payload["state"],
        checkpoint=JobCheckpoint.from_dict(payload["checkpoint"]),
        attempts=[
            JobAttempt(**{**attempt, "devices": tuple(attempt["devices"])})
            for attempt in payload["attempts"]
        ],
        retries=payload["retries"],
        preemptions=payload["preemptions"],
        evictions=payload["evictions"],
        regrows=payload["regrows"],
        first_admitted_ms=payload["first_admitted_ms"],
        finished_ms=payload["finished_ms"],
        failure_reason=payload["failure_reason"],
        not_before_ms=payload["not_before_ms"],
        planning_retries=payload["planning_retries"],
        planning_failure_streak=payload["planning_failure_streak"],
        planning_failed_since_ms=payload["planning_failed_since_ms"],
        last_queued_ms=payload["last_queued_ms"],
        degraded_iterations=payload["degraded_iterations"],
    )


def snapshot_scheduler(scheduler: "FleetScheduler") -> dict[str, Any]:
    """The scheduler's full state at the current event boundary, JSON-safe.

    Call through :meth:`FleetScheduler.checkpoint` (which guards that the
    loop is live); the result round-trips through ``json.dumps`` /
    ``json.loads`` unchanged in meaning (tuples become lists — the restore
    path accepts both).
    """
    rng_version, rng_internal, rng_gauss = scheduler._rng.getstate()
    running_payload = []
    for running in sorted(
        scheduler._running.values(), key=lambda rj: rj.record.sequence
    ):
        owned = [
            device
            for device in running.gang.devices
            if scheduler.allocator.owner_of(device) is running.gang
        ]
        running_payload.append(
            {
                "job": running.record.spec.name,
                "gang": _serialize_gang(running.gang),
                "owned_devices": owned,
                "iteration_started_ms": running.iteration_started_ms,
                "completion_ms": running.completion_ms,
            }
        )
    failures = scheduler._failures_sorted or []
    return {
        "version": SNAPSHOT_VERSION,
        "core": scheduler.core,
        "policy": scheduler.policy.name,
        "num_devices": scheduler.topology.num_gpus,
        "clock_ms": scheduler._clock,
        "events_processed": scheduler._events_processed,
        "rng_state": [rng_version, list(rng_internal), rng_gauss],
        "jobs": [
            _serialize_record(record)
            for record in sorted(scheduler.jobs.values(), key=lambda r: r.sequence)
        ],
        "pending": [record.spec.name for record in scheduler._pending],
        "running": running_payload,
        "allocator": scheduler.allocator.snapshot_state(),
        "capacity_heap": scheduler._capacity_heap_snapshot(),
        "capacity_seq": scheduler._capacity_seq,
        "failure_epoch": [
            [device, epoch] for device, epoch in sorted(scheduler._failure_epoch.items())
        ],
        "failures": [[f.time_ms, f.device] for f in failures],
        "next_failure": scheduler._next_failure,
        "down_since": [
            [device, since] for device, since in sorted(scheduler._down_since.items())
        ],
        "dead_device_ms": scheduler._dead_device_ms,
        "busy_device_ms": scheduler._busy_device_ms,
        "planner_workers_spawned": scheduler._planner_workers_spawned,
        "repair_durations_ms": list(scheduler._repair_durations),
        "fault_log": [dict(entry) for entry in scheduler._fault_log],
        "trace_events": [asdict(event) for event in scheduler._trace_events],
        "capacity_timeline": [asdict(event) for event in scheduler._capacity_timeline],
    }


def restore_scheduler(
    snapshot: dict[str, Any],
    topology: ClusterTopology,
    specs: "dict[str, JobSpec]",
    config: "FleetConfig | None" = None,
    cls: "type[FleetScheduler] | None" = None,
) -> "FleetScheduler":
    """Rebuild a scheduler from :func:`snapshot_scheduler` output.

    Args:
        snapshot: The boundary snapshot (possibly after a JSON round-trip).
        topology: The cluster — must have the snapshot's device count.
        specs: Job specs by name; every snapshotted job must be present
            (specs carry the non-serialisable planner factories and cost
            models).
        config: Fleet configuration of the resumed run; must resolve to
            the snapshot's policy.  Defaults to a fresh ``FleetConfig``.
        cls: Scheduler class to instantiate (for subclasses).

    Returns:
        A scheduler whose :meth:`~repro.fleet.scheduler.FleetScheduler.run`
        resumes the event loop at the snapshotted boundary.
    """
    from repro.fleet.scheduler import DeviceFailure, FleetScheduler

    if snapshot.get("version") not in SUPPORTED_SNAPSHOT_VERSIONS:
        raise ValueError(
            f"unsupported snapshot version {snapshot.get('version')!r}; "
            f"this build reads versions {list(SUPPORTED_SNAPSHOT_VERSIONS)}"
        )
    if snapshot["num_devices"] != topology.num_gpus:
        raise ValueError(
            f"snapshot was taken on a {snapshot['num_devices']}-device cluster; "
            f"the restoring topology has {topology.num_gpus}"
        )
    scheduler = (cls or FleetScheduler)(topology, config)
    if scheduler.policy.name != snapshot["policy"]:
        raise ValueError(
            f"snapshot used policy {snapshot['policy']!r}; the restoring "
            f"configuration resolves to {scheduler.policy.name!r}"
        )

    missing = [job["name"] for job in snapshot["jobs"] if job["name"] not in specs]
    if missing:
        raise ValueError(f"specs missing for snapshotted jobs: {missing}")
    for payload in snapshot["jobs"]:
        record = _restore_record(payload, specs[payload["name"]])
        scheduler.jobs[record.spec.name] = record
    scheduler._pending = [scheduler.jobs[name] for name in snapshot["pending"]]

    allocated: list[tuple[DeviceGang, list[int]]] = []
    for payload in snapshot["running"]:
        record = scheduler.jobs[payload["job"]]
        gang = _restore_gang(payload["gang"])
        allocated.append((gang, list(payload["owned_devices"])))
        scheduler._restore_running.append(
            (
                record,
                gang,
                payload["iteration_started_ms"],
                payload["completion_ms"],
            )
        )
    allocator_state = snapshot["allocator"]
    scheduler.allocator.restore_state(
        allocator_state["free"],
        allocator_state["failed"],
        allocator_state["absent"],
        allocated,
    )

    scheduler._clock = snapshot["clock_ms"]
    scheduler._events_processed = snapshot["events_processed"]
    scheduler._capacity_heap = [
        (entry[0], entry[1], entry[2], entry[3], entry[4])
        for entry in snapshot["capacity_heap"]
    ]
    heapq.heapify(scheduler._capacity_heap)
    scheduler._capacity_seq = snapshot["capacity_seq"]
    scheduler._failure_epoch = {
        device: epoch for device, epoch in snapshot["failure_epoch"]
    }
    scheduler._failures_sorted = [
        DeviceFailure(time_ms=time_ms, device=device)
        for time_ms, device in snapshot["failures"]
    ]
    scheduler._next_failure = snapshot["next_failure"]
    scheduler._down_since = {device: since for device, since in snapshot["down_since"]}
    scheduler._dead_device_ms = snapshot["dead_device_ms"]
    scheduler._busy_device_ms = snapshot["busy_device_ms"]
    scheduler._planner_workers_spawned = snapshot["planner_workers_spawned"]
    scheduler._repair_durations = list(snapshot["repair_durations_ms"])
    scheduler._fault_log = [dict(entry) for entry in snapshot["fault_log"]]
    scheduler._trace_events = [
        TraceEvent(**event) for event in snapshot["trace_events"]
    ]
    scheduler._capacity_timeline = [
        CapacityEvent(**event) for event in snapshot["capacity_timeline"]
    ]
    rng_version, rng_internal, rng_gauss = snapshot["rng_state"]
    scheduler._rng.setstate((rng_version, tuple(rng_internal), rng_gauss))
    scheduler._restored = True
    return scheduler
