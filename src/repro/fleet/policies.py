"""Admission-ordering and preemption policies of the fleet scheduler.

A policy decides two things:

* the **order** in which queued jobs are considered for admission
  (:meth:`SchedulingPolicy.order`) — placement itself is gang scheduling
  with backfilling (a job that does not fit right now is skipped, not a
  barrier), so any ordering keeps the cluster busy whenever some queued
  job fits;
* whether a queued job may **gracefully preempt** a running one
  (:meth:`SchedulingPolicy.preempts`) — the scheduler asks this at every
  running job's iteration boundary, and an eviction lets the in-flight
  iteration *complete* before the gang is released (unlike a device
  failure, which discards it; see :mod:`repro.fleet.scheduler` for the
  two preemption flavours).  FIFO and shortest-remaining-work never
  preempt; :class:`PreemptivePriorityPolicy` evicts strictly lower
  priorities, optionally with **priority aging** (queued jobs gain one
  effective-priority level per ``aging_ms`` of waiting, bounding
  starvation without touching the eviction machinery).
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.fleet.job import JobRecord


class SchedulingPolicy(Protocol):
    """Orders the admissible queue; first fit wins the next free gang."""

    name: str

    def order(self, pending: Sequence[JobRecord], now_ms: float) -> list[JobRecord]:
        """Return ``pending`` in admission-preference order."""
        ...  # pragma: no cover - protocol definition

    def preempts(
        self, waiting: JobRecord, victim: JobRecord, now_ms: float = 0.0
    ) -> bool:
        """Whether queued ``waiting`` may evict running ``victim`` at an
        iteration boundary.  Policies without preemption return False.

        Optional for custom policies: the scheduler treats a policy
        without this method as never preempting, and a two-argument
        ``preempts(waiting, victim)`` (the pre-aging protocol) is still
        accepted — the scheduler adapts the call arity.
        """
        ...  # pragma: no cover - protocol definition


class FifoPolicy:
    """First-in-first-out: by submission time, then submission sequence."""

    name = "fifo"
    #: Declares that :meth:`preempts` is constant-False, letting the
    #: scheduler's fast core skip per-boundary eviction scans entirely.
    never_preempts = True

    def order(self, pending: Sequence[JobRecord], now_ms: float) -> list[JobRecord]:
        return sorted(pending, key=lambda r: (r.spec.submit_time_ms, r.sequence))

    def preempts(
        self, waiting: JobRecord, victim: JobRecord, now_ms: float = 0.0
    ) -> bool:
        return False


class ShortestRemainingWorkPolicy:
    """Shortest remaining work first.

    Remaining work is ``remaining iterations × mean measured iteration
    time`` (the spec's ``est_iteration_ms`` prior before any iteration has
    run), so a preempted job near completion jumps ahead of freshly
    submitted long jobs — the classic mean-queueing-delay win over FIFO.
    Ties fall back to FIFO order for determinism.
    """

    name = "srw"
    #: Constant-False :meth:`preempts`; see :class:`FifoPolicy`.
    never_preempts = True

    def order(self, pending: Sequence[JobRecord], now_ms: float) -> list[JobRecord]:
        return sorted(
            pending,
            key=lambda r: (r.remaining_work_ms(), r.spec.submit_time_ms, r.sequence),
        )

    def preempts(
        self, waiting: JobRecord, victim: JobRecord, now_ms: float = 0.0
    ) -> bool:
        return False


class PreemptivePriorityPolicy:
    """Strict priorities with graceful boundary preemption (time-slicing).

    Admission orders the queue by descending *effective* priority (FIFO
    within a level).  A queued job whose effective priority is *strictly*
    higher than a running one's static priority evicts it — but only at an
    iteration boundary, so the victim's in-flight iteration commits and its
    checkpoint advances before the gang is released; the victim re-enters
    the queue and resumes later from that boundary without spending retry
    budget.

    **Priority aging** (``aging_ms``): with the knob set, a queued job's
    effective priority grows by one level per ``aging_ms`` of waiting since
    it last entered the queue (``JobRecord.last_queued_ms``), so sustained
    high-priority load cannot starve background jobs forever — after
    ``aging_ms × Δpriority`` of waiting, a background job outranks (and may
    evict) a higher-static-priority gang.  Running jobs are compared by
    their static priority (they are not waiting).  Starvation is bounded
    without livelock: eviction happens only at iteration boundaries, so
    every eviction cycle commits at least one iteration of real progress.
    ``aging_ms=None`` (default) disables aging, reproducing the strict
    policy bit-for-bit.

    Args:
        aging_ms: Waiting time per effective-priority level, or ``None``.
    """

    name = "priority"
    never_preempts = False

    def __init__(self, aging_ms: float | None = None) -> None:
        if aging_ms is not None and aging_ms <= 0:
            raise ValueError(f"aging_ms must be > 0, got {aging_ms}")
        self.aging_ms = aging_ms

    def effective_priority(self, record: JobRecord, now_ms: float) -> float:
        """Static priority plus the aging credit of a *queued* record."""
        if self.aging_ms is None:
            return float(record.spec.priority)
        waited = max(0.0, now_ms - record.last_queued_ms)
        return record.spec.priority + waited / self.aging_ms

    def order(self, pending: Sequence[JobRecord], now_ms: float) -> list[JobRecord]:
        return sorted(
            pending,
            key=lambda r: (
                -self.effective_priority(r, now_ms),
                r.spec.submit_time_ms,
                r.sequence,
            ),
        )

    def preempts(
        self, waiting: JobRecord, victim: JobRecord, now_ms: float = 0.0
    ) -> bool:
        return self.effective_priority(waiting, now_ms) > victim.spec.priority


_POLICIES = {
    FifoPolicy.name: FifoPolicy,
    ShortestRemainingWorkPolicy.name: ShortestRemainingWorkPolicy,
    PreemptivePriorityPolicy.name: PreemptivePriorityPolicy,
}


def make_policy(policy: "str | SchedulingPolicy") -> SchedulingPolicy:
    """Resolve a policy name (``"fifo"``/``"srw"``/``"priority"``) or pass
    one through."""
    if isinstance(policy, str):
        try:
            return _POLICIES[policy]()
        except KeyError:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; choose from {sorted(_POLICIES)}"
            ) from None
    return policy
