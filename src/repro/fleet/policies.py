"""Admission-ordering and preemption policies of the fleet scheduler.

A policy decides two things:

* the **order** in which queued jobs are considered for admission
  (:meth:`SchedulingPolicy.order`) — placement itself is gang scheduling
  with backfilling (a job that does not fit right now is skipped, not a
  barrier), so any ordering keeps the cluster busy whenever some queued
  job fits;
* whether a queued job may **gracefully preempt** a running one
  (:meth:`SchedulingPolicy.preempts`) — the scheduler asks this at every
  running job's iteration boundary, and an eviction lets the in-flight
  iteration *complete* before the gang is released (unlike a device
  failure, which discards it; see :mod:`repro.fleet.scheduler` for the
  two preemption flavours).  FIFO and shortest-remaining-work never
  preempt; :class:`PreemptivePriorityPolicy` evicts strictly lower
  priorities.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.fleet.job import JobRecord


class SchedulingPolicy(Protocol):
    """Orders the admissible queue; first fit wins the next free gang."""

    name: str

    def order(self, pending: Sequence[JobRecord], now_ms: float) -> list[JobRecord]:
        """Return ``pending`` in admission-preference order."""
        ...  # pragma: no cover - protocol definition

    def preempts(self, waiting: JobRecord, victim: JobRecord) -> bool:
        """Whether queued ``waiting`` may evict running ``victim`` at an
        iteration boundary.  Policies without preemption return False.

        Optional for custom policies: the scheduler treats a policy
        without this method as never preempting (the pre-time-slicing
        protocol stays valid).
        """
        ...  # pragma: no cover - protocol definition


class FifoPolicy:
    """First-in-first-out: by submission time, then submission sequence."""

    name = "fifo"

    def order(self, pending: Sequence[JobRecord], now_ms: float) -> list[JobRecord]:
        return sorted(pending, key=lambda r: (r.spec.submit_time_ms, r.sequence))

    def preempts(self, waiting: JobRecord, victim: JobRecord) -> bool:
        return False


class ShortestRemainingWorkPolicy:
    """Shortest remaining work first.

    Remaining work is ``remaining iterations × mean measured iteration
    time`` (the spec's ``est_iteration_ms`` prior before any iteration has
    run), so a preempted job near completion jumps ahead of freshly
    submitted long jobs — the classic mean-queueing-delay win over FIFO.
    Ties fall back to FIFO order for determinism.
    """

    name = "srw"

    def order(self, pending: Sequence[JobRecord], now_ms: float) -> list[JobRecord]:
        return sorted(
            pending,
            key=lambda r: (r.remaining_work_ms(), r.spec.submit_time_ms, r.sequence),
        )

    def preempts(self, waiting: JobRecord, victim: JobRecord) -> bool:
        return False


class PreemptivePriorityPolicy:
    """Strict priorities with graceful boundary preemption (time-slicing).

    Admission orders the queue by descending ``JobSpec.priority`` (FIFO
    within a priority level).  A queued job with *strictly* higher priority
    than a running one evicts it — but only at an iteration boundary, so
    the victim's in-flight iteration commits and its checkpoint advances
    before the gang is released; the victim re-enters the queue and resumes
    later from that boundary without spending retry budget.  Equal
    priorities never preempt each other, which (with the scheduler's
    feasibility check) rules out eviction livelock: a job can only be
    displaced by strictly more important work.
    """

    name = "priority"

    def order(self, pending: Sequence[JobRecord], now_ms: float) -> list[JobRecord]:
        return sorted(
            pending,
            key=lambda r: (-r.spec.priority, r.spec.submit_time_ms, r.sequence),
        )

    def preempts(self, waiting: JobRecord, victim: JobRecord) -> bool:
        return waiting.spec.priority > victim.spec.priority


_POLICIES = {
    FifoPolicy.name: FifoPolicy,
    ShortestRemainingWorkPolicy.name: ShortestRemainingWorkPolicy,
    PreemptivePriorityPolicy.name: PreemptivePriorityPolicy,
}


def make_policy(policy: "str | SchedulingPolicy") -> SchedulingPolicy:
    """Resolve a policy name (``"fifo"``/``"srw"``/``"priority"``) or pass
    one through."""
    if isinstance(policy, str):
        try:
            return _POLICIES[policy]()
        except KeyError:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; choose from {sorted(_POLICIES)}"
            ) from None
    return policy
