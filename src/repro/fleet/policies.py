"""Admission-ordering policies of the fleet scheduler.

A policy only decides the *order* in which queued jobs are considered for
admission; placement itself is gang scheduling with backfilling (a job that
does not fit right now is skipped, not a barrier), so any policy keeps the
cluster busy whenever some queued job fits.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.fleet.job import JobRecord


class SchedulingPolicy(Protocol):
    """Orders the admissible queue; first fit wins the next free gang."""

    name: str

    def order(self, pending: Sequence[JobRecord], now_ms: float) -> list[JobRecord]:
        """Return ``pending`` in admission-preference order."""
        ...  # pragma: no cover - protocol definition


class FifoPolicy:
    """First-in-first-out: by submission time, then submission sequence."""

    name = "fifo"

    def order(self, pending: Sequence[JobRecord], now_ms: float) -> list[JobRecord]:
        return sorted(pending, key=lambda r: (r.spec.submit_time_ms, r.sequence))


class ShortestRemainingWorkPolicy:
    """Shortest remaining work first.

    Remaining work is ``remaining iterations × mean measured iteration
    time`` (the spec's ``est_iteration_ms`` prior before any iteration has
    run), so a preempted job near completion jumps ahead of freshly
    submitted long jobs — the classic mean-queueing-delay win over FIFO.
    Ties fall back to FIFO order for determinism.
    """

    name = "srw"

    def order(self, pending: Sequence[JobRecord], now_ms: float) -> list[JobRecord]:
        return sorted(
            pending,
            key=lambda r: (r.remaining_work_ms(), r.spec.submit_time_ms, r.sequence),
        )


_POLICIES = {
    FifoPolicy.name: FifoPolicy,
    ShortestRemainingWorkPolicy.name: ShortestRemainingWorkPolicy,
}


def make_policy(policy: "str | SchedulingPolicy") -> SchedulingPolicy:
    """Resolve a policy name (``"fifo"``/``"srw"``) or pass one through."""
    if isinstance(policy, str):
        try:
            return _POLICIES[policy]()
        except KeyError:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; choose from {sorted(_POLICIES)}"
            ) from None
    return policy
