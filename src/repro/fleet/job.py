"""Job model of the fleet scheduler.

A *job* is one multi-task training workload submitted to the shared
simulated cluster: a model (via its cost model), a dataset slice, a global
batch size, a requested 3D-parallel shape and a scheduling priority.  The
scheduler tracks each job's life cycle — queued, gang-scheduled onto
devices, preempted (by a device failure mid-iteration, or gracefully at an
iteration boundary by a higher-priority job), elastically re-planned on a
smaller gang after capacity loss, regrown toward the requested gang when
capacity returns, finished or failed after bounded retries — in a
:class:`JobRecord`, and persists iteration-boundary progress in a JSON-safe
:class:`JobCheckpoint` so every re-admission resumes exactly where the last
committed iteration left off.

Two preemption flavours share that checkpoint/resume machinery but differ
in what they keep: a **failure preemption** (device death) discards the
in-flight iteration and counts against the job's bounded retry budget; a
**graceful preemption** (priority eviction or elastic regrowth) happens
only *at* an iteration boundary — the in-flight iteration commits first —
and consumes no retry budget.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Sequence

from repro.core.planner import DynaPipePlanner, PlannerConfig
from repro.costmodel.cost_model import CostModel
from repro.data.tasks import Sample
from repro.parallel.config import ParallelConfig
from repro.training.throughput import IterationRecord, TrainingReport
from repro.training.trainer import IterationPlanner, TrainerConfig
from repro.utils.rng import SeedLike


class JobState:
    """Life-cycle states of a fleet job (plain strings for JSON-friendliness)."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class JobSpec:
    """Immutable description of one training job submitted to the fleet.

    Attributes:
        name: Unique job name within the fleet.
        cost_model: Cost model of one replica's pipeline (defines pipeline
            stages and tensor parallelism; shared across attempts, so the
            profile is built once per job no matter how often it retries).
        samples: Dataset samples of the job's epoch, already truncated to
            the job's maximum sequence length (as the benchmarks do).
        global_batch_tokens: Global batch size in tokens per iteration.
        parallel: Requested 3D-parallel shape.  ``pipeline_parallel`` and
            ``tensor_parallel`` must match the cost model; ``data_parallel``
            is the *requested* replica count — the elastic path may admit
            the job with fewer replicas after permanent capacity loss.
        num_iterations: Iterations to train (bounded by the epoch length).
        planner_config: Planner knobs used for every attempt.
        noise_std / seed / execute_plans / stages_same_node: Per-job trainer
            settings (see :class:`~repro.training.trainer.TrainerConfig`).
        max_retries: Attempts beyond the first before the job is marked
            failed (device failures and planning failures both count;
            graceful preemptions — priority evictions and elastic regrowth
            — do not).
        elastic: Whether the job may shrink its data-parallel degree when
            the *alive* cluster can no longer host the requested gang (and
            symmetrically regrow toward the request when capacity returns).
        priority: Scheduling priority (higher runs first).  Under the
            preemptive-priority policy a queued job with strictly higher
            priority evicts running lower-priority gangs at their iteration
            boundaries; FIFO and SRW ignore it.
        submit_time_ms: Fleet-clock time at which the job arrives.
        est_iteration_ms: Prior estimate of one iteration's execution time,
            used by shortest-remaining-work ordering before any iteration of
            the job has run.
        planning_deadline_ms: Budget of fleet-clock time the job may spend
            in a *planning-failure streak* (first failure of the streak to
            the current retry) before it is marked failed.  With a deadline
            set, planning failures do **not** burn ``max_retries`` — the
            job retries under the scheduler's exponential backoff
            (``FleetConfig.planning_backoff_base_ms``, required > 0) until
            planning succeeds or the deadline passes.  ``None`` (default)
            keeps the legacy rule: every planning failure counts against
            the retry budget.  A committed iteration resets the streak.
        planner_factory: Optional override building the per-attempt planner
            from ``(spec, data_parallel)`` — for baselines or test doubles;
            defaults to a :class:`~repro.core.planner.DynaPipePlanner`.
    """

    name: str
    cost_model: CostModel
    samples: Sequence[Sample]
    global_batch_tokens: int
    parallel: ParallelConfig
    num_iterations: int = 4
    planner_config: PlannerConfig | None = None
    noise_std: float = 0.05
    seed: SeedLike = 0
    execute_plans: bool = True
    stages_same_node: bool = True
    max_retries: int = 2
    elastic: bool = True
    priority: int = 0
    submit_time_ms: float = 0.0
    est_iteration_ms: float = 1000.0
    planning_deadline_ms: float | None = None
    planner_factory: Callable[["JobSpec", int], IterationPlanner] | None = None

    def __post_init__(self) -> None:
        if self.num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1, got {self.num_iterations}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.submit_time_ms < 0:
            raise ValueError(f"submit_time_ms must be >= 0, got {self.submit_time_ms}")
        if self.planning_deadline_ms is not None and self.planning_deadline_ms <= 0:
            raise ValueError(
                f"planning_deadline_ms must be > 0, got {self.planning_deadline_ms}"
            )

    @property
    def min_gang_size(self) -> int:
        """Devices one replica needs — the floor of elastic shrinking."""
        return self.parallel.pipeline_parallel * self.parallel.tensor_parallel

    def gang_size(self, data_parallel: int) -> int:
        """Devices a gang with ``data_parallel`` replicas occupies."""
        return data_parallel * self.min_gang_size

    def build_planner(self, data_parallel: int) -> IterationPlanner:
        """Planner for one attempt with ``data_parallel`` replicas."""
        if self.planner_factory is not None:
            return self.planner_factory(self, data_parallel)
        return DynaPipePlanner(
            self.cost_model,
            data_parallel_size=data_parallel,
            config=self.planner_config,
        )

    def trainer_config(self, start_iteration: int = 0) -> TrainerConfig:
        """Trainer configuration of an attempt resuming at ``start_iteration``.

        Standalone equivalence hinges on this being the *only* place the
        fleet derives trainer settings: running
        ``TrainingSession(spec.build_planner(dp), spec.samples, ...,
        spec.trainer_config())`` outside the fleet reproduces an
        uninterrupted fleet job's records bit-identically.
        """
        return TrainerConfig(
            max_iterations=self.num_iterations,
            noise_std=self.noise_std,
            seed=self.seed,
            max_seq_len=None,  # samples arrive pre-truncated
            stages_same_node=self.stages_same_node,
            execute_plans=self.execute_plans,
            start_iteration=start_iteration,
        )


@dataclass
class JobCheckpoint:
    """Iteration-boundary progress of a job, JSON round-trippable.

    The fleet commits one entry per *completed* iteration; an iteration in
    flight when a device fails is discarded and re-run by the next attempt,
    which resumes at ``completed_iterations``.

    Attributes:
        completed_iterations: Iterations whose records are committed.
        records: Per-iteration training records, in iteration order.
        encoder_efficiencies: Per-iteration encoder padding efficiencies.
        decoder_efficiencies: Per-iteration decoder padding efficiencies
            (absent for decoder-only models).
    """

    completed_iterations: int = 0
    records: list[IterationRecord] = field(default_factory=list)
    encoder_efficiencies: list[float] = field(default_factory=list)
    decoder_efficiencies: list[float] = field(default_factory=list)

    def commit(self, record: IterationRecord, encoder_eff: float, decoder_eff: float | None) -> None:
        """Commit one completed iteration."""
        self.records.append(record)
        self.completed_iterations += 1
        self.encoder_efficiencies.append(encoder_eff)
        if decoder_eff is not None:
            self.decoder_efficiencies.append(decoder_eff)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the checkpoint (e.g. for an external job store)."""
        return {
            "completed_iterations": self.completed_iterations,
            "records": [asdict(record) for record in self.records],
            "encoder_efficiencies": list(self.encoder_efficiencies),
            "decoder_efficiencies": list(self.decoder_efficiencies),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobCheckpoint":
        """Rebuild a checkpoint from :meth:`to_dict` output."""
        return cls(
            completed_iterations=int(payload["completed_iterations"]),
            records=[IterationRecord(**record) for record in payload["records"]],
            encoder_efficiencies=[float(v) for v in payload["encoder_efficiencies"]],
            decoder_efficiencies=[float(v) for v in payload["decoder_efficiencies"]],
        )


@dataclass
class JobAttempt:
    """One placement of a job on a device gang.

    Attributes:
        index: Attempt number (0 = first admission).
        data_parallel: Replica count of this attempt's gang.
        devices: Global device indices of the gang.
        admitted_ms: Fleet-clock admission time.
        start_iteration: First iteration this attempt was to execute.
        ended_ms: Fleet-clock time the attempt ended (``None`` while running).
        iterations_completed: Iterations this attempt committed.
        outcome: ``"running"``, ``"finished"``, ``"device_failure"``,
            ``"plan_failure"``, ``"evicted"`` (graceful priority preemption
            at an iteration boundary) or ``"regrown"`` (the attempt ended
            at a boundary so the job could re-expand onto a larger gang).
    """

    index: int
    data_parallel: int
    devices: tuple[int, ...]
    admitted_ms: float
    start_iteration: int
    ended_ms: float | None = None
    iterations_completed: int = 0
    outcome: str = "running"


@dataclass
class JobRecord:
    """Mutable scheduler-side state of one submitted job.

    Beyond the life-cycle counters, the record carries the scheduler's
    planning-failure bookkeeping: ``not_before_ms`` gates re-admission after
    an exponential-backoff delay, ``planning_failure_streak`` /
    ``planning_failed_since_ms`` track the current run of consecutive
    planning failures (reset when an iteration commits) against the spec's
    ``planning_deadline_ms``, ``planning_retries`` counts backoff-delayed
    re-admissions that did *not* burn retry budget, and
    ``degraded_iterations`` counts iterations that fell back to inline
    planning because every pool worker was dead.  ``last_queued_ms`` is the
    fleet-clock time the job last (re-)entered the queue — the waiting-time
    anchor of priority aging.
    """

    spec: JobSpec
    sequence: int = 0
    state: str = JobState.PENDING
    checkpoint: JobCheckpoint = field(default_factory=JobCheckpoint)
    attempts: list[JobAttempt] = field(default_factory=list)
    retries: int = 0
    preemptions: int = 0
    evictions: int = 0
    regrows: int = 0
    first_admitted_ms: float | None = None
    finished_ms: float | None = None
    failure_reason: str | None = None
    not_before_ms: float = 0.0
    planning_retries: int = 0
    planning_failure_streak: int = 0
    planning_failed_since_ms: float | None = None
    last_queued_ms: float = 0.0
    degraded_iterations: int = 0

    @property
    def queueing_delay_ms(self) -> float | None:
        """Time from submission to first admission (``None`` if never admitted)."""
        if self.first_admitted_ms is None:
            return None
        return self.first_admitted_ms - self.spec.submit_time_ms

    @property
    def remaining_iterations(self) -> int:
        """Iterations still to run (by the spec's target)."""
        return max(0, self.spec.num_iterations - self.checkpoint.completed_iterations)

    def mean_iteration_ms(self) -> float:
        """Mean measured iteration time so far, or the spec's prior."""
        records = self.checkpoint.records
        if not records:
            return self.spec.est_iteration_ms
        return sum(record.measured_ms for record in records) / len(records)

    def remaining_work_ms(self) -> float:
        """Estimated execution time still owed to the job (SRW ordering key)."""
        return self.remaining_iterations * self.mean_iteration_ms()

    def training_report(self) -> TrainingReport:
        """The job's committed progress as a standard training report.

        For a job that ran uninterrupted on its requested gang this is
        identical (modulo wall-clock planning times) to the report of a
        standalone :class:`~repro.training.trainer.TrainingSession` run.
        """
        report = TrainingReport(system=self.spec.name, records=list(self.checkpoint.records))
        enc = self.checkpoint.encoder_efficiencies
        dec = self.checkpoint.decoder_efficiencies
        if enc:
            report.encoder_padding_efficiency = sum(enc) / len(enc)
        if dec:
            report.decoder_padding_efficiency = sum(dec) / len(dec)
        return report
