"""Gang scheduling of pipeline-parallel device groups on a shared cluster.

A job's replicas must start together on ``dp × pp × tp`` devices (pipeline
stages deadlock if only part of the group is placed), so allocation is
all-or-nothing.  The :class:`GangAllocator` partitions the cluster's devices
into four disjoint sets:

* **free** — alive and idle, available for allocation;
* **allocated** — alive and owned by exactly one :class:`DeviceGang`;
* **failed** — dead; a failed device leaves its gang immediately and stays
  out of the pool until (and unless) :meth:`GangAllocator.repair_device`
  returns it;
* **absent** — not yet part of the cluster: a device with a scheduled late
  arrival starts here and joins the free pool through
  :meth:`GangAllocator.arrive_device`.

**Partition invariant**: ``free ∪ allocated ∪ failed ∪ absent`` equals the
cluster's device set and the four sets are pairwise disjoint — checked by
:meth:`GangAllocator.check_consistent`, which is what the fleet tests lean
on to prove that preemption, repair, elastic shrinking and regrowth never
leak or double-own a device.  Release-and-regrow bookkeeping rests on the
same invariant: releasing a gang returns only its still-alive devices, a
repair resurrects a device *only* through the explicit failed → free
transition, and an absent device can neither fail nor be allocated before
it arrives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology


@dataclass(frozen=True)
class DeviceGang:
    """A set of devices running one job's pipeline-parallel replica group.

    Attributes:
        job: Name of the owning job.
        devices: Global device indices of the gang, ascending.
        data_parallel: Replica count placed on the gang (the *admitted*
            degree, which elastic jobs may have shrunk below the request).
        pipeline_parallel: Pipeline stages per replica.
        tensor_parallel: Tensor-parallel degree per stage.
    """

    job: str
    devices: tuple[int, ...]
    data_parallel: int
    pipeline_parallel: int
    tensor_parallel: int

    @property
    def size(self) -> int:
        """Number of devices in the gang."""
        return len(self.devices)


class GangAllocator:
    """Tracks device ownership on the shared cluster.

    Args:
        topology: The cluster whose devices are managed.
    """

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self._free: set[int] = set(range(topology.num_gpus))
        self._allocated: dict[int, DeviceGang] = {}
        self._failed: set[int] = set()
        self._absent: set[int] = set()

    # ------------------------------------------------------------------ queries

    @property
    def num_devices(self) -> int:
        """Total devices in the cluster (alive, failed or absent)."""
        return self.topology.num_gpus

    @property
    def alive_count(self) -> int:
        """Devices currently part of the cluster and not failed."""
        return self.num_devices - len(self._failed) - len(self._absent)

    @property
    def free_count(self) -> int:
        """Devices currently idle and alive."""
        return len(self._free)

    @property
    def busy_count(self) -> int:
        """Devices currently allocated to gangs."""
        return len(self._allocated)

    @property
    def failed_devices(self) -> frozenset[int]:
        """Devices that failed and have not (yet) been repaired."""
        return frozenset(self._failed)

    @property
    def absent_devices(self) -> frozenset[int]:
        """Devices that have not (yet) arrived in the cluster."""
        return frozenset(self._absent)

    def owner_of(self, device: int) -> DeviceGang | None:
        """The gang holding ``device``, if any."""
        return self._allocated.get(device)

    # ------------------------------------------------------------------ allocation

    def allocate(
        self, job: str, data_parallel: int, pipeline_parallel: int, tensor_parallel: int
    ) -> DeviceGang | None:
        """Allocate a gang for ``job``, or return ``None`` if it cannot fit.

        All-or-nothing (gang scheduling): either every device of the
        ``dp × pp × tp`` group is claimed or none is.  A contiguous run of
        free device indices is preferred — with the Megatron-style packing
        of :class:`~repro.cluster.topology.ClusterTopology` that keeps
        tensor groups intra-node — and among contiguous runs one that does
        not straddle a node boundary wins (a gang that fits in one node
        should use one node's fast links).  When fragmentation (from
        released and failed gangs) leaves no contiguous window at all, the
        lowest free indices are taken.
        """
        size = data_parallel * pipeline_parallel * tensor_parallel
        if size < 1:
            raise ValueError(f"gang size must be >= 1, got {size}")
        free = sorted(self._free)
        if len(free) < size:
            return None
        devices: tuple[int, ...] | None = None
        contiguous: tuple[int, ...] | None = None
        for start in range(len(free) - size + 1):
            if free[start + size - 1] - free[start] != size - 1:
                continue
            window = tuple(free[start : start + size])
            if contiguous is None:
                contiguous = window
            if self.topology.node_of(window[0]) == self.topology.node_of(window[-1]):
                devices = window
                break
        if devices is None:
            devices = contiguous
        if devices is None:
            devices = tuple(free[:size])
        gang = DeviceGang(
            job=job,
            devices=devices,
            data_parallel=data_parallel,
            pipeline_parallel=pipeline_parallel,
            tensor_parallel=tensor_parallel,
        )
        for device in devices:
            self._free.remove(device)
            self._allocated[device] = gang
        return gang

    def release(self, gang: DeviceGang) -> list[int]:
        """Return a gang's devices to the free pool; returns those released.

        Devices of the gang that failed while allocated were already moved
        to the failed set by :meth:`fail_device` and stay there — they are
        *not* resurrected (only :meth:`repair_device` can do that), which is
        exactly the accounting the no-device-leaked tests pin down.
        """
        released: list[int] = []
        for device in gang.devices:
            current = self._allocated.get(device)
            if current is not gang:
                continue  # failed mid-run (already removed) — stays failed
            del self._allocated[device]
            self._free.add(device)
            released.append(device)
        return released

    def fail_device(self, device: int) -> DeviceGang | None:
        """Mark ``device`` failed; returns the gang it interrupts, if any.

        A free device simply leaves the pool (capacity shrinks).  An
        allocated device is pulled out of its gang and the gang is returned
        so the scheduler can preempt the owning job; the gang's surviving
        devices stay allocated until the scheduler releases them.  Failing
        an already-failed or absent device is a no-op — a device that has
        not arrived cannot die.
        """
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range [0, {self.num_devices})")
        if device in self._failed or device in self._absent:
            return None
        gang = self._allocated.pop(device, None)
        self._free.discard(device)
        self._failed.add(device)
        return gang

    # ------------------------------------------------------------------ repair / arrival

    def repair_device(self, device: int) -> bool:
        """Return a failed device to the free pool.

        Returns:
            True if the device was failed and is now free; False if the
            device was not failed (a stale repair event is a no-op — the
            scheduler may schedule repairs for devices that never die, or
            repair a device twice).
        """
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range [0, {self.num_devices})")
        if device not in self._failed:
            return False
        self._failed.remove(device)
        self._free.add(device)
        return True

    def mark_absent(self, device: int) -> None:
        """Move a free device out of the cluster (pre-run setup only).

        The scheduler calls this at the start of a run for every device
        with a scheduled late arrival; an allocated or failed device cannot
        be marked absent.
        """
        if device not in self._free:
            raise ValueError(
                f"device {device} is not free; only idle devices can start absent"
            )
        self._free.remove(device)
        self._absent.add(device)

    def arrive_device(self, device: int) -> None:
        """An absent device joins the cluster: absent → free."""
        if device not in self._absent:
            raise ValueError(f"device {device} is not absent; cannot arrive")
        self._absent.remove(device)
        self._free.add(device)

    # ------------------------------------------------------------------ snapshot / restore

    def snapshot_state(self) -> dict[str, list[int]]:
        """JSON-safe snapshot of the free/failed/absent sets.

        Allocated devices are *not* listed here: ownership is restored from
        the running jobs' gangs (see :meth:`restore_state`), which keeps a
        single source of truth for who holds what.
        """
        return {
            "free": sorted(self._free),
            "failed": sorted(self._failed),
            "absent": sorted(self._absent),
        }

    def restore_state(
        self,
        free: "list[int] | set[int]",
        failed: "list[int] | set[int]",
        absent: "list[int] | set[int]",
        allocated: "list[tuple[DeviceGang, list[int]]]" = (),
    ) -> None:
        """Overwrite the partition from a snapshot (scheduler restore path).

        ``allocated`` maps each live gang to the devices it *currently*
        owns — which may be fewer than ``gang.devices`` when a member
        failed mid-run (the failed device moved to the failed set and must
        not be resurrected by restore).  The 4-way partition invariant is
        asserted before the state is accepted.
        """
        self._free = set(free)
        self._failed = set(failed)
        self._absent = set(absent)
        self._allocated = {
            device: gang for gang, owned in allocated for device in owned
        }
        self.check_consistent()

    # ------------------------------------------------------------------ invariants

    def check_consistent(self) -> None:
        """Assert free/allocated/failed/absent partition the cluster.

        Raises:
            AssertionError: If a device is leaked or double-owned.
        """
        free, allocated = self._free, set(self._allocated)
        failed, absent = self._failed, self._absent
        sets = {"free": free, "allocated": allocated, "failed": failed, "absent": absent}
        names = sorted(sets)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                overlap = sets[a] & sets[b]
                assert not overlap, f"devices both {a} and {b}: {overlap}"
        union = free | allocated | failed | absent
        expected = set(range(self.num_devices))
        assert union == expected, f"device leak: missing {expected - union}, extra {union - expected}"
