"""Gang scheduling of pipeline-parallel device groups on a shared cluster.

A job's replicas must start together on ``dp × pp × tp`` devices (pipeline
stages deadlock if only part of the group is placed), so allocation is
all-or-nothing.  The :class:`GangAllocator` partitions the cluster's devices
into *free*, *allocated* and *failed* sets — the partition is an invariant
(:meth:`GangAllocator.check_consistent`), which is what the fleet tests
lean on to prove that preemption and elastic re-planning never leak a
device.  Failed devices stay failed: the simulated cluster models permanent
capacity loss, so elastic jobs shrink rather than wait for repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology


@dataclass(frozen=True)
class DeviceGang:
    """A set of devices running one job's pipeline-parallel replica group.

    Attributes:
        job: Name of the owning job.
        devices: Global device indices of the gang, ascending.
        data_parallel: Replica count placed on the gang (the *admitted*
            degree, which elastic jobs may have shrunk below the request).
        pipeline_parallel: Pipeline stages per replica.
        tensor_parallel: Tensor-parallel degree per stage.
    """

    job: str
    devices: tuple[int, ...]
    data_parallel: int
    pipeline_parallel: int
    tensor_parallel: int

    @property
    def size(self) -> int:
        """Number of devices in the gang."""
        return len(self.devices)


class GangAllocator:
    """Tracks device ownership on the shared cluster.

    Args:
        topology: The cluster whose devices are managed.
    """

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self._free: set[int] = set(range(topology.num_gpus))
        self._allocated: dict[int, DeviceGang] = {}
        self._failed: set[int] = set()

    # ------------------------------------------------------------------ queries

    @property
    def num_devices(self) -> int:
        """Total devices in the cluster (alive or failed)."""
        return self.topology.num_gpus

    @property
    def alive_count(self) -> int:
        """Devices that have not failed."""
        return self.num_devices - len(self._failed)

    @property
    def free_count(self) -> int:
        """Devices currently idle and alive."""
        return len(self._free)

    @property
    def busy_count(self) -> int:
        """Devices currently allocated to gangs."""
        return len(self._allocated)

    @property
    def failed_devices(self) -> frozenset[int]:
        """Devices that failed (permanently, in this model)."""
        return frozenset(self._failed)

    def owner_of(self, device: int) -> DeviceGang | None:
        """The gang holding ``device``, if any."""
        return self._allocated.get(device)

    # ------------------------------------------------------------------ allocation

    def allocate(
        self, job: str, data_parallel: int, pipeline_parallel: int, tensor_parallel: int
    ) -> DeviceGang | None:
        """Allocate a gang for ``job``, or return ``None`` if it cannot fit.

        All-or-nothing (gang scheduling): either every device of the
        ``dp × pp × tp`` group is claimed or none is.  A contiguous run of
        free device indices is preferred — with the Megatron-style packing
        of :class:`~repro.cluster.topology.ClusterTopology` that keeps
        tensor groups intra-node — and among contiguous runs one that does
        not straddle a node boundary wins (a gang that fits in one node
        should use one node's fast links).  When fragmentation (from
        released and failed gangs) leaves no contiguous window at all, the
        lowest free indices are taken.
        """
        size = data_parallel * pipeline_parallel * tensor_parallel
        if size < 1:
            raise ValueError(f"gang size must be >= 1, got {size}")
        free = sorted(self._free)
        if len(free) < size:
            return None
        devices: tuple[int, ...] | None = None
        contiguous: tuple[int, ...] | None = None
        for start in range(len(free) - size + 1):
            if free[start + size - 1] - free[start] != size - 1:
                continue
            window = tuple(free[start : start + size])
            if contiguous is None:
                contiguous = window
            if self.topology.node_of(window[0]) == self.topology.node_of(window[-1]):
                devices = window
                break
        if devices is None:
            devices = contiguous
        if devices is None:
            devices = tuple(free[:size])
        gang = DeviceGang(
            job=job,
            devices=devices,
            data_parallel=data_parallel,
            pipeline_parallel=pipeline_parallel,
            tensor_parallel=tensor_parallel,
        )
        for device in devices:
            self._free.remove(device)
            self._allocated[device] = gang
        return gang

    def release(self, gang: DeviceGang) -> list[int]:
        """Return a gang's devices to the free pool; returns those released.

        Devices of the gang that failed while allocated were already moved
        to the failed set by :meth:`fail_device` and stay there — they are
        *not* resurrected, which is exactly the accounting the
        no-device-leaked test pins down.
        """
        released: list[int] = []
        for device in gang.devices:
            current = self._allocated.get(device)
            if current is not gang:
                continue  # failed mid-run (already removed) — stays failed
            del self._allocated[device]
            self._free.add(device)
            released.append(device)
        return released

    def fail_device(self, device: int) -> DeviceGang | None:
        """Mark ``device`` failed; returns the gang it interrupts, if any.

        A free device simply leaves the pool (capacity shrinks).  An
        allocated device is pulled out of its gang and the gang is returned
        so the scheduler can preempt the owning job; the gang's surviving
        devices stay allocated until the scheduler releases them.
        """
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range [0, {self.num_devices})")
        if device in self._failed:
            return None
        gang = self._allocated.pop(device, None)
        self._free.discard(device)
        self._failed.add(device)
        return gang

    # ------------------------------------------------------------------ invariants

    def check_consistent(self) -> None:
        """Assert the free/allocated/failed sets partition the cluster.

        Raises:
            AssertionError: If a device is leaked or double-owned.
        """
        free, allocated, failed = self._free, set(self._allocated), self._failed
        assert not free & allocated, f"devices both free and allocated: {free & allocated}"
        assert not free & failed, f"devices both free and failed: {free & failed}"
        assert not allocated & failed, f"devices both allocated and failed: {allocated & failed}"
        union = free | allocated | failed
        expected = set(range(self.num_devices))
        assert union == expected, f"device leak: missing {expected - union}, extra {union - expected}"
