"""Gang scheduling of pipeline-parallel device groups on a shared cluster.

A job's replicas must start together on ``dp × pp × tp`` devices (pipeline
stages deadlock if only part of the group is placed), so allocation is
all-or-nothing.  The :class:`GangAllocator` partitions the cluster's devices
into four disjoint sets:

* **free** — alive and idle, available for allocation;
* **allocated** — alive and owned by exactly one :class:`DeviceGang`;
* **failed** — dead; a failed device leaves its gang immediately and stays
  out of the pool until (and unless) :meth:`GangAllocator.repair_device`
  returns it;
* **absent** — not yet part of the cluster: a device with a scheduled late
  arrival starts here and joins the free pool through
  :meth:`GangAllocator.arrive_device`.

**Partition invariant**: ``free ∪ allocated ∪ failed ∪ absent`` equals the
cluster's device set and the four sets are pairwise disjoint — checked by
:meth:`GangAllocator.check_consistent`, which is what the fleet tests lean
on to prove that preemption, repair, elastic shrinking and regrowth never
leak or double-own a device.  Release-and-regrow bookkeeping rests on the
same invariant: releasing a gang returns only its still-alive devices, a
repair resurrects a device *only* through the explicit failed → free
transition, and an absent device can neither fail nor be allocated before
it arrives.

**Two cores.**  :class:`GangAllocator` keeps the partition in Python sets
and a per-device dict — simple, obviously correct, and O(devices) per
placement.  :class:`BitmapGangAllocator` keeps the same partition as numpy
bool masks with an O(1) device→gang owner index and a vectorized
contiguous-window placement search; it is the default core at scale.
Both expose the identical API, placement preference, snapshot format and
error messages, so the object allocator doubles as a bit-identity oracle
(select it with ``REPRO_FLEET_CORE=object``; see :func:`make_allocator`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import ClusterTopology


@dataclass(frozen=True)
class DeviceGang:
    """A set of devices running one job's pipeline-parallel replica group.

    Attributes:
        job: Name of the owning job.
        devices: Global device indices of the gang, ascending.
        data_parallel: Replica count placed on the gang (the *admitted*
            degree, which elastic jobs may have shrunk below the request).
        pipeline_parallel: Pipeline stages per replica.
        tensor_parallel: Tensor-parallel degree per stage.
    """

    job: str
    devices: tuple[int, ...]
    data_parallel: int
    pipeline_parallel: int
    tensor_parallel: int

    @property
    def size(self) -> int:
        """Number of devices in the gang."""
        return len(self.devices)


class GangAllocator:
    """Tracks device ownership on the shared cluster.

    Args:
        topology: The cluster whose devices are managed.
    """

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self._free: set[int] = set(range(topology.num_gpus))
        self._allocated: dict[int, DeviceGang] = {}
        self._failed: set[int] = set()
        self._absent: set[int] = set()

    # ------------------------------------------------------------------ queries

    @property
    def num_devices(self) -> int:
        """Total devices in the cluster (alive, failed or absent)."""
        return self.topology.num_gpus

    @property
    def alive_count(self) -> int:
        """Devices currently part of the cluster and not failed."""
        return self.num_devices - len(self._failed) - len(self._absent)

    @property
    def free_count(self) -> int:
        """Devices currently idle and alive."""
        return len(self._free)

    @property
    def busy_count(self) -> int:
        """Devices currently allocated to gangs."""
        return len(self._allocated)

    @property
    def failed_devices(self) -> frozenset[int]:
        """Devices that failed and have not (yet) been repaired."""
        return frozenset(self._failed)

    @property
    def absent_devices(self) -> frozenset[int]:
        """Devices that have not (yet) arrived in the cluster."""
        return frozenset(self._absent)

    def owner_of(self, device: int) -> DeviceGang | None:
        """The gang holding ``device``, if any."""
        return self._allocated.get(device)

    def is_failed(self, device: int) -> bool:
        """Whether ``device`` is currently failed (O(1))."""
        return device in self._failed

    def is_absent(self, device: int) -> bool:
        """Whether ``device`` has not (yet) arrived in the cluster (O(1))."""
        return device in self._absent

    # ------------------------------------------------------------------ allocation

    def allocate(
        self, job: str, data_parallel: int, pipeline_parallel: int, tensor_parallel: int
    ) -> DeviceGang | None:
        """Allocate a gang for ``job``, or return ``None`` if it cannot fit.

        All-or-nothing (gang scheduling): either every device of the
        ``dp × pp × tp`` group is claimed or none is.  A contiguous run of
        free device indices is preferred — with the Megatron-style packing
        of :class:`~repro.cluster.topology.ClusterTopology` that keeps
        tensor groups intra-node — and among contiguous runs one that does
        not straddle a node boundary wins (a gang that fits in one node
        should use one node's fast links).  When fragmentation (from
        released and failed gangs) leaves no contiguous window at all, the
        lowest free indices are taken.
        """
        size = data_parallel * pipeline_parallel * tensor_parallel
        if size < 1:
            raise ValueError(f"gang size must be >= 1, got {size}")
        if len(self._free) < size:
            return None
        free = sorted(self._free)
        devices: tuple[int, ...] | None = None
        contiguous: tuple[int, ...] | None = None
        for start in range(len(free) - size + 1):
            if free[start + size - 1] - free[start] != size - 1:
                continue
            window = tuple(free[start : start + size])
            if contiguous is None:
                contiguous = window
            if self.topology.node_of(window[0]) == self.topology.node_of(window[-1]):
                devices = window
                break
        if devices is None:
            devices = contiguous
        if devices is None:
            devices = tuple(free[:size])
        gang = DeviceGang(
            job=job,
            devices=devices,
            data_parallel=data_parallel,
            pipeline_parallel=pipeline_parallel,
            tensor_parallel=tensor_parallel,
        )
        for device in devices:
            self._free.remove(device)
            self._allocated[device] = gang
        return gang

    def release(self, gang: DeviceGang) -> list[int]:
        """Return a gang's devices to the free pool; returns those released.

        Devices of the gang that failed while allocated were already moved
        to the failed set by :meth:`fail_device` and stay there — they are
        *not* resurrected (only :meth:`repair_device` can do that), which is
        exactly the accounting the no-device-leaked tests pin down.
        """
        released: list[int] = []
        for device in gang.devices:
            current = self._allocated.get(device)
            if current is not gang:
                continue  # failed mid-run (already removed) — stays failed
            del self._allocated[device]
            self._free.add(device)
            released.append(device)
        return released

    def fail_device(self, device: int) -> DeviceGang | None:
        """Mark ``device`` failed; returns the gang it interrupts, if any.

        A free device simply leaves the pool (capacity shrinks).  An
        allocated device is pulled out of its gang and the gang is returned
        so the scheduler can preempt the owning job; the gang's surviving
        devices stay allocated until the scheduler releases them.  Failing
        an already-failed or absent device is a no-op — a device that has
        not arrived cannot die.
        """
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range [0, {self.num_devices})")
        if device in self._failed or device in self._absent:
            return None
        gang = self._allocated.pop(device, None)
        self._free.discard(device)
        self._failed.add(device)
        return gang

    # ------------------------------------------------------------------ repair / arrival

    def repair_device(self, device: int) -> bool:
        """Return a failed device to the free pool.

        Returns:
            True if the device was failed and is now free; False if the
            device was not failed (a stale repair event is a no-op — the
            scheduler may schedule repairs for devices that never die, or
            repair a device twice).
        """
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range [0, {self.num_devices})")
        if device not in self._failed:
            return False
        self._failed.remove(device)
        self._free.add(device)
        return True

    def mark_absent(self, device: int) -> None:
        """Move a free device out of the cluster (pre-run setup only).

        The scheduler calls this at the start of a run for every device
        with a scheduled late arrival; an allocated or failed device cannot
        be marked absent.
        """
        if device not in self._free:
            raise ValueError(
                f"device {device} is not free; only idle devices can start absent"
            )
        self._free.remove(device)
        self._absent.add(device)

    def arrive_device(self, device: int) -> None:
        """An absent device joins the cluster: absent → free."""
        if device not in self._absent:
            raise ValueError(f"device {device} is not absent; cannot arrive")
        self._absent.remove(device)
        self._free.add(device)

    # ------------------------------------------------------------------ snapshot / restore

    def snapshot_state(self) -> dict[str, list[int]]:
        """JSON-safe snapshot of the free/failed/absent sets.

        Allocated devices are *not* listed here: ownership is restored from
        the running jobs' gangs (see :meth:`restore_state`), which keeps a
        single source of truth for who holds what.
        """
        return {
            "free": sorted(self._free),
            "failed": sorted(self._failed),
            "absent": sorted(self._absent),
        }

    def restore_state(
        self,
        free: "list[int] | set[int]",
        failed: "list[int] | set[int]",
        absent: "list[int] | set[int]",
        allocated: "list[tuple[DeviceGang, list[int]]]" = (),
    ) -> None:
        """Overwrite the partition from a snapshot (scheduler restore path).

        ``allocated`` maps each live gang to the devices it *currently*
        owns — which may be fewer than ``gang.devices`` when a member
        failed mid-run (the failed device moved to the failed set and must
        not be resurrected by restore).  The 4-way partition invariant is
        asserted before the state is accepted.
        """
        self._free = set(free)
        self._failed = set(failed)
        self._absent = set(absent)
        self._allocated = {
            device: gang for gang, owned in allocated for device in owned
        }
        self.check_consistent()

    # ------------------------------------------------------------------ invariants

    def check_consistent(self) -> None:
        """Assert free/allocated/failed/absent partition the cluster.

        Raises:
            AssertionError: If a device is leaked or double-owned.
        """
        free, allocated = self._free, set(self._allocated)
        failed, absent = self._failed, self._absent
        sets = {"free": free, "allocated": allocated, "failed": failed, "absent": absent}
        names = sorted(sets)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                overlap = sets[a] & sets[b]
                assert not overlap, f"devices both {a} and {b}: {overlap}"
        union = free | allocated | failed | absent
        expected = set(range(self.num_devices))
        assert union == expected, f"device leak: missing {expected - union}, extra {union - expected}"


class BitmapGangAllocator:
    """Data-oriented gang allocator: device bitmaps + O(1) owner index.

    Drop-in replacement for :class:`GangAllocator` holding the 4-way
    partition as numpy bool masks (``free``/``failed``/``absent``; a device
    is *allocated* iff its slot in the owner index is set) and searching
    placements vectorized over the sorted free indices instead of scanning
    windows in Python.  Placement preference, tie-breaks, snapshot format
    and every error message are identical to the object allocator — the
    fleet equivalence suite pins the two cores against each other.

    Gang ownership uses integer *slots*: ``_owner[device]`` is the slot of
    the owning gang (-1 when unowned) and ``_gangs[slot]`` holds the gang
    object, so :meth:`owner_of` is a single array load + dict get.  A slot
    is retired when its last device leaves the gang (release or failure);
    the slot table keeps a strong reference to the gang while any device
    points at it, so ``id()`` reuse can never alias two live gangs.
    """

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        count = topology.num_gpus
        self._count = count
        self._free_mask = np.ones(count, dtype=bool)
        self._failed_mask = np.zeros(count, dtype=bool)
        self._absent_mask = np.zeros(count, dtype=bool)
        #: Slot of the owning gang per device; -1 = unowned.
        self._owner = np.full(count, -1, dtype=np.int64)
        #: Node of each device, precomputed for the alignment test.
        self._node_index = np.arange(count, dtype=np.int64) // topology.gpus_per_node
        self._gangs: dict[int, DeviceGang] = {}
        self._owned_count: dict[int, int] = {}
        self._slot_of: dict[int, int] = {}
        self._next_slot = 0
        self._free_count = count
        self._failed_count = 0
        self._absent_count = 0
        self._busy_count = 0

    # ------------------------------------------------------------------ queries

    @property
    def num_devices(self) -> int:
        """Total devices in the cluster (alive, failed or absent)."""
        return self._count

    @property
    def alive_count(self) -> int:
        """Devices currently part of the cluster and not failed."""
        return self._count - self._failed_count - self._absent_count

    @property
    def free_count(self) -> int:
        """Devices currently idle and alive."""
        return self._free_count

    @property
    def busy_count(self) -> int:
        """Devices currently allocated to gangs."""
        return self._busy_count

    @property
    def failed_devices(self) -> frozenset[int]:
        """Devices that failed and have not (yet) been repaired."""
        return frozenset(np.flatnonzero(self._failed_mask).tolist())

    @property
    def absent_devices(self) -> frozenset[int]:
        """Devices that have not (yet) arrived in the cluster."""
        return frozenset(np.flatnonzero(self._absent_mask).tolist())

    def owner_of(self, device: int) -> DeviceGang | None:
        """The gang holding ``device``, if any (O(1))."""
        slot = int(self._owner[device])
        return self._gangs[slot] if slot >= 0 else None

    def is_failed(self, device: int) -> bool:
        """Whether ``device`` is currently failed (O(1))."""
        return bool(self._failed_mask[device])

    def is_absent(self, device: int) -> bool:
        """Whether ``device`` has not (yet) arrived in the cluster (O(1))."""
        return bool(self._absent_mask[device])

    # ------------------------------------------------------------------ allocation

    def _find_devices(self, size: int) -> tuple[int, ...]:
        """Vectorized placement search over the sorted free indices.

        Reproduces :meth:`GangAllocator.allocate`'s preference exactly:
        the first (lowest-start) contiguous index window that does not
        straddle a node boundary, else the first contiguous window, else
        the lowest free indices.  Windows of sorted free indices are
        contiguous iff ``free[start+size-1] - free[start] == size-1``.
        """
        free = np.flatnonzero(self._free_mask)
        if size == 1:
            # Every single free device is a node-aligned window of one;
            # the lowest index wins.
            return (int(free[0]),)
        spans = free[size - 1 :] - free[: free.size - size + 1]
        starts = np.flatnonzero(spans == size - 1)
        if starts.size:
            aligned = starts[
                self._node_index[free[starts]]
                == self._node_index[free[starts + size - 1]]
            ]
            start = int(aligned[0]) if aligned.size else int(starts[0])
            window = free[start : start + size]
        else:
            window = free[:size]
        return tuple(int(device) for device in window)

    def allocate(
        self, job: str, data_parallel: int, pipeline_parallel: int, tensor_parallel: int
    ) -> DeviceGang | None:
        """Allocate a gang for ``job``, or return ``None`` if it cannot fit.

        Same all-or-nothing contract and placement preference as
        :meth:`GangAllocator.allocate`, computed on the bitmaps.
        """
        size = data_parallel * pipeline_parallel * tensor_parallel
        if size < 1:
            raise ValueError(f"gang size must be >= 1, got {size}")
        if self._free_count < size:
            return None
        devices = self._find_devices(size)
        gang = DeviceGang(
            job=job,
            devices=devices,
            data_parallel=data_parallel,
            pipeline_parallel=pipeline_parallel,
            tensor_parallel=tensor_parallel,
        )
        slot = self._next_slot
        self._next_slot += 1
        index = np.fromiter(devices, count=size, dtype=np.int64)
        self._free_mask[index] = False
        self._owner[index] = slot
        self._free_count -= size
        self._busy_count += size
        self._gangs[slot] = gang
        self._owned_count[slot] = size
        self._slot_of[id(gang)] = slot
        return gang

    def _retire_device(self, slot: int, gang: DeviceGang) -> None:
        """One device left ``gang``; drop the slot when it was the last."""
        self._owned_count[slot] -= 1
        self._busy_count -= 1
        if self._owned_count[slot] == 0:
            del self._gangs[slot]
            del self._owned_count[slot]
            del self._slot_of[id(gang)]

    def release(self, gang: DeviceGang) -> list[int]:
        """Return a gang's devices to the free pool; returns those released.

        Devices that failed while allocated stay failed — identical to
        :meth:`GangAllocator.release`.
        """
        slot = self._slot_of.get(id(gang))
        released: list[int] = []
        if slot is None or self._gangs.get(slot) is not gang:
            return released
        for device in gang.devices:
            if self._owner[device] != slot:
                continue  # failed mid-run (already removed) — stays failed
            self._owner[device] = -1
            self._free_mask[device] = True
            released.append(device)
            self._retire_device(slot, gang)
        self._free_count += len(released)
        return released

    def fail_device(self, device: int) -> DeviceGang | None:
        """Mark ``device`` failed; returns the gang it interrupts, if any."""
        if not 0 <= device < self._count:
            raise ValueError(f"device {device} out of range [0, {self._count})")
        if self._failed_mask[device] or self._absent_mask[device]:
            return None
        slot = int(self._owner[device])
        gang: DeviceGang | None = None
        if slot >= 0:
            gang = self._gangs[slot]
            self._owner[device] = -1
            self._retire_device(slot, gang)
        elif self._free_mask[device]:
            self._free_mask[device] = False
            self._free_count -= 1
        self._failed_mask[device] = True
        self._failed_count += 1
        return gang

    # ------------------------------------------------------------------ repair / arrival

    def repair_device(self, device: int) -> bool:
        """Return a failed device to the free pool; False on stale repairs."""
        if not 0 <= device < self._count:
            raise ValueError(f"device {device} out of range [0, {self._count})")
        if not self._failed_mask[device]:
            return False
        self._failed_mask[device] = False
        self._failed_count -= 1
        self._free_mask[device] = True
        self._free_count += 1
        return True

    def mark_absent(self, device: int) -> None:
        """Move a free device out of the cluster (pre-run setup only)."""
        if not 0 <= device < self._count or not self._free_mask[device]:
            raise ValueError(
                f"device {device} is not free; only idle devices can start absent"
            )
        self._free_mask[device] = False
        self._free_count -= 1
        self._absent_mask[device] = True
        self._absent_count += 1

    def arrive_device(self, device: int) -> None:
        """An absent device joins the cluster: absent → free."""
        if not 0 <= device < self._count or not self._absent_mask[device]:
            raise ValueError(f"device {device} is not absent; cannot arrive")
        self._absent_mask[device] = False
        self._absent_count -= 1
        self._free_mask[device] = True
        self._free_count += 1

    # ------------------------------------------------------------------ snapshot / restore

    def snapshot_state(self) -> dict[str, list[int]]:
        """JSON-safe snapshot, byte-identical to the object allocator's."""
        return {
            "free": np.flatnonzero(self._free_mask).tolist(),
            "failed": np.flatnonzero(self._failed_mask).tolist(),
            "absent": np.flatnonzero(self._absent_mask).tolist(),
        }

    def restore_state(
        self,
        free: "list[int] | set[int]",
        failed: "list[int] | set[int]",
        absent: "list[int] | set[int]",
        allocated: "list[tuple[DeviceGang, list[int]]]" = (),
    ) -> None:
        """Overwrite the partition from a snapshot (scheduler restore path)."""
        self._free_mask[:] = False
        self._failed_mask[:] = False
        self._absent_mask[:] = False
        self._owner[:] = -1
        self._free_mask[list(free)] = True
        self._failed_mask[list(failed)] = True
        self._absent_mask[list(absent)] = True
        self._free_count = int(self._free_mask.sum())
        self._failed_count = int(self._failed_mask.sum())
        self._absent_count = int(self._absent_mask.sum())
        self._gangs.clear()
        self._owned_count.clear()
        self._slot_of.clear()
        self._busy_count = 0
        for gang, owned in allocated:
            if not owned:
                continue  # fully failed mid-run: nothing left to own
            slot = self._next_slot
            self._next_slot += 1
            self._owner[list(owned)] = slot
            self._gangs[slot] = gang
            self._owned_count[slot] = len(owned)
            self._slot_of[id(gang)] = slot
            self._busy_count += len(owned)
        self.check_consistent()

    # ------------------------------------------------------------------ invariants

    def check_consistent(self) -> None:
        """Assert free/allocated/failed/absent partition the cluster."""
        free = set(np.flatnonzero(self._free_mask).tolist())
        allocated = set(np.flatnonzero(self._owner >= 0).tolist())
        failed = set(np.flatnonzero(self._failed_mask).tolist())
        absent = set(np.flatnonzero(self._absent_mask).tolist())
        sets = {"free": free, "allocated": allocated, "failed": failed, "absent": absent}
        names = sorted(sets)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                overlap = sets[a] & sets[b]
                assert not overlap, f"devices both {a} and {b}: {overlap}"
        union = free | allocated | failed | absent
        expected = set(range(self.num_devices))
        assert union == expected, f"device leak: missing {expected - union}, extra {union - expected}"
        assert self._free_count == len(free), "free count out of sync"
        assert self._failed_count == len(failed), "failed count out of sync"
        assert self._absent_count == len(absent), "absent count out of sync"
        assert self._busy_count == len(allocated), "busy count out of sync"
        assert self._busy_count == sum(self._owned_count.values()), "slot counts out of sync"


#: Recognised scheduler-core selectors (see :func:`resolve_fleet_core`).
VALID_FLEET_CORES = ("bitmap", "object")


def resolve_fleet_core(core: "str | None" = None) -> str:
    """Resolve the fleet scheduler core: explicit arg > env > default.

    ``"bitmap"`` (default) selects the data-oriented core —
    :class:`BitmapGangAllocator` plus the scheduler's indexed event heap;
    ``"object"`` selects the original per-device object allocator and scan
    loops, retained as a bit-identity oracle.  The ``REPRO_FLEET_CORE``
    environment variable applies when no explicit value is given.
    """
    value = core or os.environ.get("REPRO_FLEET_CORE") or "bitmap"
    if value not in VALID_FLEET_CORES:
        raise ValueError(
            f"unknown fleet core {value!r}; choose from {list(VALID_FLEET_CORES)}"
        )
    return value


def make_allocator(
    topology: ClusterTopology, core: "str | None" = None
) -> "GangAllocator | BitmapGangAllocator":
    """Build the gang allocator for ``core`` (see :func:`resolve_fleet_core`)."""
    if resolve_fleet_core(core) == "object":
        return GangAllocator(topology)
    return BitmapGangAllocator(topology)
