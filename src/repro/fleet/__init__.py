"""Fleet scheduler: a multi-job elastic training runtime.

Runs many concurrent training jobs on one shared simulated cluster — gang
scheduling of pipeline-parallel device groups, FIFO / shortest-remaining-
work / preemptive-priority admission, checkpointed progress, and a fully
dynamic capacity model: device failures shrink the cluster, repairs and
late arrivals grow it back, elastic jobs shrink their data-parallel degree
after capacity loss and regrow toward the requested gang at iteration
boundaries, and higher-priority jobs gracefully evict running gangs at
iteration boundaries (time-slicing).  All re-admissions resume from the
job's last committed iteration boundary, bit-identical to a standalone
checkpoint-boundary restart.

See ``docs/ARCHITECTURE.md`` for the layer map, the event-ordering
contract and the elasticity state machine.
"""

from repro.fleet.gang import DeviceGang, GangAllocator
from repro.fleet.job import JobAttempt, JobCheckpoint, JobRecord, JobSpec, JobState
from repro.fleet.metrics import CapacityEvent, FleetReport, JobSummary, summarize_job
from repro.fleet.policies import (
    FifoPolicy,
    PreemptivePriorityPolicy,
    SchedulingPolicy,
    ShortestRemainingWorkPolicy,
    make_policy,
)
from repro.fleet.scheduler import (
    DeviceArrivalEvent,
    DeviceFailure,
    DeviceRepairEvent,
    FleetConfig,
    FleetScheduler,
)
from repro.fleet.session import JobExecution, JobPlanningError

__all__ = [
    "CapacityEvent",
    "DeviceArrivalEvent",
    "DeviceFailure",
    "DeviceGang",
    "DeviceRepairEvent",
    "FifoPolicy",
    "FleetConfig",
    "FleetReport",
    "FleetScheduler",
    "GangAllocator",
    "JobAttempt",
    "JobCheckpoint",
    "JobExecution",
    "JobPlanningError",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobSummary",
    "PreemptivePriorityPolicy",
    "SchedulingPolicy",
    "ShortestRemainingWorkPolicy",
    "make_policy",
    "summarize_job",
]
