"""Fleet scheduler: a multi-job elastic training runtime.

Runs many concurrent training jobs on one shared simulated cluster — gang
scheduling of pipeline-parallel device groups, FIFO / shortest-remaining-
work / preemptive-priority admission, checkpointed progress, and a fully
dynamic capacity model: device failures shrink the cluster, repairs and
late arrivals grow it back, elastic jobs shrink their data-parallel degree
after capacity loss and regrow toward the requested gang at iteration
boundaries, and higher-priority jobs gracefully evict running gangs at
iteration boundaries (time-slicing).  All re-admissions resume from the
job's last committed iteration boundary, bit-identical to a standalone
checkpoint-boundary restart.

The fleet is crash-resilient at both layers: the scheduler itself
checkpoints its full state at event boundaries and restores
deterministically (``repro.fleet.checkpoint``), and a fault-injection
harness (``repro.fleet.faults``) replays scripted or seeded-random fault
plans — failure storms, correlated rack outages, planner-worker kills and
transient store errors — through the same capacity-event machinery.

See ``docs/ARCHITECTURE.md`` for the layer map, the event-ordering
contract, the elasticity state machine and the fault-tolerance design.
"""

from repro.fleet.checkpoint import (
    SchedulerKilled,
    restore_scheduler,
    snapshot_scheduler,
)
from repro.fleet.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    failure_storm,
    rack_outage,
    random_fault_plan,
)
from repro.fleet.gang import (
    VALID_FLEET_CORES,
    BitmapGangAllocator,
    DeviceGang,
    GangAllocator,
    make_allocator,
    resolve_fleet_core,
)
from repro.fleet.job import JobAttempt, JobCheckpoint, JobRecord, JobSpec, JobState
from repro.fleet.metrics import CapacityEvent, FleetReport, JobSummary, summarize_job
from repro.fleet.policies import (
    FifoPolicy,
    PreemptivePriorityPolicy,
    SchedulingPolicy,
    ShortestRemainingWorkPolicy,
    make_policy,
)
from repro.fleet.scheduler import (
    DeviceArrivalEvent,
    DeviceFailure,
    DeviceRepairEvent,
    FleetConfig,
    FleetScheduler,
)
from repro.fleet.session import JobExecution, JobPlanningError
from repro.fleet.workloads import (
    MODEL_CATALOG,
    SyntheticTracePlanner,
    TraceJob,
    WorkloadModel,
    WorkloadTrace,
    build_jobs,
    build_scheduler,
    generate_trace,
    replay_trace,
    workload_cost_model,
)

__all__ = [
    "BitmapGangAllocator",
    "CapacityEvent",
    "DeviceArrivalEvent",
    "DeviceFailure",
    "DeviceGang",
    "DeviceRepairEvent",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FifoPolicy",
    "FleetConfig",
    "FleetReport",
    "FleetScheduler",
    "GangAllocator",
    "JobAttempt",
    "JobCheckpoint",
    "JobExecution",
    "JobPlanningError",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobSummary",
    "MODEL_CATALOG",
    "PreemptivePriorityPolicy",
    "SchedulerKilled",
    "SchedulingPolicy",
    "ShortestRemainingWorkPolicy",
    "SyntheticTracePlanner",
    "TraceJob",
    "VALID_FLEET_CORES",
    "WorkloadModel",
    "WorkloadTrace",
    "build_jobs",
    "build_scheduler",
    "failure_storm",
    "generate_trace",
    "make_allocator",
    "make_policy",
    "rack_outage",
    "random_fault_plan",
    "replay_trace",
    "resolve_fleet_core",
    "restore_scheduler",
    "snapshot_scheduler",
    "summarize_job",
    "workload_cost_model",
]
