"""Fleet scheduler: a multi-job elastic training runtime.

Runs many concurrent training jobs on one shared simulated cluster — gang
scheduling of pipeline-parallel device groups, FIFO / shortest-remaining-
work admission, checkpointed progress, and an elastic failure path that
re-plans preempted jobs on smaller or replacement gangs from their last
committed iteration boundary.
"""

from repro.fleet.gang import DeviceGang, GangAllocator
from repro.fleet.job import JobAttempt, JobCheckpoint, JobRecord, JobSpec, JobState
from repro.fleet.metrics import FleetReport, JobSummary, summarize_job
from repro.fleet.policies import (
    FifoPolicy,
    SchedulingPolicy,
    ShortestRemainingWorkPolicy,
    make_policy,
)
from repro.fleet.scheduler import DeviceFailure, FleetConfig, FleetScheduler
from repro.fleet.session import JobExecution, JobPlanningError

__all__ = [
    "DeviceFailure",
    "DeviceGang",
    "FifoPolicy",
    "FleetConfig",
    "FleetReport",
    "FleetScheduler",
    "GangAllocator",
    "JobAttempt",
    "JobCheckpoint",
    "JobExecution",
    "JobPlanningError",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobSummary",
    "SchedulingPolicy",
    "ShortestRemainingWorkPolicy",
    "make_policy",
    "summarize_job",
]
