"""Fleet-level metrics: makespan, queueing delay, utilization, elasticity.

The scheduler aggregates per-job summaries, a cluster-occupancy trace (one
:class:`~repro.simulator.trace.TraceEvent` per device per committed
iteration) and a capacity timeline (one :class:`CapacityEvent` per device
failure, repair and arrival) into a :class:`FleetReport` — the multi-job
analogue of :class:`~repro.training.throughput.TrainingReport`, exportable
to ``chrome://tracing`` for visual inspection of gang placement,
preemptions, evictions and elastic shrink/regrow cycles.

**Utilization contract**: :attr:`FleetReport.device_utilization` divides
committed device-time by *live* cluster capacity — ``num_devices ×
makespan`` minus the device-milliseconds spent failed or not-yet-arrived
(``dead_device_ms``).  Time a device was dead is not available capacity, so
a fleet that keeps every live device busy reports ~100% utilization even if
half the cluster was down for half the run; before repairs existed the
denominator charged dead time as if it were usable, understating
utilization in every run with a failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.fleet.job import JobRecord, JobState
from repro.simulator.chrome_trace import save_chrome_trace
from repro.simulator.trace import ExecutionTrace
from repro.utils.stats import mean


@dataclass(frozen=True)
class CapacityEvent:
    """One change of the cluster's alive device set.

    Attributes:
        time_ms: Fleet-clock time of the change.
        event: ``"failure"``, ``"repair"`` or ``"arrival"``.
        device: Global device index affected.
        alive_count: Alive devices *after* the event applied.
    """

    time_ms: float
    event: str
    device: int
    alive_count: int


@dataclass
class JobSummary:
    """Scheduling-level outcome of one job.

    Attributes:
        name: Job name.
        state: Terminal state (``finished`` or ``failed``).
        parallel: Requested shape, e.g. ``"dp2-pp2-tp1"``.
        priority: Scheduling priority of the spec (0 unless set).
        final_data_parallel: Replica count of the last attempt (smaller than
            requested when the job shrank elastically), ``None`` if never
            admitted.
        submit_time_ms / first_admitted_ms / finished_ms: Fleet-clock marks.
        queueing_delay_ms: Submission-to-first-admission delay.
        iterations_completed / target_iterations: Progress vs. the spec.
        attempts: Number of placements (1 = ran uninterrupted).
        retries: Re-admissions after failures (device or planning).
        preemptions: Device-failure interruptions (in-flight work lost).
        evictions: Graceful boundary preemptions by higher-priority jobs
            (no work lost, no retry budget spent).
        regrows: Boundary re-expansions toward the requested gang after
            repaired/arrived capacity.
        throughput_tokens_per_s: Actual-token throughput over committed
            iterations.
        failure_reason: Why the job failed (``None`` for finished jobs).
        planning_retries: Backoff-delayed planning re-admissions that did
            not burn retry budget (deadline mode).
        degraded_iterations: Iterations planned through the inline fallback
            because every pool worker was dead.
    """

    name: str
    state: str
    parallel: str
    priority: int
    final_data_parallel: int | None
    submit_time_ms: float
    first_admitted_ms: float | None
    finished_ms: float | None
    queueing_delay_ms: float | None
    iterations_completed: int
    target_iterations: int
    attempts: int
    retries: int
    preemptions: int
    evictions: int
    regrows: int
    throughput_tokens_per_s: float
    failure_reason: str | None
    planning_retries: int = 0
    degraded_iterations: int = 0


def summarize_job(record: JobRecord) -> JobSummary:
    """Condense a job record into its scheduling-level summary."""
    report = record.training_report()
    final_dp = record.attempts[-1].data_parallel if record.attempts else None
    return JobSummary(
        name=record.spec.name,
        state=record.state,
        parallel=record.spec.parallel.describe(),
        priority=record.spec.priority,
        final_data_parallel=final_dp,
        submit_time_ms=record.spec.submit_time_ms,
        first_admitted_ms=record.first_admitted_ms,
        finished_ms=record.finished_ms,
        queueing_delay_ms=record.queueing_delay_ms,
        iterations_completed=record.checkpoint.completed_iterations,
        target_iterations=record.spec.num_iterations,
        attempts=len(record.attempts),
        retries=record.retries,
        preemptions=record.preemptions,
        evictions=record.evictions,
        regrows=record.regrows,
        throughput_tokens_per_s=report.throughput_tokens_per_s,
        failure_reason=record.failure_reason,
        planning_retries=record.planning_retries,
        degraded_iterations=record.degraded_iterations,
    )


@dataclass
class FleetReport:
    """Aggregated outcome of one fleet run.

    Attributes:
        policy: Name of the admission policy that produced the run.
        jobs: Per-job summaries, in submission order.
        makespan_ms: Fleet-clock time of the last event.
        busy_device_ms: Device-milliseconds spent on committed iterations
            (work lost to failure-preempted in-flight iterations does not
            count).
        num_devices: Cluster size (including failed/absent devices).
        failed_devices: Devices still failed at the end of the run
            (repaired devices are not listed — see ``capacity_timeline``).
        absent_devices: Devices whose arrival never fired during the run.
        dead_device_ms: Device-milliseconds spent failed or not-yet-arrived
            over the run; subtracted from the utilization denominator.
        capacity_timeline: Failure/repair/arrival events in fleet-clock
            order, each with the alive count after it applied.
        trace: Cluster-occupancy trace (device × time → job iteration).
        planner_workers_spawned: Planner workers spawned over the whole run
            — ``planner_processes`` per *attempt* with private pools, but
            only ``planner_processes`` *total* with the shared planning
            cluster (the spawn-amortisation the paper's architecture buys).
        repair_durations_ms: Failure-to-repair durations of every repair
            that fired during the run (one entry per completed outage);
            feeds :attr:`mttr_ms`.
        fault_log: Applied planner-side faults (worker kills, store plan
            losses), each a ``{time_ms, kind, requested, applied}`` dict.
        events_processed: Scheduler event-loop iterations of the run —
            core-independent (both scheduler cores process the identical
            event sequence), so events/second is the benchmark's
            like-for-like speed metric.
    """

    policy: str
    jobs: list[JobSummary]
    makespan_ms: float
    busy_device_ms: float
    num_devices: int
    failed_devices: list[int] = field(default_factory=list)
    absent_devices: list[int] = field(default_factory=list)
    dead_device_ms: float = 0.0
    capacity_timeline: list[CapacityEvent] = field(default_factory=list)
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    planner_workers_spawned: int = 0
    repair_durations_ms: list[float] = field(default_factory=list)
    fault_log: list[dict[str, Any]] = field(default_factory=list)
    events_processed: int = 0

    # ------------------------------------------------------------------ aggregates

    @property
    def finished_jobs(self) -> int:
        """Jobs that completed their target iterations."""
        return sum(1 for job in self.jobs if job.state == JobState.FINISHED)

    @property
    def failed_jobs(self) -> int:
        """Jobs that failed (retry exhaustion or unschedulable)."""
        return sum(1 for job in self.jobs if job.state == JobState.FAILED)

    @property
    def total_retries(self) -> int:
        """Re-admissions across all jobs."""
        return sum(job.retries for job in self.jobs)

    @property
    def total_preemptions(self) -> int:
        """Device-failure interruptions across all jobs."""
        return sum(job.preemptions for job in self.jobs)

    @property
    def total_evictions(self) -> int:
        """Graceful priority evictions across all jobs."""
        return sum(job.evictions for job in self.jobs)

    @property
    def total_regrows(self) -> int:
        """Elastic boundary re-expansions across all jobs."""
        return sum(job.regrows for job in self.jobs)

    @property
    def devices_repaired(self) -> int:
        """Repair events that actually returned a device to the pool."""
        return sum(1 for event in self.capacity_timeline if event.event == "repair")

    @property
    def devices_arrived(self) -> int:
        """Late-arrival events that fired during the run."""
        return sum(1 for event in self.capacity_timeline if event.event == "arrival")

    @property
    def mttr_ms(self) -> float:
        """Mean time to repair: mean failure-to-repair duration of the
        outages that were actually repaired during the run (0.0 when no
        repair fired — devices that stayed dead contribute to
        ``dead_device_ms``, not here)."""
        return mean(self.repair_durations_ms) if self.repair_durations_ms else 0.0

    @property
    def total_planning_retries(self) -> int:
        """Backoff-delayed planning re-admissions across all jobs."""
        return sum(job.planning_retries for job in self.jobs)

    @property
    def total_degraded_iterations(self) -> int:
        """Inline-fallback iterations (dead pool) across all jobs."""
        return sum(job.degraded_iterations for job in self.jobs)

    @property
    def planner_faults_injected(self) -> int:
        """Planner-side fault events that fired during the run."""
        return len(self.fault_log)

    @property
    def mean_queueing_delay_ms(self) -> float:
        """Mean submission-to-admission delay over admitted jobs."""
        delays = [j.queueing_delay_ms for j in self.jobs if j.queueing_delay_ms is not None]
        return mean(delays) if delays else 0.0

    @property
    def max_queueing_delay_ms(self) -> float:
        """Largest admission delay over admitted jobs."""
        delays = [j.queueing_delay_ms for j in self.jobs if j.queueing_delay_ms is not None]
        return max(delays) if delays else 0.0

    @property
    def available_device_ms(self) -> float:
        """Live cluster capacity: total device-time minus dead device-time."""
        return self.num_devices * self.makespan_ms - self.dead_device_ms

    @property
    def device_utilization(self) -> float:
        """Committed device-time over *live* cluster capacity of the run.

        Time a device spent failed (between its failure and repair, or to
        the end of the run) or absent (before its late arrival) is not
        available capacity and is excluded from the denominator; with the
        old ``num_devices × makespan`` denominator, every repaired outage
        would have silently counted its dead time as schedulable capacity.
        """
        if self.available_device_ms <= 0:
            return 0.0
        return self.busy_device_ms / self.available_device_ms

    def summary(self) -> dict[str, Any]:
        """Compact dictionary summary used by the benchmark harness."""
        return {
            "policy": self.policy,
            "jobs": len(self.jobs),
            "finished": self.finished_jobs,
            "failed": self.failed_jobs,
            "makespan_ms": self.makespan_ms,
            "mean_queueing_delay_ms": self.mean_queueing_delay_ms,
            "max_queueing_delay_ms": self.max_queueing_delay_ms,
            "device_utilization": self.device_utilization,
            "total_retries": self.total_retries,
            "total_preemptions": self.total_preemptions,
            "total_evictions": self.total_evictions,
            "total_regrows": self.total_regrows,
            "devices_repaired": self.devices_repaired,
            "devices_arrived": self.devices_arrived,
            "dead_device_ms": self.dead_device_ms,
            "failed_devices": list(self.failed_devices),
            "planner_workers_spawned": self.planner_workers_spawned,
            "mttr_ms": self.mttr_ms,
            "planning_retries": self.total_planning_retries,
            "degraded_iterations": self.total_degraded_iterations,
            "planner_faults": self.planner_faults_injected,
            "events_processed": self.events_processed,
        }

    def save_chrome_trace(self, path: "str | Path") -> Path:
        """Write the cluster-occupancy timeline for ``chrome://tracing``."""
        return save_chrome_trace(self.trace, path, process_name=f"fleet ({self.policy})")

    def save_merged_trace(self, path: "str | Path") -> Path:
        """Write the merged fleet↔simulator↔planner trace for this run.

        Combines the occupancy timeline with the per-job op traces, planning
        spans and lifecycle events currently held by the process-wide
        telemetry stores (:mod:`repro.obs`) — run with telemetry enabled for
        the job/planner sections to be populated.  See
        :func:`repro.obs.merge.merge_fleet_trace` for the layout.
        """
        from repro.obs.merge import save_merged_trace

        return save_merged_trace(path, self)
