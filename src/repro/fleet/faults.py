"""Fault-injection harness: scripted and seeded-random chaos for the fleet.

The fleet's failure coverage used to be a handful of hand-placed
``inject_device_failure`` calls; this module makes fault workloads
first-class.  A :class:`FaultPlan` is an ordered list of declarative
:class:`FaultEvent` entries — the *fault-plan grammar* — and a
:class:`FaultInjector` compiles a plan onto a not-yet-run
:class:`~repro.fleet.scheduler.FleetScheduler` through the scheduler's
existing injection API, so every fault rides the same deterministic
capacity-event machinery as hand-written tests:

* ``failure`` / ``repair`` / ``arrival`` — single-device events, exactly
  the scheduler's primitives; a ``failure`` may carry ``repair_after_ms``
  to schedule its own repair.
* ``rack_outage`` — a *correlated* failure: every device of one topology
  node (:meth:`~repro.cluster.topology.ClusterTopology.node_devices`) dies
  in the same fleet-clock instant, modelling a power/network drop of a
  whole rack, optionally with a common repair delay.
* ``planner_kill`` / ``store_error`` — planner-side faults: worker kills
  (degrading pools toward inline planning) and transient plan-payload
  losses that exercise the retry/backoff path.

Generators build the plans the chaos tests and benchmark replay:
:func:`failure_storm` draws exponential inter-arrival failure times
(``rate_per_s``) with per-failure repair delays — the classic
large-cluster failure-trace shape — :func:`rack_outage` scripts one
correlated outage, and :func:`random_fault_plan` seeds a mixed storm +
rack-outage + planner-fault plan for property-based testing.  Plans are
JSON round-trippable (:meth:`FaultPlan.to_dicts` /
:meth:`FaultPlan.from_dicts`), mergeable, and — being pure data — replay
bit-identically on every run with the same seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.cluster.topology import ClusterTopology

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.fleet.scheduler import FleetScheduler

#: Recognised fault-event kinds (the plan grammar's verbs).
FAULT_KINDS = (
    "failure",
    "repair",
    "arrival",
    "rack_outage",
    "planner_kill",
    "store_error",
)


@dataclass(frozen=True)
class FaultEvent:
    """One declarative fault in a plan.

    Attributes:
        time_ms: Fleet-clock time the fault fires (>= 0).
        kind: One of :data:`FAULT_KINDS`.
        device: Global device index (``failure``/``repair``/``arrival``).
        node: Topology node index (``rack_outage``).
        count: Workers to kill / plans to drop (planner faults).
        repair_after_ms: For ``failure``/``rack_outage``: schedule the
            affected devices' repairs this many milliseconds after the
            fault (``None`` leaves repair to the scheduler's
            ``repair_delay_ms`` knob, or makes the outage permanent).
    """

    time_ms: float
    kind: str
    device: int | None = None
    node: int | None = None
    count: int = 1
    repair_after_ms: float | None = None

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError(f"time_ms must be >= 0, got {self.time_ms}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.kind in ("failure", "repair", "arrival") and self.device is None:
            raise ValueError(f"{self.kind} events need a device index")
        if self.kind == "rack_outage" and self.node is None:
            raise ValueError("rack_outage events need a node index")
        if self.kind in ("planner_kill", "store_error") and self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.repair_after_ms is not None and self.repair_after_ms <= 0:
            raise ValueError(f"repair_after_ms must be > 0, got {self.repair_after_ms}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (``None`` fields omitted)."""
        payload: dict[str, Any] = {"time_ms": self.time_ms, "kind": self.kind}
        if self.device is not None:
            payload["device"] = self.device
        if self.node is not None:
            payload["node"] = self.node
        if self.count != 1:
            payload["count"] = self.count
        if self.repair_after_ms is not None:
            payload["repair_after_ms"] = self.repair_after_ms
        return payload


@dataclass
class FaultPlan:
    """An ordered, replayable fault workload.

    Attributes:
        events: The plan's events; applied in ``(time_ms, declaration
            order)`` — the scheduler's own tie-breaking keeps simultaneous
            faults deterministic.
        seed: Seed the plan was generated from (``None`` for scripted
            plans); carried for provenance in benchmark artifacts.
        description: Human-readable one-liner for reports.
    """

    events: list[FaultEvent] = field(default_factory=list)
    seed: int | None = None
    description: str = ""

    def __len__(self) -> int:
        return len(self.events)

    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """A new plan with both plans' events, sorted by time (stable)."""
        events = sorted(self.events + other.events, key=lambda e: e.time_ms)
        description = " + ".join(d for d in (self.description, other.description) if d)
        return FaultPlan(events=events, seed=self.seed, description=description)

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-safe event list (seed/description travel separately)."""
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_dicts(
        cls,
        payload: Iterable[dict[str, Any]],
        seed: int | None = None,
        description: str = "",
    ) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dicts` output."""
        return cls(
            events=[FaultEvent(**event) for event in payload],
            seed=seed,
            description=description,
        )

    def counts(self) -> dict[str, int]:
        """Events per kind (diagnostics / benchmark accounting)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


class FaultInjector:
    """Compiles a :class:`FaultPlan` onto a scheduler before it runs.

    Args:
        plan: The fault workload to apply.

    The injector is pure glue: every event lowers to the scheduler's
    ``inject_device_failure`` / ``inject_device_repair`` /
    ``inject_device_arrival`` / ``inject_planner_fault`` primitives (a
    ``rack_outage`` lowers to one failure per device of the node), so
    applied plans obey the scheduler's documented event ordering and are
    part of its checkpoint the moment ``run()`` seeds them.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def apply(self, scheduler: "FleetScheduler") -> dict[str, int]:
        """Inject every event of the plan; returns events-per-kind counts.

        Raises:
            RuntimeError: If the scheduler already ran.
            ValueError: If an event references a device/node outside the
                scheduler's topology.
        """
        topology = scheduler.topology
        for event in self.plan.events:
            if event.kind == "failure":
                scheduler.inject_device_failure(event.time_ms, event.device)
                if event.repair_after_ms is not None:
                    scheduler.inject_device_repair(
                        event.time_ms + event.repair_after_ms, event.device
                    )
            elif event.kind == "repair":
                scheduler.inject_device_repair(event.time_ms, event.device)
            elif event.kind == "arrival":
                scheduler.inject_device_arrival(event.time_ms, event.device)
            elif event.kind == "rack_outage":
                for device in topology.node_devices(event.node):
                    scheduler.inject_device_failure(event.time_ms, device)
                    if event.repair_after_ms is not None:
                        scheduler.inject_device_repair(
                            event.time_ms + event.repair_after_ms, device
                        )
            else:  # planner_kill / store_error
                scheduler.inject_planner_fault(
                    event.time_ms, event.kind, count=event.count
                )
        return self.plan.counts()


# ---------------------------------------------------------------------- generators


def failure_storm(
    num_devices: int,
    seed: int,
    start_ms: float = 0.0,
    duration_ms: float = 60_000.0,
    rate_per_s: float = 0.5,
    repair_after_ms: float | None = 5_000.0,
) -> FaultPlan:
    """A seeded failure storm: exponential inter-arrival device failures.

    Failure times follow a Poisson process of ``rate_per_s`` over
    ``[start_ms, start_ms + duration_ms)``; each failure hits a uniformly
    drawn device and (optionally) schedules its repair ``repair_after_ms``
    later — the standard storm shape of large-cluster failure traces.

    Args:
        num_devices: Device-index range to draw victims from.
        seed: RNG seed; same seed → bit-identical plan.
        start_ms: Storm onset (fleet clock).
        duration_ms: Storm window length.
        rate_per_s: Mean failures per second of fleet time.
        repair_after_ms: Per-failure repair delay (``None``: no scheduled
            repair — permanent unless the scheduler auto-repairs).
    """
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if rate_per_s <= 0:
        raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
    rng = random.Random(seed)
    events: list[FaultEvent] = []
    time_ms = start_ms
    while True:
        time_ms += rng.expovariate(rate_per_s) * 1000.0
        if time_ms >= start_ms + duration_ms:
            break
        events.append(
            FaultEvent(
                time_ms=time_ms,
                kind="failure",
                device=rng.randrange(num_devices),
                repair_after_ms=repair_after_ms,
            )
        )
    return FaultPlan(
        events=events,
        seed=seed,
        description=(
            f"storm: {len(events)} failures over {duration_ms:g} ms "
            f"(rate {rate_per_s:g}/s, seed {seed})"
        ),
    )


def rack_outage(
    node: int,
    time_ms: float,
    repair_after_ms: float | None = None,
) -> FaultPlan:
    """A correlated outage of one whole rack (topology node).

    Every device of ``node`` fails in the same fleet-clock instant; with
    ``repair_after_ms`` the rack comes back as one block (power restored),
    otherwise repair falls to the scheduler's ``repair_delay_ms`` knob.
    """
    return FaultPlan(
        events=[
            FaultEvent(
                time_ms=time_ms,
                kind="rack_outage",
                node=node,
                repair_after_ms=repair_after_ms,
            )
        ],
        description=f"rack outage: node {node} at {time_ms:g} ms",
    )


def random_fault_plan(
    topology: ClusterTopology,
    seed: int,
    duration_ms: float = 40_000.0,
    storm_rate_per_s: float = 0.3,
    rack_outage_probability: float = 0.5,
    planner_fault_probability: float = 0.0,
) -> FaultPlan:
    """A seeded mixed fault workload for property-based testing.

    Composes a :func:`failure_storm` (always), at most one
    :func:`rack_outage` (with ``rack_outage_probability``, at a random
    time, always repaired), and optionally planner faults — all drawn from
    one ``random.Random(seed)``, so a hypothesis-minimised seed reproduces
    the exact plan.
    """
    rng = random.Random(seed)
    plan = failure_storm(
        topology.num_gpus,
        seed=rng.randrange(2**31),
        start_ms=rng.uniform(0.0, duration_ms / 4),
        duration_ms=duration_ms,
        rate_per_s=storm_rate_per_s,
        repair_after_ms=rng.uniform(1_000.0, duration_ms / 4),
    )
    if rng.random() < rack_outage_probability:
        plan = plan.merge(
            rack_outage(
                node=rng.randrange(topology.num_nodes),
                time_ms=rng.uniform(0.0, duration_ms),
                repair_after_ms=rng.uniform(1_000.0, duration_ms / 4),
            )
        )
    if rng.random() < planner_fault_probability:
        kind = rng.choice(["planner_kill", "store_error"])
        plan = plan.merge(
            FaultPlan(
                events=[
                    FaultEvent(
                        time_ms=rng.uniform(0.0, duration_ms),
                        kind=kind,
                        count=rng.randrange(1, 3),
                    )
                ],
                description=f"planner fault: {kind}",
            )
        )
    plan.seed = seed
    return plan
