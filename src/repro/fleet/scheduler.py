"""Multi-job elastic training runtime over one shared dynamic cluster.

The :class:`FleetScheduler` runs many training jobs concurrently on the
devices of a single :class:`~repro.cluster.topology.ClusterTopology`:

* **Admission** — queued jobs are ordered by a configurable policy (FIFO,
  shortest-remaining-work or preemptive priority) and gang-scheduled
  all-or-nothing onto ``dp × pp × tp`` device groups, with backfilling: a
  job that does not fit is skipped, not a barrier.
* **Execution** — each admitted job's iterations run through the existing
  planner/executor stack (optionally via the process-backed
  :class:`~repro.runtime.planner_pool.PlannerPool` and its instruction
  store); the fleet clock advances event by event, one committed iteration
  at a time, so concurrent jobs interleave exactly as their simulated
  iteration times dictate.
* **Dynamic capacity** — devices leave *and* join the cluster mid-run:
  injected failures remove them, :class:`DeviceRepairEvent`\\ s return
  failed devices to the free pool (automatically after
  ``FleetConfig.repair_delay_ms``, or at explicitly injected times), and
  :class:`DeviceArrivalEvent`\\ s add devices that were absent at the start
  of the run.  Queued jobs that cannot fit the currently-alive cluster are
  *not* declared unschedulable while capacity-returning events are still
  pending — they are admitted at the repair/arrival timestamp.
* **Failure preemption (elastic shrink)** — a device failure interrupts
  the owning job mid-iteration: the in-flight iteration is discarded, the
  gang is released (minus the dead device), and the job re-enters the
  queue to be re-planned from its checkpointed iteration boundary — on a
  smaller replica group when the alive cluster can no longer host the
  requested gang.  Planning failures (including
  :class:`~repro.instructions.store.PlanFailedError` markers from pool
  workers) take the same path.  Both count against the job's bounded retry
  budget; exhaustion marks the job *failed*, never hung.
* **Graceful preemption (boundary time-slicing)** — unlike a failure,
  policy-driven preemption happens only at an iteration boundary and lets
  the in-flight iteration *commit* first.  Two triggers share the path:
  a queued job the policy says ``preempts`` a running one (priority
  eviction — the victim requeues with its checkpoint intact and spends no
  retry budget), and **elastic regrowth** — a job running below its
  requested data-parallel degree re-expands onto a larger gang at the
  boundary as soon as repaired/arrived capacity allows, resuming from the
  checkpoint exactly like any other re-admission.

**Event ordering.**  At equal fleet-clock times events are processed as
*completion ≤ capacity (repair/arrival) ≤ job arrival ≤ failure*: an
iteration finishing in the same instant a device dies commits first; a
repair in the same instant a job arrives is applied before admission (so
the job can use the repaired device); an arriving job is admitted before a
simultaneous failure preempts it.  Within one completion, boundary checks
run in the order *finish → evict → regrow*.

Determinism: with fixed specs, failure/repair/arrival schedules and
policy, the run is a pure function of its inputs — iteration times come
from the seeded simulated executors and all ties are broken by the rule
above, then by submission order.

**Two cores.**  The scheduler runs on one of two interchangeable state
representations (``FleetConfig.core`` / ``REPRO_FLEET_CORE``):

* ``"bitmap"`` (default) — the data-oriented core: gang state lives in a
  :class:`~repro.fleet.gang.BitmapGangAllocator` (numpy masks + O(1)
  owner index), and capacity events, injected failures and job
  ready-times share **one indexed event heap** whose entries are
  ``(time, rank, seq, ...)`` tuples — rank encodes the tie-break contract
  (capacity < job arrival < failure) so the heap top *is* the branch the
  scan loop would have chosen.  Completions live in a second lazy heap
  keyed ``(completion_ms, sequence)`` with per-attempt validity tokens,
  and admission passes are skipped entirely at boundaries where nothing
  admission-relevant changed (a dirty flag raised by every queue /
  capacity / free-pool mutation).
* ``"object"`` — the original per-device object allocator and per-tick
  scan loops, retained verbatim as a bit-identity oracle.  Reports,
  snapshots and every scheduling decision are identical across cores;
  the equivalence suite and ``benchmarks/bench_fleet_scale.py`` pin it.
"""

from __future__ import annotations

import heapq
import inspect
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.topology import ClusterTopology
from repro.fleet.gang import DeviceGang, make_allocator, resolve_fleet_core
from repro.instructions.store import InstructionStore
from repro.runtime.planner_pool import PlannerPool
from repro.fleet.job import JobAttempt, JobRecord, JobSpec, JobState
from repro.fleet.metrics import CapacityEvent, FleetReport, summarize_job
from repro.fleet.policies import (
    PreemptivePriorityPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.fleet.session import JobExecution, JobPlanningError
from repro.obs import state as _obs_state
from repro.obs.events import publish as _obs_publish
from repro.obs.registry import REGISTRY
from repro.obs.simtrace import COLLECTOR as _SIM_COLLECTOR
from repro.simulator.trace import ExecutionTrace, TraceEvent
from repro.training.throughput import IterationRecord

#: Registry-backed fleet counters (``fleet.*`` in metric snapshots).
_FLEET_STATS = REGISTRY.counter_dict(
    "fleet",
    (
        "jobs_submitted",
        "attempts_started",
        "iterations_committed",
        "jobs_finished",
        "jobs_failed",
        "evictions",
        "regrowths",
        "device_failures",
        "device_repairs",
        "device_arrivals",
        "planner_faults_applied",
        "checkpoints_taken",
        "restores",
    ),
)


#: Unified-event-heap ranks (bitmap core).  At equal times the heap pops
#: capacity events before job-ready marks before failures — exactly the
#: scan loop's *completion ≤ capacity ≤ arrival ≤ failure* contract
#: (completions live in their own heap and win ties by comparing ``<=``
#: against the event heap's top).
_RANK_CAPACITY = 0
_RANK_READY = 1
_RANK_FAILURE = 2


@dataclass(frozen=True)
class DeviceFailure:
    """A scheduled device failure (fleet-clock time, global device index)."""

    time_ms: float
    device: int


@dataclass(frozen=True)
class DeviceRepairEvent:
    """A scheduled repair: ``device`` returns to the free pool at ``time_ms``.

    Repairing a device that is not failed at that time (it never died, or
    was already repaired) is a no-op.
    """

    time_ms: float
    device: int


@dataclass(frozen=True)
class DeviceArrivalEvent:
    """A late arrival: ``device`` is absent from the start of the run and
    joins the free pool at ``time_ms``."""

    time_ms: float
    device: int


@dataclass
class FleetConfig:
    """Tunable knobs of the fleet scheduler.

    Attributes:
        policy: Admission ordering — ``"fifo"``, ``"srw"``, ``"priority"``
            or a :class:`~repro.fleet.policies.SchedulingPolicy` instance.
        repair_delay_ms: When set, every device failure automatically
            schedules a :class:`DeviceRepairEvent` that many milliseconds
            later; when ``None`` (default) failures are permanent unless a
            repair is injected explicitly.
        planner_processes: When > 0, job attempts plan through a planner
            pool with that many worker processes.
        shared_planner_pool: When True (and ``planner_processes > 0``), one
            fleet-wide pool — the paper's CPU-side *planning cluster* —
            serves every job's iterations through one shared
            :class:`~repro.instructions.store.InstructionStore`: its
            workers are spawned once for the whole run instead of once per
            job attempt, and each attempt gets its own store namespace.
            When False each attempt spawns a private pool (the pre-cluster
            behaviour, kept as a fallback mode).  Plans are bit-identical
            either way.
        planner_lookahead: Plan-ahead window of the pooled mode (per job
            stream in shared mode).
        planner_backend: Pool backend (``"process"`` or ``"thread"``).
        planner_timeout_s: Per-iteration plan wait bound of the pooled mode.
        max_events: Safety valve on processed scheduler events.
        planning_backoff_base_ms: When > 0, a planning failure delays the
            job's re-admission by ``base × factor^(streak-1)`` fleet-clock
            milliseconds (capped at ``planning_backoff_max_ms``, optionally
            jittered) instead of retrying in the same instant.  0 (default)
            keeps immediate retries.
        planning_backoff_factor: Exponential growth per consecutive
            planning failure.
        planning_backoff_max_ms: Ceiling of one backoff delay.
        planning_backoff_jitter: Uniform jitter fraction: each delay is
            multiplied by ``1 + jitter × U[0, 1)`` drawn from the
            scheduler's own seeded RNG (part of the checkpoint, so restored
            runs replay the same jitter).
        seed: Seed of the scheduler's RNG (backoff jitter).
        regrow_min_boundaries: Regrowth hysteresis — an elastically shrunk
            attempt must commit at least this many iteration (checkpoint)
            boundaries before the job may regrow, so a flapping cluster
            (fail/repair cycles) does not thrash shrink/regrow.  Values
            ``<= 1`` are equivalent to off (regrowth is only ever checked
            at a boundary, i.e. after >= 1 committed iteration).
        priority_aging_ms: Convenience knob wiring
            :class:`~repro.fleet.policies.PreemptivePriorityPolicy` aging:
            requires ``policy="priority"`` (pass a configured policy
            instance for anything fancier).
        checkpoint_interval_events: When set (with ``checkpoint_sink``),
            the scheduler snapshots itself every N event boundaries and
            hands the JSON-safe dict to the sink.
        checkpoint_sink: Callable receiving each periodic snapshot.
        on_event: Hook called with the scheduler at *every* event boundary
            (after the previous event fully applied, before the next
            admission pass).  May call :meth:`FleetScheduler.checkpoint`;
            an exception it raises propagates out of ``run()`` (this is how
            the tests and the chaos harness simulate a scheduler crash).
        core: Scheduler core — ``"bitmap"`` (default; array/bitmap state,
            unified event heap) or ``"object"`` (the original per-device
            object core, retained as a bit-identity oracle).  ``None``
            defers to the ``REPRO_FLEET_CORE`` environment variable.
    """

    policy: "str | SchedulingPolicy" = "fifo"
    repair_delay_ms: float | None = None
    planner_processes: int = 0
    shared_planner_pool: bool = False
    planner_lookahead: int = 4
    planner_backend: str = "process"
    planner_timeout_s: float = 600.0
    max_events: int = 1_000_000
    planning_backoff_base_ms: float = 0.0
    planning_backoff_factor: float = 2.0
    planning_backoff_max_ms: float = 60_000.0
    planning_backoff_jitter: float = 0.0
    seed: int = 0
    regrow_min_boundaries: int = 0
    priority_aging_ms: float | None = None
    checkpoint_interval_events: int | None = None
    checkpoint_sink: "Callable[[dict[str, Any]], None] | None" = None
    on_event: "Callable[[FleetScheduler], None] | None" = None
    core: "str | None" = None


@dataclass
class _RunningJob:
    """Scheduler-side state of one admitted attempt."""

    record: JobRecord
    gang: DeviceGang
    execution: JobExecution
    attempt: JobAttempt
    iteration_started_ms: float = 0.0
    completion_ms: float = 0.0
    #: The in-flight iteration's (record, stats); committed at completion,
    #: discarded on failure preemption (graceful preemption waits for it).
    pending: "tuple[IterationRecord, object] | None" = None
    #: Whether the in-flight iteration was planned through the degraded
    #: inline fallback (every pool worker dead); folded into the record's
    #: ``degraded_iterations`` when the iteration commits.
    pending_degraded: bool = False
    #: Validity token of the job's entry in the bitmap core's completion
    #: heap; stale heap entries (earlier iterations, ended attempts) carry
    #: an old token and are discarded lazily at peek time.
    token: int = 0


class FleetScheduler:
    """Admits, runs, preempts, regrows and retries jobs on a shared cluster.

    Args:
        topology: The shared cluster.
        config: Fleet configuration.
    """

    def __init__(self, topology: ClusterTopology, config: FleetConfig | None = None) -> None:
        self.topology = topology
        self.config = config or FleetConfig()
        if self.config.priority_aging_ms is not None:
            if self.config.policy != "priority":
                raise ValueError(
                    "priority_aging_ms requires policy='priority' (pass a "
                    "configured PreemptivePriorityPolicy instance otherwise)"
                )
            self.policy: SchedulingPolicy = PreemptivePriorityPolicy(
                aging_ms=self.config.priority_aging_ms
            )
        else:
            self.policy = make_policy(self.config.policy)
        if self.config.regrow_min_boundaries < 0:
            raise ValueError(
                f"regrow_min_boundaries must be >= 0, got {self.config.regrow_min_boundaries}"
            )
        self._preempts = self._adapt_preempts(self.policy)
        #: Resolved scheduler core; ``_fast`` gates every data-oriented path.
        self.core = resolve_fleet_core(self.config.core)
        self._fast = self.core == "bitmap"
        #: Policies that can never preempt skip the per-boundary eviction
        #: scan entirely in the fast core.
        self._never_preempts = bool(
            getattr(
                self.policy,
                "never_preempts",
                getattr(self.policy, "preempts", None) is None,
            )
        )
        #: Non-aging priority policies admit a cheap conservative eviction
        #: prefilter (max static priority over the pending queue).
        self._static_priority = (
            isinstance(self.policy, PreemptivePriorityPolicy)
            and self.policy.aging_ms is None
        )
        self.allocator = make_allocator(topology, self.core)
        self.jobs: dict[str, JobRecord] = {}
        self._pending: list[JobRecord] = []
        self._running: dict[str, _RunningJob] = {}
        self._failures: list[DeviceFailure] = []
        self._repairs: list[DeviceRepairEvent] = []
        self._arrivals: list[DeviceArrivalEvent] = []
        #: Scheduled planner-side faults: (time_ms, kind, count) with kind
        #: "planner_kill" or "store_error"; seeded into the capacity heap.
        self._planner_faults: list[tuple[float, str, int]] = []
        #: Min-heap of (time_ms, seq, kind, device, epoch) capacity-
        #: returning events; ``seq`` keeps ordering stable at equal times.
        #: Injected repairs/arrivals seed it at run() (epoch ``None``);
        #: auto-repairs are pushed as their failures are applied, stamped
        #: with that failure's epoch so a repair can only revive the
        #: failure it was scheduled for (a device that was repaired early
        #: and failed again must wait out the *new* failure's delay).
        self._capacity_heap: list[tuple[float, int, str, int, "int | None"]] = []
        self._capacity_seq = 0
        #: Per-device count of applied failures; an auto-repair applies
        #: only if the device's epoch still matches its own.
        self._failure_epoch: dict[int, int] = {}
        self._trace_events: list[TraceEvent] = []
        self._capacity_timeline: list[CapacityEvent] = []
        #: Per-device fleet-clock time it went dark (failed or not yet
        #: arrived); cleared on repair/arrival.  Feeds dead-time accounting
        #: so utilization's denominator only counts live capacity.
        self._down_since: dict[int, float] = {}
        self._dead_device_ms = 0.0
        self._busy_device_ms = 0.0
        self._ran = False
        #: The fleet-wide planning cluster (shared mode only): one store,
        #: one pool, spawned lazily on the first pooled attempt and stopped
        #: exactly once when run() ends.
        self.store: InstructionStore | None = None
        self._shared_pool: PlannerPool | None = None
        self._planner_workers_spawned = 0
        # --- event-loop state (instance-level so checkpoint() can snapshot
        # it at any event boundary and restore() can resume the loop) ---
        self._clock = 0.0
        self._events_processed = 0
        self._failures_sorted: "list[DeviceFailure] | None" = None
        self._next_failure = 0
        #: Seeded RNG of the scheduler itself (backoff jitter).  Its state
        #: is part of the checkpoint so restored runs replay it.
        self._rng = random.Random(self.config.seed)
        self._restored = False
        #: Running attempts awaiting deterministic re-materialisation at
        #: the start of a restored run() (record, gang, started, completion).
        self._restore_running: list[tuple[JobRecord, DeviceGang, float, float]] = []
        #: Completed repair durations (failure → repair, per device epoch);
        #: feeds the report's MTTR.
        self._repair_durations: list[float] = []
        #: Applied planner-side faults (worker kills, store plan losses).
        self._fault_log: list[dict[str, Any]] = []
        # --- bitmap-core state: the unified event heap merges capacity
        # events, injected failures and job ready-times into one ordered
        # source; completions live in their own lazy heap; the dirty flag
        # elides admission passes at boundaries where nothing admission-
        # relevant changed.  All of it is rebuilt from the neutral snapshot
        # fields at run(), so checkpoints stay core-independent. ---
        #: Entries ``(time_ms, rank, seq, kind, payload, epoch)``; see the
        #: ``_RANK_*`` constants for the tie-break encoding.
        self._event_heap: "list[tuple[float, int, int, str, Any, Any]]" = []
        self._event_seq = 0
        #: Entries ``(completion_ms, sequence, token, job_name)``.
        self._completion_heap: "list[tuple[float, int, int, str]]" = []
        self._completion_token = 0
        #: Count of queued repair/arrival entries (planner faults never add
        #: capacity), so ``_capacity_pending`` is O(1) when trivially false.
        self._capacity_live_entries = 0
        self._admit_dirty = True
        #: Cached max static priority over the pending queue (eviction
        #: prefilter); ``None`` = recompute on next use.
        self._pending_priority_cache: "float | None" = None

    @staticmethod
    def _adapt_preempts(policy: SchedulingPolicy) -> "Callable[[JobRecord, JobRecord, float], bool]":
        """The policy's preemption hook, normalised to 3-arg form.

        Custom policies written against the pre-time-slicing protocol
        (order() only) never preempt; the pre-aging 2-arg
        ``preempts(waiting, victim)`` is wrapped so existing policies keep
        working unchanged.
        """
        preempts = getattr(policy, "preempts", None)
        if preempts is None:
            return lambda waiting, victim, now_ms: False
        try:
            parameters = [
                parameter
                for parameter in inspect.signature(preempts).parameters.values()
                if parameter.kind
                in (
                    inspect.Parameter.POSITIONAL_ONLY,
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                )
            ]
            takes_now = len(parameters) >= 3 or any(
                parameter.kind == inspect.Parameter.VAR_POSITIONAL
                for parameter in inspect.signature(preempts).parameters.values()
            )
        except (TypeError, ValueError):  # pragma: no cover - builtins/partials
            takes_now = True
        if takes_now:
            return preempts
        return lambda waiting, victim, now_ms: preempts(waiting, victim)

    # ------------------------------------------------------------------ planning cluster

    @property
    def _pooled(self) -> bool:
        return self.config.planner_processes > 0

    def _shared_pool_handle(self) -> PlannerPool | None:
        """The fleet-wide pool (started), or ``None`` outside shared mode."""
        if not (self._pooled and self.config.shared_planner_pool):
            return None
        if self._shared_pool is None:
            self.store = InstructionStore()
            self._shared_pool = PlannerPool(
                store=self.store,
                num_workers=self.config.planner_processes,
                lookahead=self.config.planner_lookahead,
                backend=self.config.planner_backend,
            )
            self._shared_pool.start()
            self._planner_workers_spawned += self._shared_pool.num_workers
        return self._shared_pool

    def _stop_shared_pool(self) -> None:
        if self._shared_pool is not None:
            self._shared_pool.stop()

    # ------------------------------------------------------------------ submission

    def submit(self, spec: JobSpec) -> JobRecord:
        """Queue a job; returns its live record."""
        if self._ran:
            raise RuntimeError("cannot submit jobs after run()")
        if self._restored:
            raise RuntimeError(
                "cannot submit new jobs to a restored scheduler (restore "
                "resumes exactly the snapshotted fleet)"
            )
        if spec.name in self.jobs:
            raise ValueError(f"duplicate job name {spec.name!r}")
        if spec.parallel.pipeline_parallel != spec.cost_model.num_stages:
            raise ValueError(
                f"job {spec.name}: parallel shape {spec.parallel.describe()} does not "
                f"match the cost model's {spec.cost_model.num_stages} pipeline stages"
            )
        if (
            spec.planning_deadline_ms is not None
            and self.config.planning_backoff_base_ms <= 0
        ):
            raise ValueError(
                f"job {spec.name}: planning_deadline_ms requires "
                "FleetConfig.planning_backoff_base_ms > 0 (without a backoff "
                "delay a doomed planning streak would never consume fleet time)"
            )
        record = JobRecord(
            spec=spec, sequence=len(self.jobs), last_queued_ms=spec.submit_time_ms
        )
        self.jobs[spec.name] = record
        self._pending.append(record)
        _FLEET_STATS["jobs_submitted"] += 1
        _obs_publish(
            "job_submitted",
            time_ms=spec.submit_time_ms,
            job=spec.name,
            priority=spec.priority,
        )
        return record

    def _check_event_args(self, time_ms: float, device: int) -> None:
        if self._ran or self._restored:
            raise RuntimeError("cannot inject cluster events after run()")
        if time_ms < 0:
            raise ValueError(f"time_ms must be >= 0, got {time_ms}")
        if not 0 <= device < self.topology.num_gpus:
            raise ValueError(
                f"device {device} out of range [0, {self.topology.num_gpus})"
            )

    def inject_device_failure(self, time_ms: float, device: int) -> None:
        """Schedule ``device`` to fail at fleet-clock ``time_ms``."""
        self._check_event_args(time_ms, device)
        self._failures.append(DeviceFailure(time_ms=time_ms, device=device))

    def inject_device_repair(self, time_ms: float, device: int) -> None:
        """Schedule ``device`` to be repaired (failed → free) at ``time_ms``.

        A repair for a device that is not failed when the event fires is a
        no-op; with ``FleetConfig.repair_delay_ms`` set, explicit injections
        are rarely needed.
        """
        self._check_event_args(time_ms, device)
        self._repairs.append(DeviceRepairEvent(time_ms=time_ms, device=device))

    def inject_device_arrival(self, time_ms: float, device: int) -> None:
        """Schedule ``device`` to join the cluster late, at ``time_ms``.

        The device is *absent* — outside the free pool and not counted
        alive — from the start of the run until its arrival fires.
        """
        self._check_event_args(time_ms, device)
        if any(event.device == device for event in self._arrivals):
            raise ValueError(f"device {device} already has a scheduled arrival")
        self._arrivals.append(DeviceArrivalEvent(time_ms=time_ms, device=device))

    def inject_planner_fault(self, time_ms: float, kind: str, count: int = 1) -> None:
        """Schedule a planner-side fault at fleet-clock ``time_ms``.

        Kinds:

        * ``"planner_kill"`` — kill ``count`` live planner workers (shared
          pool first, else every running attempt's private pool in job
          order).  Thread-backend kills are cooperative; a pool whose
          workers are all dead degrades its jobs to inline planning.
        * ``"store_error"`` — a transient instruction-store fault: ``count``
          running pooled jobs (in job order) lose their next pending plan
          payload, exercising the :class:`PlanFailedError` → retry/backoff
          path; the next attempt replans the iteration successfully.
        """
        if self._ran or self._restored:
            raise RuntimeError("cannot inject cluster events after run()")
        if time_ms < 0:
            raise ValueError(f"time_ms must be >= 0, got {time_ms}")
        if kind not in ("planner_kill", "store_error"):
            raise ValueError(
                f"unknown planner fault kind {kind!r}; "
                "choose 'planner_kill' or 'store_error'"
            )
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._planner_faults.append((time_ms, kind, count))

    def _push_capacity_event(
        self, time_ms: float, kind: str, device: int, epoch: "int | None" = None
    ) -> None:
        if self._fast:
            heapq.heappush(
                self._event_heap,
                (time_ms, _RANK_CAPACITY, self._capacity_seq, kind, device, epoch),
            )
            if kind in ("repair", "arrival"):
                self._capacity_live_entries += 1
        else:
            heapq.heappush(
                self._capacity_heap, (time_ms, self._capacity_seq, kind, device, epoch)
            )
        self._capacity_seq += 1

    def _capacity_event_live(self, kind: str, device: int, epoch: "int | None") -> bool:
        """Whether a queued capacity event could still *add* capacity.

        Planner faults never add capacity.  An auto-repair whose failure
        epoch was superseded (the device was repaired early and failed
        again) is dead; so is a repair for an alive device or an arrival
        for a device already present.
        """
        if kind in ("planner_kill", "store_error"):
            return False
        if kind == "arrival":
            return self.allocator.is_absent(device)
        if not self.allocator.is_failed(device):
            return False
        return epoch is None or self._failure_epoch.get(device) == epoch

    # ------------------------------------------------------------------ event loop

    def run(self) -> FleetReport:
        """Process every submitted job to a terminal state; returns the report."""
        if self._ran:
            raise RuntimeError("run() may only be called once")
        self._ran = True
        if not self._restored:
            for arrival in self._arrivals:
                self.allocator.mark_absent(arrival.device)
                self._down_since[arrival.device] = 0.0
                self._push_capacity_event(arrival.time_ms, "arrival", arrival.device)
            for repair in self._repairs:
                self._push_capacity_event(repair.time_ms, "repair", repair.device)
            for time_ms, kind, count in self._planner_faults:
                # Planner faults ride the capacity heap: ``device`` carries
                # the count and the epoch slot is unused.
                self._push_capacity_event(time_ms, kind, count)
            self._failures_sorted = sorted(
                self._failures, key=lambda f: (f.time_ms, f.device)
            )
        if self._fast:
            self._seed_event_heap()
        try:
            # Restored running attempts are re-materialised here — inside
            # the try — so their planning resources are owned by the same
            # finally that covers the loop.
            for record, gang, started_ms, completion_ms in self._restore_running:
                self._resume_attempt(record, gang, started_ms, completion_ms)
            self._restore_running = []
            clock = self._run_event_loop()
        finally:
            # Pool lifecycle is exactly-once even when the event loop dies
            # unexpectedly: every still-running attempt's planning resources
            # are released (its stream retired / its private pool stopped),
            # then the planning cluster itself is torn down.
            for running in list(self._running.values()):
                running.execution.close()
            self._stop_shared_pool()
        return self._build_report(clock)

    @staticmethod
    def _ready_ms(record: JobRecord) -> float:
        """Earliest fleet-clock time the queued record may be admitted:
        its submit time, pushed back by any planning-backoff hold."""
        return max(record.spec.submit_time_ms, record.not_before_ms)

    def _event_boundary(self) -> None:
        """Hook point at the top of every event-loop iteration.

        The previous event has fully applied and the next admission pass
        has not started — the exact state :meth:`checkpoint` snapshots.
        The periodic checkpoint sink fires first, then the ``on_event``
        hook (whose exceptions propagate: that is the crash-simulation
        path the chaos tests use).
        """
        config = self.config
        if (
            config.checkpoint_interval_events is not None
            and config.checkpoint_sink is not None
            and self._events_processed > 0
            and self._events_processed % config.checkpoint_interval_events == 0
        ):
            config.checkpoint_sink(self.checkpoint())
            _FLEET_STATS["checkpoints_taken"] += 1
            _obs_publish(
                "checkpoint_taken",
                time_ms=self._clock,
                events_processed=self._events_processed,
            )
        if config.on_event is not None:
            config.on_event(self)

    # ------------------------------------------------------------------ bitmap core

    def _seed_event_heap(self) -> None:
        """Build the unified event heap at the start of a (restored) run.

        Capacity events are stored neutrally — injections and restored
        snapshots land in ``_capacity_heap`` — and move here preserving
        their ``(time, seq)`` identity, so cross-core restores replay the
        same tie-breaks.  Injected failures enter with their schedule index
        as the seq (``_failures_sorted`` order), and every pending job with
        a future ready-time gets a job-ready mark.
        """
        for time_ms, seq, kind, device, epoch in self._capacity_heap:
            heapq.heappush(
                self._event_heap, (time_ms, _RANK_CAPACITY, seq, kind, device, epoch)
            )
            if kind in ("repair", "arrival"):
                self._capacity_live_entries += 1
        self._capacity_heap = []
        failures = self._failures_sorted or []
        for index in range(self._next_failure, len(failures)):
            failure = failures[index]
            heapq.heappush(
                self._event_heap,
                (failure.time_ms, _RANK_FAILURE, index, "failure", failure.device, None),
            )
        for record in self._pending:
            self._push_ready_event(record)

    def _push_ready_event(self, record: JobRecord) -> None:
        """Mark a queued job's future ready-time in the event heap.

        Jobs already admissible (ready ≤ clock) need no mark — the next
        admission pass sees them; the clock never moves backwards, so a
        mark skipped now can never be needed later.
        """
        ready_ms = self._ready_ms(record)
        if ready_ms > self._clock:
            self._event_seq += 1
            heapq.heappush(
                self._event_heap,
                (ready_ms, _RANK_READY, self._event_seq, "ready", record.spec.name, None),
            )

    def _on_requeued(self, record: JobRecord) -> None:
        """Bookkeeping hook after ``record`` re-enters the pending queue."""
        self._pending_priority_cache = None
        if self._fast:
            self._admit_dirty = True
            self._push_ready_event(record)

    def _pending_max_priority(self) -> float:
        """Max static priority over the pending queue (cached)."""
        cached = self._pending_priority_cache
        if cached is None:
            cached = max(
                (record.spec.priority for record in self._pending),
                default=float("-inf"),
            )
            self._pending_priority_cache = cached
        return cached

    def _peek_completion(self) -> "tuple[float, _RunningJob | None]":
        """Next live completion ``(time, running)``; lazily drops stale entries.

        An entry is live iff its job is still running *and* its token
        matches the attempt's current iteration — entries from committed
        iterations or ended attempts are discarded on sight.  Live entries
        order by ``(completion_ms, sequence)``, the scan loop's exact
        tie-break.
        """
        heap = self._completion_heap
        while heap:
            completion_ms, _sequence, token, name = heap[0]
            running = self._running.get(name)
            if running is not None and running.token == token:
                return completion_ms, running
            heapq.heappop(heap)
        return float("inf"), None

    def _peek_next_event(self, clock: float) -> float:
        """Time of the next live event-heap entry (``inf`` when drained).

        Capacity and failure entries are always live (stale capacity
        events are consumed as no-op loop events, exactly like the scan
        loop).  A job-ready mark is live only while its job is still
        pending with that exact ready-time in the future — re-queues push
        fresh marks, so superseded ones are dropped here.
        """
        heap = self._event_heap
        while heap:
            entry = heap[0]
            if entry[1] == _RANK_READY:
                record = self.jobs[entry[4]]
                if (
                    entry[0] <= clock
                    or record.state != JobState.PENDING
                    or self._ready_ms(record) != entry[0]
                ):
                    heapq.heappop(heap)
                    continue
            return entry[0]
        return float("inf")

    def _run_event_loop_fast(self) -> float:
        """Heap-indexed twin of :meth:`_run_event_loop` (bitmap core).

        One iteration per event, identical branch outcomes: the completion
        heap's top is compared ``<=`` against the unified event heap's top,
        whose rank field encodes *capacity ≤ arrival ≤ failure* at equal
        times — so popping the winner reproduces the scan loop's four-way
        tie-break without recomputing min() over running jobs or pending
        ready-times.
        """
        infinity = float("inf")
        event_heap = self._event_heap
        while self._pending or self._running:
            self._event_boundary()
            self._events_processed += 1
            if self._events_processed > self.config.max_events:
                raise RuntimeError(
                    f"fleet scheduler exceeded {self.config.max_events} events; "
                    "likely a scheduling livelock"
                )
            clock = self._clock
            self._admit(clock)
            if not self._pending and not self._running:
                break
            t_completion, next_completion = self._peek_completion()
            t_event = self._peek_next_event(clock)
            if t_completion == infinity and t_event == infinity:
                # Backstop: nothing executing, no queued event — the
                # remaining queue is unschedulable (see the scan loop).
                for record in list(self._pending):
                    self._mark_failed(
                        record, clock, "unschedulable: no capacity and no pending events"
                    )
                continue
            if t_completion <= t_event:
                heapq.heappop(self._completion_heap)
                self._clock = clock = t_completion
                assert next_completion is not None
                self._complete_iteration(next_completion, clock)
                if t_completion == t_event:
                    # A capacity/ready/failure event shares this instant;
                    # the scan loop's next admission pass would see any
                    # ready-crossing, so the elision guard must too.
                    self._admit_dirty = True
            else:
                time_ms, rank, _seq, kind, payload, epoch = heapq.heappop(event_heap)
                self._clock = clock = time_ms
                self._admit_dirty = True
                if rank == _RANK_CAPACITY:
                    if kind in ("repair", "arrival"):
                        self._capacity_live_entries -= 1
                    self._apply_capacity_event(kind, payload, clock, epoch)
                elif rank == _RANK_FAILURE:
                    self._apply_failure(payload, clock)
                    self._next_failure += 1
                # _RANK_READY: the clock advanced to the ready-time; the
                # next iteration's admission pass seats the job.
        # Drain events due by the end of the run (same contract as the
        # scan loop: ascending time, capacity before failure at ties;
        # job-ready marks are moot once the queue is empty).
        clock = self._clock
        while event_heap and event_heap[0][0] <= clock:
            _time_ms, rank, _seq, kind, payload, epoch = heapq.heappop(event_heap)
            if rank == _RANK_CAPACITY:
                if kind in ("repair", "arrival"):
                    self._capacity_live_entries -= 1
                self._apply_capacity_event(kind, payload, clock, epoch)
            elif rank == _RANK_FAILURE:
                self._apply_failure(payload, clock)
                self._next_failure += 1
        return clock

    def _run_event_loop(self) -> float:
        """Process events until every job is terminal; returns the end clock."""
        if self._fast:
            return self._run_event_loop_fast()
        assert self._failures_sorted is not None
        failures = self._failures_sorted
        while self._pending or self._running:
            self._event_boundary()
            self._events_processed += 1
            if self._events_processed > self.config.max_events:
                raise RuntimeError(
                    f"fleet scheduler exceeded {self.config.max_events} events; "
                    "likely a scheduling livelock"
                )
            clock = self._clock
            self._admit(clock)
            if not self._pending and not self._running:
                break
            # Next-event times, tie-broken completion ≤ capacity ≤ arrival
            # ≤ failure (see the module docstring's event-ordering contract).
            infinity = float("inf")
            arrivals = [
                self._ready_ms(r) for r in self._pending if self._ready_ms(r) > clock
            ]
            t_arrival = min(arrivals) if arrivals else infinity
            t_failure = (
                max(failures[self._next_failure].time_ms, clock)
                if self._next_failure < len(failures)
                else infinity
            )
            t_capacity = (
                max(self._capacity_heap[0][0], clock) if self._capacity_heap else infinity
            )
            if self._running:
                running = min(
                    self._running.values(),
                    key=lambda rj: (rj.completion_ms, rj.record.sequence),
                )
                t_completion = running.completion_ms
            else:
                running = None
                t_completion = infinity
            if t_completion == t_capacity == t_arrival == t_failure == infinity:
                # Nothing executing and no event can ever free or add
                # capacity, so the remaining queue is unschedulable.
                # _admit normally catches this per job; this is the
                # backstop.
                for record in list(self._pending):
                    self._mark_failed(
                        record, clock, "unschedulable: no capacity and no pending events"
                    )
                continue
            if t_completion <= min(t_capacity, t_arrival, t_failure):
                self._clock = clock = t_completion
                self._complete_iteration(running, clock)
            elif t_capacity <= min(t_arrival, t_failure):
                self._clock = clock = t_capacity
                _, _, kind, device, epoch = heapq.heappop(self._capacity_heap)
                self._apply_capacity_event(kind, device, clock, epoch)
            elif t_arrival <= t_failure:
                self._clock = t_arrival  # loop re-admits at the arrival time
            else:
                self._clock = clock = t_failure
                self._apply_failure(failures[self._next_failure].device, clock)
                self._next_failure += 1
        # Events due by the end of the run but after the last job event
        # (e.g. a second device dying in the same instant that made the
        # queue unschedulable, or a repair landing exactly then) still
        # count against the cluster's capacity accounting; tie order
        # matches the main loop (capacity before failure).
        clock = self._clock
        while (self._capacity_heap and self._capacity_heap[0][0] <= clock) or (
            self._next_failure < len(failures)
            and failures[self._next_failure].time_ms <= clock
        ):
            t_capacity = self._capacity_heap[0][0] if self._capacity_heap else float("inf")
            t_failure = (
                failures[self._next_failure].time_ms
                if self._next_failure < len(failures)
                else float("inf")
            )
            if t_capacity <= t_failure:
                _, _, kind, device, epoch = heapq.heappop(self._capacity_heap)
                self._apply_capacity_event(kind, device, clock, epoch)
            else:
                self._apply_failure(failures[self._next_failure].device, clock)
                self._next_failure += 1
        return clock

    # ------------------------------------------------------------------ admission

    def _allowed_data_parallel(self, spec: JobSpec) -> int | None:
        """Largest replica count the *alive* cluster could ever host.

        Elastic jobs shrink only on capacity loss — contention for
        currently-busy devices makes a job wait, not shrink.  Capacity that
        is merely scheduled to return later does not count: a shrunk job
        starts on what is alive now and regrows at a later boundary.
        """
        alive = self.allocator.alive_count
        requested = spec.parallel.data_parallel
        if spec.gang_size(requested) <= alive:
            return requested
        if not spec.elastic:
            return None
        for data_parallel in range(requested - 1, 0, -1):
            if spec.gang_size(data_parallel) <= alive:
                return data_parallel
        return None

    def _capacity_pending(self) -> bool:
        """Whether any queued repair/arrival could still grow the alive set."""
        if self._fast:
            if self._capacity_live_entries == 0:
                return False
            return any(
                self._capacity_event_live(entry[3], entry[4], entry[5])
                for entry in self._event_heap
                if entry[1] == _RANK_CAPACITY
            )
        return any(
            self._capacity_event_live(kind, device, epoch)
            for _, _, kind, device, epoch in self._capacity_heap
        )

    def _admit(self, clock: float) -> None:
        """Admit queued jobs (policy order, backfilling) while gangs fit.

        Backfilling never steals from a *draining* higher-precedence
        waiter: once a queued job is found that does not fit but whose
        seat is being freed by boundary evictions
        (:meth:`_eviction_feasible`), jobs it preempts are barred from
        admission — otherwise an evicted victim would be backfilled right
        back onto the devices just freed for the waiter, ping-ponging
        evictions without ever seating it.

        In the bitmap core the pass is elided outright at boundaries where
        nothing admission-relevant changed since the last pass (no queue,
        free-pool, alive-set or capacity-heap mutation — policy order keys
        may drift with the clock, but an admission needs a *fit*, and the
        previous pass exhausted those), and the policy sort is skipped when
        no admissible job could fit the free pool or be declared
        unschedulable (allocation succeeds iff ``gang size ≤ free count``,
        so a scan could only have appended to ``draining`` — no side
        effects).
        """
        if self._fast:
            if not self._admit_dirty:
                return
            self._admit_dirty = False
        progressed = True
        while progressed:
            progressed = False
            admissible = [r for r in self._pending if self._ready_ms(r) <= clock]
            if self._fast:
                if not admissible:
                    return
                free_count = self.allocator.free_count
                feasible = False
                for record in admissible:
                    data_parallel = self._allowed_data_parallel(record.spec)
                    if (
                        data_parallel is None
                        or record.spec.gang_size(data_parallel) <= free_count
                    ):
                        feasible = True
                        break
                if not feasible:
                    return
            draining: list[JobRecord] = []
            for record in self.policy.order(admissible, clock):
                if any(self._preempts(waiter, record, clock) for waiter in draining):
                    continue  # freed devices are reserved for the waiter
                spec = record.spec
                data_parallel = self._allowed_data_parallel(spec)
                if data_parallel is None:
                    if self._capacity_pending():
                        # A pending repair/arrival may make the job fit; it
                        # is admitted at that event's timestamp, not failed.
                        continue
                    self._mark_failed(
                        record,
                        clock,
                        f"unschedulable: needs {spec.min_gang_size if spec.elastic else spec.gang_size(spec.parallel.data_parallel)} "
                        f"devices, only {self.allocator.alive_count} alive",
                    )
                    progressed = True
                    break
                gang = self.allocator.allocate(
                    spec.name,
                    data_parallel,
                    spec.parallel.pipeline_parallel,
                    spec.parallel.tensor_parallel,
                )
                if gang is None:
                    if self._eviction_feasible(record, clock):
                        draining.append(record)
                    continue  # busy right now — backfill with the next job
                self._pending.remove(record)
                self._pending_priority_cache = None
                self._start_attempt(record, gang, clock)
                progressed = True
                break  # queue changed; recompute policy order

    def _start_attempt(self, record: JobRecord, gang: DeviceGang, clock: float) -> None:
        """Place ``record`` on ``gang`` and execute its first iteration.

        The caller has already taken ``record`` off the pending queue (or,
        for regrowth, never requeued it) and owns ``gang``.
        """
        spec = record.spec
        record.state = JobState.RUNNING
        if record.first_admitted_ms is None:
            record.first_admitted_ms = clock
        attempt = JobAttempt(
            index=len(record.attempts),
            data_parallel=gang.data_parallel,
            devices=gang.devices,
            admitted_ms=clock,
            start_iteration=record.checkpoint.completed_iterations,
        )
        record.attempts.append(attempt)
        _FLEET_STATS["attempts_started"] += 1
        _obs_publish(
            "job_admitted",
            time_ms=clock,
            job=spec.name,
            attempt=attempt.index,
            data_parallel=gang.data_parallel,
            gang_size=gang.size,
            start_iteration=attempt.start_iteration,
        )
        try:
            execution = JobExecution(
                record,
                gang,
                planner_processes=self.config.planner_processes,
                planner_lookahead=self.config.planner_lookahead,
                planner_backend=self.config.planner_backend,
                planner_timeout_s=self.config.planner_timeout_s,
                shared_pool=self._shared_pool_handle(),
            )
        except JobPlanningError as error:
            attempt.outcome = "plan_failure"
            attempt.ended_ms = clock
            self.allocator.release(gang)
            self._retry_or_fail(record, clock, str(error), planning=True)
            return
        running = _RunningJob(record=record, gang=gang, execution=execution, attempt=attempt)
        self._running[spec.name] = running
        self._advance(running, clock)

    # ------------------------------------------------------------------ execution

    def _advance(self, running: _RunningJob, clock: float) -> None:
        """Start the job's next iteration (or finish the job)."""
        try:
            result = running.execution.step()
        except JobPlanningError as error:
            self._end_attempt(running, clock, outcome="plan_failure")
            self._retry_or_fail(running.record, clock, str(error), planning=True)
            return
        if result is None:
            self._finish_job(running, clock)
            return
        record_, _stats = result
        running.pending = result
        running.pending_degraded = running.execution.last_step_degraded
        running.iteration_started_ms = clock
        running.completion_ms = clock + record_.measured_ms
        if self._fast:
            self._completion_token += 1
            running.token = self._completion_token
            heapq.heappush(
                self._completion_heap,
                (
                    running.completion_ms,
                    running.record.sequence,
                    running.token,
                    running.record.spec.name,
                ),
            )

    def _complete_iteration(self, running: _RunningJob, clock: float) -> None:
        """Commit the in-flight iteration, then act on the boundary.

        Boundary order is *finish → evict → regrow*: a job whose epoch is
        done finishes regardless of queue pressure; otherwise a waiting
        higher-priority job may gracefully take the gang; otherwise a job
        running below its requested replica count regrows if repaired or
        arrived capacity now fits a larger gang.
        """
        assert running.pending is not None
        record_, stats = running.pending
        running.pending = None
        running.record.checkpoint.commit(
            record_,
            stats.encoder_efficiency,
            stats.decoder_efficiency,
        )
        running.attempt.iterations_completed += 1
        # A committed iteration proves planning works again: the backoff
        # streak and deadline window reset.
        running.record.planning_failure_streak = 0
        running.record.planning_failed_since_ms = None
        if running.pending_degraded:
            running.record.degraded_iterations += 1
            running.pending_degraded = False
        duration = clock - running.iteration_started_ms
        self._busy_device_ms += running.gang.size * duration
        _FLEET_STATS["iterations_committed"] += 1
        REGISTRY.histogram("fleet.iteration_ms").observe(duration)
        _obs_publish(
            "iteration_committed",
            time_ms=clock,
            job=running.record.spec.name,
            iteration=record_.iteration,
            duration_ms=duration,
        )
        if _obs_state.enabled():
            op_traces = running.execution.session.last_op_traces
            if op_traces:
                _SIM_COLLECTOR.add(
                    running.record.spec.name,
                    record_.iteration,
                    start_ms=running.iteration_started_ms,
                    replica_traces=op_traces,
                )
        for device in running.gang.devices:
            self._trace_events.append(
                TraceEvent(
                    device=device,
                    name=f"{running.record.spec.name}:{record_.iteration}",
                    start_ms=running.iteration_started_ms,
                    end_ms=clock,
                    category="compute",
                    microbatch=record_.iteration,
                )
            )
        if running.record.remaining_iterations > 0:
            if self._maybe_evict(running, clock):
                return
            if self._maybe_regrow(running, clock):
                return
        self._advance(running, clock)

    def _finish_job(self, running: _RunningJob, clock: float) -> None:
        """The attempt ran out of iterations: the job is done."""
        self._end_attempt(running, clock, outcome="finished")
        record = running.record
        record.state = JobState.FINISHED
        record.finished_ms = clock
        _FLEET_STATS["jobs_finished"] += 1
        _obs_publish("job_finished", time_ms=clock, job=record.spec.name)

    def _end_attempt(self, running: _RunningJob, clock: float, outcome: str) -> None:
        """Tear down a running attempt and release its gang.

        Every attempt that entered ``_running`` passes through here exactly
        once, whatever its outcome (finished, device failure, plan failure,
        eviction, regrowth) — ``close()`` is therefore called exactly once
        per attempt, so no private pool's workers outlive the attempt and
        no shared-pool stream stays registered after its job leaves the
        cluster.
        """
        running.execution.close()
        self._planner_workers_spawned += running.execution.planner_workers_spawned
        running.attempt.outcome = outcome
        running.attempt.ended_ms = clock
        running.pending = None
        self.allocator.release(running.gang)
        del self._running[running.record.spec.name]
        # The free pool grew (or ownership changed): re-run admission.
        self._admit_dirty = True

    # ------------------------------------------------------------------ graceful preemption

    def _eviction_feasible(self, waiter: JobRecord, clock: float) -> bool:
        """Whether boundary evictions could actually seat queued ``waiter``.

        True only when the waiter does *not* fit the free pool as-is and
        the free pool plus every lower-precedence running gang covers its
        need — the shared guard that prevents pointless evictions (at a
        boundary) and pointless device reservation (during admission).
        """
        data_parallel = self._allowed_data_parallel(waiter.spec)
        if data_parallel is None:
            return False
        need = waiter.spec.gang_size(data_parallel)
        if self.allocator.free_count >= need:
            return False  # fits without eviction; the next _admit seats it
        if self._fast and self._never_preempts:
            return False  # no running gang is ever evictable
        evictable = sum(
            other.gang.size
            for other in self._running.values()
            if self._preempts(waiter, other.record, clock)
        )
        return self.allocator.free_count + evictable >= need

    def _maybe_evict(self, running: _RunningJob, clock: float) -> bool:
        """Gracefully evict ``running`` at this boundary if the policy says a
        waiting job takes precedence and eviction can actually help
        (:meth:`_eviction_feasible`).  The victim requeues with its
        checkpoint intact and spends no retry budget (this is
        time-slicing, not a failure)."""
        victim = running.record
        if self._fast:
            if self._never_preempts:
                return False
            if (
                self._static_priority
                and self._pending_max_priority() <= victim.spec.priority
            ):
                # No queued job's (static) priority beats the victim's, so
                # no waiter can preempt it — skip the scan.
                return False
        waiting = [
            record
            for record in self._pending
            if self._ready_ms(record) <= clock
            and self._preempts(record, victim, clock)
        ]
        if not waiting:
            return False
        for waiter in self.policy.order(waiting, clock):
            if not self._eviction_feasible(waiter, clock):
                continue
            victim.evictions += 1
            self._end_attempt(running, clock, outcome="evicted")
            victim.state = JobState.PENDING
            victim.last_queued_ms = clock
            self._pending.append(victim)
            self._on_requeued(victim)
            _FLEET_STATS["evictions"] += 1
            _obs_publish(
                "job_evicted",
                time_ms=clock,
                job=victim.spec.name,
                waiter=waiter.spec.name,
            )
            return True
        return False

    def _maybe_regrow(self, running: _RunningJob, clock: float) -> bool:
        """Re-expand an elastically shrunk job at this checkpoint boundary.

        Grows to the largest replica count (up to the request) the free
        pool plus the job's own gang can host, reusing the normal
        checkpoint/resume path: the shrunk attempt ends ``"regrown"``, its
        gang is released, and a fresh attempt starts at the boundary on the
        larger gang — devices the job already holds are never lost to a
        competing admission because release and re-allocation happen within
        one scheduler event.

        A queued job the policy says preempts this one has first claim on
        the free pool: if such a waiter fits it as-is, regrowth yields and
        the next ``_admit`` seats the waiter instead — otherwise a
        lower-priority regrowth would swallow the very devices the waiter
        was about to start on (priority inversion).
        """
        record = running.record
        spec = record.spec
        if not spec.elastic:
            return False
        requested = spec.parallel.data_parallel
        current = running.gang.data_parallel
        if current >= requested:
            return False
        if running.attempt.iterations_completed < self.config.regrow_min_boundaries:
            # Hysteresis: a freshly (re)started shrunk attempt must prove
            # this many committed boundaries before it may regrow, so a
            # flapping cluster does not thrash shrink/regrow.
            return False
        for waiter in self._pending:
            if self._ready_ms(waiter) > clock or not self._preempts(
                waiter, record, clock
            ):
                continue
            data_parallel = self._allowed_data_parallel(waiter.spec)
            if (
                data_parallel is not None
                and waiter.spec.gang_size(data_parallel) <= self.allocator.free_count
            ):
                return False  # the free devices are the waiter's seat
        budget = self.allocator.free_count + running.gang.size
        target = None
        for data_parallel in range(requested, current, -1):
            if spec.gang_size(data_parallel) <= budget:
                target = data_parallel
                break
        if target is None:
            return False
        record.regrows += 1
        _FLEET_STATS["regrowths"] += 1
        _obs_publish(
            "job_regrown",
            time_ms=clock,
            job=spec.name,
            from_data_parallel=current,
            to_data_parallel=target,
        )
        self._end_attempt(running, clock, outcome="regrown")
        gang = self.allocator.allocate(
            spec.name,
            target,
            spec.parallel.pipeline_parallel,
            spec.parallel.tensor_parallel,
        )
        assert gang is not None, "regrowth allocation must fit the freed budget"
        self._start_attempt(record, gang, clock)
        return True

    # ------------------------------------------------------------------ failures / repairs

    def _apply_failure(self, device: int, clock: float) -> None:
        """A device dies: preempt the owning job (if any) mid-iteration."""
        was_dead = self.allocator.is_failed(device) or self.allocator.is_absent(device)
        gang = self.allocator.fail_device(device)
        if not was_dead:
            self._down_since[device] = clock
            self._failure_epoch[device] = self._failure_epoch.get(device, 0) + 1
            self._log_capacity(clock, "failure", device)
            if self.config.repair_delay_ms is not None:
                self._push_capacity_event(
                    clock + self.config.repair_delay_ms,
                    "repair",
                    device,
                    epoch=self._failure_epoch[device],
                )
        if gang is None:
            return  # idle, absent or already-failed device: capacity shrank
        running = self._running.get(gang.job)
        if running is None or running.gang is not gang:  # pragma: no cover - defensive
            return
        record = running.record
        record.preemptions += 1
        _obs_publish(
            "job_preempted", time_ms=clock, job=record.spec.name, device=device
        )
        self._end_attempt(running, clock, outcome="device_failure")
        self._retry_or_fail(
            record, clock, f"device {device} failed at {clock:.1f} ms mid-iteration"
        )

    def _apply_capacity_event(
        self, kind: str, device: int, clock: float, epoch: "int | None" = None
    ) -> None:
        """A repair or arrival fires: return ``device`` to the free pool.

        Stale events are no-ops: a repair for an alive device, and an
        auto-repair whose failure epoch was superseded (the device was
        repaired early and has failed again since — only the *new*
        failure's own repair may revive it).
        """
        if kind in ("planner_kill", "store_error"):
            # Planner faults ride the capacity heap; ``device`` is the count.
            self._apply_planner_fault(kind, device, clock)
            return
        if kind == "arrival":
            self.allocator.arrive_device(device)
        else:
            if epoch is not None and self._failure_epoch.get(device) != epoch:
                return  # auto-repair of an already-superseded failure
            if not self.allocator.repair_device(device):
                return  # stale repair (device alive): no-op
        down_ms = clock - self._down_since.pop(device)
        self._dead_device_ms += down_ms
        if kind == "repair":
            self._repair_durations.append(down_ms)
        self._log_capacity(clock, kind, device)

    def _apply_planner_fault(self, kind: str, count: int, clock: float) -> None:
        """A scheduled planner-side fault fires.

        ``planner_kill`` kills up to ``count`` live workers (shared pool
        first; else every running attempt's private pool in job order) —
        jobs whose pool loses all workers degrade to inline planning at
        their next step.  ``store_error`` drops the next pending plan
        payload of up to ``count`` running pooled jobs (job order), which
        surfaces as a transient :class:`PlanFailedError` on the consumer
        side and takes the normal retry/backoff path.
        """
        applied = 0
        if kind == "planner_kill":
            if self._shared_pool is not None:
                applied = self._shared_pool.kill_workers(count)
            else:
                for running in sorted(
                    self._running.values(), key=lambda rj: rj.record.sequence
                ):
                    if applied >= count:
                        break
                    applied += running.execution.kill_planner_workers(count - applied)
        else:  # store_error
            if self._shared_pool is not None:
                for running in sorted(
                    self._running.values(), key=lambda rj: rj.record.sequence
                ):
                    if applied >= count:
                        break
                    iteration = running.execution.next_pending_iteration
                    if iteration is None:
                        continue
                    if self._shared_pool.inject_plan_loss(
                        running.execution.stream_key, iteration
                    ):
                        applied += 1
        self._fault_log.append(
            {"time_ms": clock, "kind": kind, "requested": count, "applied": applied}
        )
        _FLEET_STATS["planner_faults_applied"] += applied
        _obs_publish(
            "fault_injected", time_ms=clock, fault=kind, requested=count, applied=applied
        )

    def _log_capacity(self, clock: float, event: str, device: int) -> None:
        alive = self.allocator.alive_count
        self._capacity_timeline.append(
            CapacityEvent(
                time_ms=clock,
                event=event,
                device=device,
                alive_count=alive,
            )
        )
        _FLEET_STATS[f"device_{event}s"] += 1
        REGISTRY.gauge("fleet.alive_devices").set(alive)
        _obs_publish(f"device_{event}", time_ms=clock, device=device, alive=alive)

    def _planning_backoff_delay(self, record: JobRecord) -> float:
        """Exponential backoff delay for the record's current failure streak.

        ``base × factor^(streak-1)`` capped at the max, then jittered by
        ``1 + jitter × U[0, 1)`` from the scheduler's seeded RNG (whose
        state is checkpointed, so restored runs replay the same draws).
        """
        config = self.config
        streak = max(1, record.planning_failure_streak)
        delay = config.planning_backoff_base_ms * (
            config.planning_backoff_factor ** (streak - 1)
        )
        delay = min(delay, config.planning_backoff_max_ms)
        if config.planning_backoff_jitter > 0:
            delay *= 1.0 + config.planning_backoff_jitter * self._rng.random()
        return delay

    def _retry_or_fail(
        self, record: JobRecord, clock: float, reason: str, planning: bool = False
    ) -> None:
        """Requeue the job from its checkpoint, or fail it after bounded retries.

        Planning failures (``planning=True``) additionally drive the
        backoff/deadline machinery: with ``planning_backoff_base_ms > 0``
        the re-admission is pushed back exponentially in the failure
        streak, and a job with a ``planning_deadline_ms`` burns *wall
        time* against that deadline instead of retry budget — it fails
        only when planning has not succeeded for that long (the streak
        resets on every committed iteration).
        """
        if planning:
            record.planning_failure_streak += 1
            if record.planning_failed_since_ms is None:
                record.planning_failed_since_ms = clock
            deadline = record.spec.planning_deadline_ms
            if (
                deadline is not None
                and clock - record.planning_failed_since_ms >= deadline
            ):
                self._mark_failed(
                    record,
                    clock,
                    f"planning deadline exceeded ({deadline:g} ms, "
                    f"{record.planning_failure_streak} consecutive failures): {reason}",
                    dequeue=False,
                )
                return
            if self.config.planning_backoff_base_ms > 0:
                record.not_before_ms = clock + self._planning_backoff_delay(record)
                record.planning_retries += 1
                if deadline is not None:
                    # Deadline mode: wall time, not retry budget, bounds
                    # the streak.
                    record.state = JobState.PENDING
                    record.last_queued_ms = clock
                    self._pending.append(record)
                    self._on_requeued(record)
                    return
        record.retries += 1
        if record.retries > record.spec.max_retries:
            self._mark_failed(
                record,
                clock,
                f"retries exhausted ({record.spec.max_retries}): {reason}",
                dequeue=False,
            )
            return
        record.state = JobState.PENDING
        record.last_queued_ms = clock
        self._pending.append(record)
        self._on_requeued(record)

    def _mark_failed(
        self, record: JobRecord, clock: float, reason: str, dequeue: bool = True
    ) -> None:
        """Terminal failure: the job keeps its checkpoint but never runs again."""
        if dequeue and record in self._pending:
            self._pending.remove(record)
        self._pending_priority_cache = None
        self._admit_dirty = True
        record.state = JobState.FAILED
        record.failure_reason = reason
        record.finished_ms = clock
        _FLEET_STATS["jobs_failed"] += 1
        _obs_publish("job_failed", time_ms=clock, job=record.spec.name, reason=reason)

    # ------------------------------------------------------------------ checkpoint / restore

    def checkpoint(self) -> "dict[str, Any]":
        """JSON-safe snapshot of the full scheduler state at this boundary.

        Only valid at an event boundary — from the ``on_event`` hook or a
        ``checkpoint_sink`` — where no iteration result is half-applied.
        See :mod:`repro.fleet.checkpoint` for the format and the restore
        invariants.
        """
        from repro.fleet.checkpoint import snapshot_scheduler

        if not self._ran:
            raise RuntimeError(
                "checkpoint() is only valid at an event boundary inside "
                "run() (use the on_event hook or checkpoint_sink)"
            )
        return snapshot_scheduler(self)

    @classmethod
    def restore(
        cls,
        snapshot: "dict[str, Any]",
        topology: ClusterTopology,
        specs: "dict[str, JobSpec]",
        config: "FleetConfig | None" = None,
    ) -> "FleetScheduler":
        """Rebuild a scheduler from a :meth:`checkpoint` snapshot.

        ``specs`` supplies the (non-serialisable) job specs by name —
        planner factories, cost models and trainer configs live there.
        Calling :meth:`run` on the restored scheduler resumes the event
        loop deterministically: the finished run's per-job records and
        report are bit-identical to the uninterrupted run's (modulo
        wall-clock planning times and, in pooled mode, the respawned
        worker count).
        """
        from repro.fleet.checkpoint import restore_scheduler

        scheduler = restore_scheduler(snapshot, topology, specs, config=config, cls=cls)
        _FLEET_STATS["restores"] += 1
        _obs_publish("checkpoint_restored", time_ms=scheduler._clock)
        return scheduler

    def _resume_attempt(
        self,
        record: JobRecord,
        gang: DeviceGang,
        started_ms: float,
        completion_ms: float,
    ) -> None:
        """Re-materialise a snapshotted running attempt at restore time.

        The attempt's :class:`JobAttempt` entry already exists (appended by
        the original ``_start_attempt``), so only the execution object is
        rebuilt.  Determinism rests on the committed-iteration count: the
        rebuilt session fast-forwards its noise RNG past exactly the
        committed draws, so re-stepping regenerates the snapshot's
        in-flight iteration bit-identically — including its completion
        time, which is restored from the snapshot as a cross-check.
        """
        spec = record.spec
        try:
            execution = JobExecution(
                record,
                gang,
                planner_processes=self.config.planner_processes,
                planner_lookahead=self.config.planner_lookahead,
                planner_backend=self.config.planner_backend,
                planner_timeout_s=self.config.planner_timeout_s,
                shared_pool=self._shared_pool_handle(),
            )
        except JobPlanningError as error:
            attempt = record.attempts[-1]
            attempt.outcome = "plan_failure"
            attempt.ended_ms = self._clock
            self.allocator.release(gang)
            self._retry_or_fail(record, self._clock, str(error), planning=True)
            return
        running = _RunningJob(
            record=record,
            gang=gang,
            execution=execution,
            attempt=record.attempts[-1],
        )
        self._running[spec.name] = running
        self._advance(running, self._clock)
        if spec.name in self._running and running.pending is not None:
            # The regenerated in-flight iteration keeps the snapshot's
            # start/completion stamps (it began before the checkpoint).
            running.iteration_started_ms = started_ms
            running.completion_ms = completion_ms
            if self._fast:
                # Supersede the entry _advance pushed for the regenerated
                # iteration with one carrying the snapshot's stamp.
                self._completion_token += 1
                running.token = self._completion_token
                heapq.heappush(
                    self._completion_heap,
                    (completion_ms, record.sequence, running.token, spec.name),
                )

    # ------------------------------------------------------------------ reporting

    def _build_report(self, clock: float) -> FleetReport:
        self.allocator.check_consistent()
        assert not self._running, "jobs still running after the event loop"
        dead_device_ms = self._dead_device_ms + sum(
            clock - since for since in self._down_since.values()
        )
        jobs = sorted(self.jobs.values(), key=lambda r: r.sequence)
        return FleetReport(
            policy=self.policy.name,
            jobs=[summarize_job(record) for record in jobs],
            makespan_ms=clock,
            busy_device_ms=self._busy_device_ms,
            num_devices=self.topology.num_gpus,
            failed_devices=sorted(self.allocator.failed_devices),
            absent_devices=sorted(self.allocator.absent_devices),
            dead_device_ms=dead_device_ms,
            capacity_timeline=list(self._capacity_timeline),
            trace=ExecutionTrace(events=list(self._trace_events)),
            planner_workers_spawned=self._planner_workers_spawned,
            repair_durations_ms=list(self._repair_durations),
            fault_log=list(self._fault_log),
            events_processed=self._events_processed,
        )

    def _capacity_heap_snapshot(self) -> "list[list[Any]]":
        """Queued capacity events in canonical ``(time, seq)`` order.

        Both cores serialize the same neutral 5-tuple layout, so a
        snapshot taken under one core restores under the other.
        """
        if self._fast:
            entries = [
                (entry[0], entry[2], entry[3], entry[4], entry[5])
                for entry in self._event_heap
                if entry[1] == _RANK_CAPACITY
            ]
        else:
            entries = list(self._capacity_heap)
        return [list(entry) for entry in sorted(entries, key=lambda e: (e[0], e[1]))]
