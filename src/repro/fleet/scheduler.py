"""Multi-job elastic training runtime over one shared simulated cluster.

The :class:`FleetScheduler` runs many training jobs concurrently on the
devices of a single :class:`~repro.cluster.topology.ClusterTopology`:

* **Admission** — queued jobs are ordered by a configurable policy (FIFO or
  shortest-remaining-work) and gang-scheduled all-or-nothing onto
  ``dp × pp × tp`` device groups, with backfilling: a job that does not fit
  is skipped, not a barrier.
* **Execution** — each admitted job's iterations run through the existing
  planner/executor stack (optionally via the process-backed
  :class:`~repro.runtime.planner_pool.PlannerPool` and its instruction
  store); the fleet clock advances event by event, one committed iteration
  at a time, so concurrent jobs interleave exactly as their simulated
  iteration times dictate.
* **Elastic failure path** — an injected device failure interrupts the
  owning job mid-iteration: the in-flight iteration is discarded, the gang
  is released (minus the dead device), and the job re-enters the queue to
  be re-planned from its checkpointed iteration boundary — on a smaller
  replica group when the alive cluster can no longer host the requested
  gang.  Planning failures (including
  :class:`~repro.instructions.store.PlanFailedError` markers from pool
  workers) take the same path.  Both count against the job's bounded retry
  budget; exhaustion marks the job *failed*, never hung.

Determinism: with fixed specs, failure schedule and policy, the run is a
pure function of its inputs — iteration times come from the seeded
simulated executors and ties between simultaneous events are broken by
(completion before failure, then submission order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import ClusterTopology
from repro.fleet.gang import DeviceGang, GangAllocator
from repro.instructions.store import InstructionStore
from repro.runtime.planner_pool import PlannerPool
from repro.fleet.job import JobAttempt, JobRecord, JobSpec, JobState
from repro.fleet.metrics import FleetReport, summarize_job
from repro.fleet.policies import SchedulingPolicy, make_policy
from repro.fleet.session import JobExecution, JobPlanningError
from repro.simulator.trace import ExecutionTrace, TraceEvent
from repro.training.throughput import IterationRecord


@dataclass(frozen=True)
class DeviceFailure:
    """A scheduled device failure (fleet-clock time, global device index)."""

    time_ms: float
    device: int


@dataclass
class FleetConfig:
    """Tunable knobs of the fleet scheduler.

    Attributes:
        policy: Admission ordering — ``"fifo"``, ``"srw"`` or a
            :class:`~repro.fleet.policies.SchedulingPolicy` instance.
        planner_processes: When > 0, job attempts plan through a planner
            pool with that many worker processes.
        shared_planner_pool: When True (and ``planner_processes > 0``), one
            fleet-wide pool — the paper's CPU-side *planning cluster* —
            serves every job's iterations through one shared
            :class:`~repro.instructions.store.InstructionStore`: its
            workers are spawned once for the whole run instead of once per
            job attempt, and each attempt gets its own store namespace.
            When False each attempt spawns a private pool (the pre-cluster
            behaviour, kept as a fallback mode).  Plans are bit-identical
            either way.
        planner_lookahead: Plan-ahead window of the pooled mode (per job
            stream in shared mode).
        planner_backend: Pool backend (``"process"`` or ``"thread"``).
        planner_timeout_s: Per-iteration plan wait bound of the pooled mode.
        max_events: Safety valve on processed scheduler events.
    """

    policy: "str | SchedulingPolicy" = "fifo"
    planner_processes: int = 0
    shared_planner_pool: bool = False
    planner_lookahead: int = 4
    planner_backend: str = "process"
    planner_timeout_s: float = 600.0
    max_events: int = 1_000_000


@dataclass
class _RunningJob:
    """Scheduler-side state of one admitted attempt."""

    record: JobRecord
    gang: DeviceGang
    execution: JobExecution
    attempt: JobAttempt
    iteration_started_ms: float = 0.0
    completion_ms: float = 0.0
    #: The in-flight iteration's (record, stats); committed at completion,
    #: discarded on preemption.
    pending: "tuple[IterationRecord, object] | None" = None


class FleetScheduler:
    """Admits, runs, preempts and retries jobs on a shared cluster.

    Args:
        topology: The shared cluster.
        config: Fleet configuration.
    """

    def __init__(self, topology: ClusterTopology, config: FleetConfig | None = None) -> None:
        self.topology = topology
        self.config = config or FleetConfig()
        self.policy = make_policy(self.config.policy)
        self.allocator = GangAllocator(topology)
        self.jobs: dict[str, JobRecord] = {}
        self._pending: list[JobRecord] = []
        self._running: dict[str, _RunningJob] = {}
        self._failures: list[DeviceFailure] = []
        self._trace_events: list[TraceEvent] = []
        self._busy_device_ms = 0.0
        self._ran = False
        #: The fleet-wide planning cluster (shared mode only): one store,
        #: one pool, spawned lazily on the first pooled attempt and stopped
        #: exactly once when run() ends.
        self.store: InstructionStore | None = None
        self._shared_pool: PlannerPool | None = None
        self._planner_workers_spawned = 0

    # ------------------------------------------------------------------ planning cluster

    @property
    def _pooled(self) -> bool:
        return self.config.planner_processes > 0

    def _shared_pool_handle(self) -> PlannerPool | None:
        """The fleet-wide pool (started), or ``None`` outside shared mode."""
        if not (self._pooled and self.config.shared_planner_pool):
            return None
        if self._shared_pool is None:
            self.store = InstructionStore()
            self._shared_pool = PlannerPool(
                store=self.store,
                num_workers=self.config.planner_processes,
                lookahead=self.config.planner_lookahead,
                backend=self.config.planner_backend,
            )
            self._shared_pool.start()
            self._planner_workers_spawned += self._shared_pool.num_workers
        return self._shared_pool

    def _stop_shared_pool(self) -> None:
        if self._shared_pool is not None:
            self._shared_pool.stop()

    # ------------------------------------------------------------------ submission

    def submit(self, spec: JobSpec) -> JobRecord:
        """Queue a job; returns its live record."""
        if self._ran:
            raise RuntimeError("cannot submit jobs after run()")
        if spec.name in self.jobs:
            raise ValueError(f"duplicate job name {spec.name!r}")
        if spec.parallel.pipeline_parallel != spec.cost_model.num_stages:
            raise ValueError(
                f"job {spec.name}: parallel shape {spec.parallel.describe()} does not "
                f"match the cost model's {spec.cost_model.num_stages} pipeline stages"
            )
        record = JobRecord(spec=spec, sequence=len(self.jobs))
        self.jobs[spec.name] = record
        self._pending.append(record)
        return record

    def inject_device_failure(self, time_ms: float, device: int) -> None:
        """Schedule ``device`` to fail at fleet-clock ``time_ms``."""
        if self._ran:
            raise RuntimeError("cannot inject failures after run()")
        if time_ms < 0:
            raise ValueError(f"time_ms must be >= 0, got {time_ms}")
        if not 0 <= device < self.topology.num_gpus:
            raise ValueError(
                f"device {device} out of range [0, {self.topology.num_gpus})"
            )
        self._failures.append(DeviceFailure(time_ms=time_ms, device=device))

    # ------------------------------------------------------------------ event loop

    def run(self) -> FleetReport:
        """Process every submitted job to a terminal state; returns the report."""
        if self._ran:
            raise RuntimeError("run() may only be called once")
        self._ran = True
        try:
            clock = self._run_event_loop()
        finally:
            # Pool lifecycle is exactly-once even when the event loop dies
            # unexpectedly: every still-running attempt's planning resources
            # are released (its stream retired / its private pool stopped),
            # then the planning cluster itself is torn down.
            for running in list(self._running.values()):
                running.execution.close()
            self._stop_shared_pool()
        return self._build_report(clock)

    def _run_event_loop(self) -> float:
        """Process events until every job is terminal; returns the end clock."""
        failures = sorted(self._failures, key=lambda f: (f.time_ms, f.device))
        next_failure = 0
        clock = 0.0
        events = 0
        while self._pending or self._running:
            events += 1
            if events > self.config.max_events:
                raise RuntimeError(
                    f"fleet scheduler exceeded {self.config.max_events} events; "
                    "likely a scheduling livelock"
                )
            self._admit(clock)
            if not self._pending and not self._running:
                break
            # Next-event times.  Tie-breaking: a completion at the exact
            # same clock as a failure or arrival commits first (the
            # iteration finished before the device died); an arrival ties
            # ahead of a failure (the job is admitted, then preempted).
            infinity = float("inf")
            arrivals = [
                r.spec.submit_time_ms for r in self._pending if r.spec.submit_time_ms > clock
            ]
            t_arrival = min(arrivals) if arrivals else infinity
            t_failure = (
                max(failures[next_failure].time_ms, clock)
                if next_failure < len(failures)
                else infinity
            )
            if self._running:
                running = min(
                    self._running.values(),
                    key=lambda rj: (rj.completion_ms, rj.record.sequence),
                )
                t_completion = running.completion_ms
            else:
                running = None
                t_completion = infinity
            if t_completion == t_arrival == t_failure == infinity:
                # Nothing executing and no event can ever free capacity
                # (failures only shrink it), so the remaining queue is
                # unschedulable.  _admit normally catches this per job;
                # this is the backstop.
                for record in list(self._pending):
                    self._mark_failed(
                        record, clock, "unschedulable: no capacity and no pending events"
                    )
                continue
            if t_completion <= t_arrival and t_completion <= t_failure:
                clock = t_completion
                self._complete_iteration(running, clock)
            elif t_arrival <= t_failure:
                clock = t_arrival  # loop re-admits at the arrival time
            else:
                clock = t_failure
                self._apply_failure(failures[next_failure].device, clock)
                next_failure += 1
        # Failures due by the end of the run but after the last job event
        # (e.g. a second device dying in the same instant that made the
        # queue unschedulable) still count against the cluster.
        while next_failure < len(failures) and failures[next_failure].time_ms <= clock:
            self._apply_failure(failures[next_failure].device, clock)
            next_failure += 1
        return clock

    # ------------------------------------------------------------------ admission

    def _allowed_data_parallel(self, spec: JobSpec) -> int | None:
        """Largest replica count the *alive* cluster could ever host.

        Elastic jobs shrink only on permanent capacity loss — contention
        for currently-busy devices makes a job wait, not shrink.
        """
        alive = self.allocator.alive_count
        requested = spec.parallel.data_parallel
        if spec.gang_size(requested) <= alive:
            return requested
        if not spec.elastic:
            return None
        for data_parallel in range(requested - 1, 0, -1):
            if spec.gang_size(data_parallel) <= alive:
                return data_parallel
        return None

    def _admit(self, clock: float) -> None:
        """Admit queued jobs (policy order, backfilling) while gangs fit."""
        progressed = True
        while progressed:
            progressed = False
            admissible = [r for r in self._pending if r.spec.submit_time_ms <= clock]
            for record in self.policy.order(admissible, clock):
                spec = record.spec
                data_parallel = self._allowed_data_parallel(spec)
                if data_parallel is None:
                    self._mark_failed(
                        record,
                        clock,
                        f"unschedulable: needs {spec.min_gang_size if spec.elastic else spec.gang_size(spec.parallel.data_parallel)} "
                        f"devices, only {self.allocator.alive_count} alive",
                    )
                    progressed = True
                    break
                gang = self.allocator.allocate(
                    spec.name,
                    data_parallel,
                    spec.parallel.pipeline_parallel,
                    spec.parallel.tensor_parallel,
                )
                if gang is None:
                    continue  # busy right now — backfill with the next job
                self._start_attempt(record, gang, clock)
                progressed = True
                break  # queue changed; recompute policy order

    def _start_attempt(self, record: JobRecord, gang: DeviceGang, clock: float) -> None:
        """Place ``record`` on ``gang`` and execute its first iteration."""
        spec = record.spec
        self._pending.remove(record)
        record.state = JobState.RUNNING
        if record.first_admitted_ms is None:
            record.first_admitted_ms = clock
        attempt = JobAttempt(
            index=len(record.attempts),
            data_parallel=gang.data_parallel,
            devices=gang.devices,
            admitted_ms=clock,
            start_iteration=record.checkpoint.completed_iterations,
        )
        record.attempts.append(attempt)
        try:
            execution = JobExecution(
                record,
                gang,
                planner_processes=self.config.planner_processes,
                planner_lookahead=self.config.planner_lookahead,
                planner_backend=self.config.planner_backend,
                planner_timeout_s=self.config.planner_timeout_s,
                shared_pool=self._shared_pool_handle(),
            )
        except JobPlanningError as error:
            attempt.outcome = "plan_failure"
            attempt.ended_ms = clock
            self.allocator.release(gang)
            self._retry_or_fail(record, clock, str(error))
            return
        running = _RunningJob(record=record, gang=gang, execution=execution, attempt=attempt)
        self._running[spec.name] = running
        self._advance(running, clock)

    # ------------------------------------------------------------------ execution

    def _advance(self, running: _RunningJob, clock: float) -> None:
        """Start the job's next iteration (or finish the job)."""
        try:
            result = running.execution.step()
        except JobPlanningError as error:
            self._end_attempt(running, clock, outcome="plan_failure")
            self._retry_or_fail(running.record, clock, str(error))
            return
        if result is None:
            self._finish_job(running, clock)
            return
        record_, _stats = result
        running.pending = result
        running.iteration_started_ms = clock
        running.completion_ms = clock + record_.measured_ms

    def _complete_iteration(self, running: _RunningJob, clock: float) -> None:
        """Commit the in-flight iteration at its completion time."""
        assert running.pending is not None
        record_, stats = running.pending
        running.pending = None
        running.record.checkpoint.commit(
            record_,
            stats.encoder_efficiency,
            stats.decoder_efficiency,
        )
        running.attempt.iterations_completed += 1
        duration = clock - running.iteration_started_ms
        self._busy_device_ms += running.gang.size * duration
        for device in running.gang.devices:
            self._trace_events.append(
                TraceEvent(
                    device=device,
                    name=f"{running.record.spec.name}:{record_.iteration}",
                    start_ms=running.iteration_started_ms,
                    end_ms=clock,
                    category="compute",
                    microbatch=record_.iteration,
                )
            )
        self._advance(running, clock)

    def _finish_job(self, running: _RunningJob, clock: float) -> None:
        """The attempt ran out of iterations: the job is done."""
        self._end_attempt(running, clock, outcome="finished")
        record = running.record
        record.state = JobState.FINISHED
        record.finished_ms = clock

    def _end_attempt(self, running: _RunningJob, clock: float, outcome: str) -> None:
        """Tear down a running attempt and release its gang.

        Every attempt that entered ``_running`` passes through here exactly
        once, whatever its outcome (finished, device failure, plan failure)
        — ``close()`` is therefore called exactly once per attempt, so no
        private pool's workers outlive the attempt and no shared-pool
        stream stays registered after its job leaves the cluster.
        """
        running.execution.close()
        self._planner_workers_spawned += running.execution.planner_workers_spawned
        running.attempt.outcome = outcome
        running.attempt.ended_ms = clock
        running.pending = None
        self.allocator.release(running.gang)
        del self._running[running.record.spec.name]

    # ------------------------------------------------------------------ failures

    def _apply_failure(self, device: int, clock: float) -> None:
        """A device dies: preempt the owning job (if any) mid-iteration."""
        gang = self.allocator.fail_device(device)
        if gang is None:
            return  # idle or already-failed device: capacity just shrank
        running = self._running.get(gang.job)
        if running is None or running.gang is not gang:  # pragma: no cover - defensive
            return
        record = running.record
        record.preemptions += 1
        self._end_attempt(running, clock, outcome="device_failure")
        self._retry_or_fail(
            record, clock, f"device {device} failed at {clock:.1f} ms mid-iteration"
        )

    def _retry_or_fail(self, record: JobRecord, clock: float, reason: str) -> None:
        """Requeue the job from its checkpoint, or fail it after bounded retries."""
        record.retries += 1
        if record.retries > record.spec.max_retries:
            self._mark_failed(
                record,
                clock,
                f"retries exhausted ({record.spec.max_retries}): {reason}",
                dequeue=False,
            )
            return
        record.state = JobState.PENDING
        self._pending.append(record)

    def _mark_failed(
        self, record: JobRecord, clock: float, reason: str, dequeue: bool = True
    ) -> None:
        """Terminal failure: the job keeps its checkpoint but never runs again."""
        if dequeue and record in self._pending:
            self._pending.remove(record)
        record.state = JobState.FAILED
        record.failure_reason = reason
        record.finished_ms = clock

    # ------------------------------------------------------------------ reporting

    def _build_report(self, clock: float) -> FleetReport:
        self.allocator.check_consistent()
        assert not self._running, "jobs still running after the event loop"
        jobs = sorted(self.jobs.values(), key=lambda r: r.sequence)
        return FleetReport(
            policy=self.policy.name,
            jobs=[summarize_job(record) for record in jobs],
            makespan_ms=clock,
            busy_device_ms=self._busy_device_ms,
            num_devices=self.topology.num_gpus,
            failed_devices=sorted(self.allocator.failed_devices),
            trace=ExecutionTrace(events=list(self._trace_events)),
            planner_workers_spawned=self._planner_workers_spawned,
        )
