"""Per-attempt job execution: stepping a training session under fleet control.

A :class:`JobExecution` owns one attempt of one job on an allocated gang.
It builds the attempt's planner for the gang's (possibly shrunk) replica
count, constructs a :class:`~repro.training.trainer.TrainingSession` resumed
at the job's checkpoint boundary, and exposes the epoch one iteration at a
time so the fleet clock can interleave jobs and inject failures at
iteration granularity.

Planning can run inline or through the existing process-backed
:class:`~repro.runtime.planner_pool.PlannerPool` (plans travel through the
pool's :class:`~repro.instructions.store.InstructionStore` exactly as in the
single-job runtime).  Either way, every planning failure — an
out-of-memory plan, a DP partition error, or a
:class:`~repro.instructions.store.PlanFailedError` marker pushed by a pool
worker — surfaces as a :class:`JobPlanningError` within one step, which the
scheduler converts into a bounded job-level retry instead of a hang.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.batching.metrics import PaddingStats
from repro.core.dp_solver import PartitionError
from repro.core.recomputation import OutOfMemoryError
from repro.instructions.store import PlanFailedError
from repro.runtime.planner_pool import PlannerPool
from repro.schedule.cyclic import ScheduleDeadlockError
from repro.training.throughput import IterationRecord
from repro.training.trainer import TrainingSession

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.fleet.gang import DeviceGang
    from repro.fleet.job import JobRecord

#: Exceptions that mean "this attempt cannot produce a plan" (as opposed to
#: programming errors, which should propagate).
_PLANNING_ERRORS = (PlanFailedError, OutOfMemoryError, PartitionError, ScheduleDeadlockError)


class JobPlanningError(RuntimeError):
    """Planning for a job attempt failed; the scheduler retries or fails the job."""


class JobExecution:
    """One attempt of a job, stepped iteration by iteration.

    Args:
        record: The job being attempted (checkpoint decides the resume point).
        gang: The allocated device gang (its ``data_parallel`` sizes the
            planner).
        planner_processes: When > 0, plan through a
            :class:`~repro.runtime.planner_pool.PlannerPool` with that many
            workers (started lazily on the first step).
        planner_lookahead: Plan-ahead window of the pooled mode.
        planner_backend: Pool backend (``"process"`` or ``"thread"``).
        planner_timeout_s: Per-iteration wait bound of the pooled mode.

    Raises:
        JobPlanningError: If the attempt's planner cannot even be built
            (e.g. static memory exceeds the device under this gang shape).
    """

    def __init__(
        self,
        record: "JobRecord",
        gang: "DeviceGang",
        planner_processes: int = 0,
        planner_lookahead: int = 4,
        planner_backend: str = "process",
        planner_timeout_s: float = 600.0,
    ) -> None:
        spec = record.spec
        self.job_name = spec.name
        self.start_iteration = record.checkpoint.completed_iterations
        self._timeout_s = planner_timeout_s
        try:
            planner = spec.build_planner(gang.data_parallel)
        except _PLANNING_ERRORS as error:
            raise JobPlanningError(
                f"job {spec.name}: cannot build planner for dp={gang.data_parallel}: {error}"
            ) from error
        self.session = TrainingSession(
            planner,
            spec.samples,
            global_batch_tokens=spec.global_batch_tokens,
            config=spec.trainer_config(self.start_iteration),
            system_name=spec.name,
        )
        self.minibatches = self.session.epoch_minibatches()
        self._position = 0
        self._pool: PlannerPool | None = None
        self._pool_started = False
        if planner_processes > 0 and self.minibatches:
            self._pool = PlannerPool(
                planner=planner,
                minibatches=[mb.samples for mb in self.minibatches],
                num_workers=planner_processes,
                lookahead=planner_lookahead,
                backend=planner_backend,
            )

    @property
    def total_iterations(self) -> int:
        """Last iteration index this attempt will reach (epoch-bounded)."""
        return self.start_iteration + len(self.minibatches)

    def step(self) -> "tuple[IterationRecord, PaddingStats] | None":
        """Plan and execute the next iteration.

        Returns:
            The iteration's record and padding statistics, or ``None`` when
            the attempt has no iterations left.

        Raises:
            JobPlanningError: If planning the iteration failed (including a
                pool worker's failure marker or a pooled-planning timeout).
        """
        if self._position >= len(self.minibatches):
            return None
        minibatch = self.minibatches[self._position]
        try:
            if self._pool is not None:
                if not self._pool_started:
                    self._pool.start()
                    self._pool_started = True
                # The pool keys tasks by position in its mini-batch list,
                # not by absolute iteration index (they differ on resume).
                payload = self._pool.wait_payload(self._position, timeout=self._timeout_s)
                record, stats = self.session.record_from_payload(minibatch.index, payload)
                self._pool.notify_consumed(self._position)
            else:
                record = self.session.run_iteration(minibatch)
                stats = self.session.last_padding_stats
        except _PLANNING_ERRORS as error:
            raise JobPlanningError(
                f"job {self.job_name}: planning failed at iteration {minibatch.index}: {error}"
            ) from error
        except TimeoutError as error:
            raise JobPlanningError(
                f"job {self.job_name}: no plan for iteration {minibatch.index} "
                f"within {self._timeout_s:.1f}s: {error}"
            ) from error
        self._position += 1
        return record, stats

    def close(self) -> None:
        """Stop the planner pool (idempotent); abandoned plans are dropped."""
        if self._pool is not None and self._pool_started:
            self._pool.stop()
            self._pool_started = False
            self._pool = None
