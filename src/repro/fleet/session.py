"""Per-attempt job execution: stepping a training session under fleet control.

A :class:`JobExecution` owns one attempt of one job on an allocated gang.
It builds the attempt's planner for the gang's (possibly shrunk) replica
count, constructs a :class:`~repro.training.trainer.TrainingSession` resumed
at the job's checkpoint boundary, and exposes the epoch one iteration at a
time so the fleet clock can interleave jobs and inject failures at
iteration granularity.

Planning can run inline, through a private per-attempt
:class:`~repro.runtime.planner_pool.PlannerPool`, or — the paper's
"planning cluster" — through a **fleet-wide shared pool** owned by the
scheduler: the attempt registers a uniquely named job stream
(``submit_job``), its plans land in the shared
:class:`~repro.instructions.store.InstructionStore` under
``(job, iteration, replica)`` keys, and :meth:`JobExecution.close` retires
exactly that stream (draining only its queued tasks) so a preemption never
perturbs co-tenant jobs.

``close()`` is the single teardown contract for *every* way an attempt can
end — finishing its epoch, a mid-iteration device failure, a planning
failure, a graceful priority eviction or an elastic regrowth at an
iteration boundary — and it is idempotent; the scheduler guarantees it runs
exactly once per attempt.  Either way, every planning failure — an
out-of-memory plan, a DP partition error, or a
:class:`~repro.instructions.store.PlanFailedError` marker pushed by a pool
worker — surfaces as a :class:`JobPlanningError` within one step, which the
scheduler converts into a bounded job-level retry instead of a hang.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.batching.metrics import PaddingStats
from repro.core.dp_solver import PartitionError
from repro.core.recomputation import OutOfMemoryError
from repro.instructions.store import PlanFailedError
from repro.obs.spans import span as _span
from repro.runtime.planner_pool import PlannerPool
from repro.schedule.cyclic import ScheduleDeadlockError
from repro.training.throughput import IterationRecord
from repro.training.trainer import TrainingSession

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.fleet.gang import DeviceGang
    from repro.fleet.job import JobRecord

#: Exceptions that mean "this attempt cannot produce a plan" (as opposed to
#: programming errors, which should propagate).
_PLANNING_ERRORS = (PlanFailedError, OutOfMemoryError, PartitionError, ScheduleDeadlockError)


class JobPlanningError(RuntimeError):
    """Planning for a job attempt failed; the scheduler retries or fails the job."""


class JobExecution:
    """One attempt of a job, stepped iteration by iteration.

    Args:
        record: The job being attempted (checkpoint decides the resume point).
        gang: The allocated device gang (its ``data_parallel`` sizes the
            planner).
        planner_processes: When > 0, plan through a
            :class:`~repro.runtime.planner_pool.PlannerPool` with that many
            workers — a private pool started lazily on the first step, or
            the ``shared_pool`` if one is given.
        planner_lookahead: Plan-ahead window of the pooled mode.
        planner_backend: Pool backend (``"process"`` or ``"thread"``);
            ignored when ``shared_pool`` is given (the pool was built with
            its own backend).
        planner_timeout_s: Per-iteration wait bound of the pooled mode.
        shared_pool: The fleet-wide planning cluster.  When set (and
            ``planner_processes > 0``) the attempt registers a uniquely
            named job stream on it instead of spawning a private pool —
            worker spawn is amortised across every job of the fleet.

    Raises:
        JobPlanningError: If the attempt's planner cannot even be built
            (e.g. static memory exceeds the device under this gang shape).
    """

    def __init__(
        self,
        record: "JobRecord",
        gang: "DeviceGang",
        planner_processes: int = 0,
        planner_lookahead: int = 4,
        planner_backend: str = "process",
        planner_timeout_s: float = 600.0,
        shared_pool: PlannerPool | None = None,
    ) -> None:
        spec = record.spec
        self.job_name = spec.name
        self.start_iteration = record.checkpoint.completed_iterations
        self._timeout_s = planner_timeout_s
        try:
            planner = spec.build_planner(gang.data_parallel)
        except _PLANNING_ERRORS as error:
            raise JobPlanningError(
                f"job {spec.name}: cannot build planner for dp={gang.data_parallel}: {error}"
            ) from error
        self.session = TrainingSession(
            planner,
            spec.samples,
            global_batch_tokens=spec.global_batch_tokens,
            config=spec.trainer_config(self.start_iteration),
            system_name=spec.name,
        )
        self.minibatches = self.session.epoch_minibatches()
        self._position = 0
        self._pool: PlannerPool | None = None
        self._pool_started = False
        self._workers_spawned = 0
        self._shared_pool: PlannerPool | None = None
        #: Sticky degradation latch: once every worker of the attempt's
        #: pool is dead, the attempt plans inline for the rest of its life
        #: (pooled and inline plans are bit-identical, so only timing
        #: accounting — not results — can tell the difference).
        self._degraded = False
        #: Whether the most recent successful step() planned through the
        #: degraded inline fallback; the scheduler folds this into the
        #: record's ``degraded_iterations`` when the iteration commits.
        self.last_step_degraded = False
        #: Stream key on the shared pool — unique per attempt, so a retried
        #: attempt's stream can never receive (or be poisoned by) a dead
        #: attempt's late results or stale failure markers.
        self._stream_key: str | None = None
        self._stream_retired = False
        if planner_processes > 0 and self.minibatches:
            if shared_pool is not None:
                self._shared_pool = shared_pool
                self._stream_key = f"{spec.name}#a{len(record.attempts)}"
                shared_pool.submit_job(
                    self._stream_key,
                    planner,
                    [mb.samples for mb in self.minibatches],
                    start=self.start_iteration,
                    lookahead=planner_lookahead,
                )
            else:
                self._pool = PlannerPool(
                    planner=planner,
                    minibatches=[mb.samples for mb in self.minibatches],
                    num_workers=planner_processes,
                    lookahead=planner_lookahead,
                    backend=planner_backend,
                    start_iteration=self.start_iteration,
                )

    @property
    def total_iterations(self) -> int:
        """Last iteration index this attempt will reach (epoch-bounded)."""
        return self.start_iteration + len(self.minibatches)

    @property
    def planner_workers_spawned(self) -> int:
        """Workers this attempt's *private* pool spawned (0 in shared mode)."""
        return self._workers_spawned

    @property
    def stream_key(self) -> str | None:
        """This attempt's stream name on the shared pool (``None`` otherwise)."""
        return self._stream_key

    @property
    def next_pending_iteration(self) -> int | None:
        """Absolute index of the next iteration to plan/execute, if any."""
        if self._position >= len(self.minibatches):
            return None
        return self.minibatches[self._position].index

    def kill_planner_workers(self, count: int) -> int:
        """Kill up to ``count`` of this attempt's *private* pool workers.

        Returns the number actually killed (0 for inline or shared-pool
        attempts — the scheduler kills shared workers on the pool itself).
        """
        if self._pool is not None and self._pool_started:
            return self._pool.kill_workers(count)
        return 0

    def step(self) -> "tuple[IterationRecord, PaddingStats] | None":
        """Plan and execute the next iteration.

        Returns:
            The iteration's record and padding statistics, or ``None`` when
            the attempt has no iterations left.

        Raises:
            JobPlanningError: If planning the iteration failed (including a
                pool worker's failure marker or a pooled-planning timeout).
        """
        if self._position >= len(self.minibatches):
            return None
        minibatch = self.minibatches[self._position]
        with _span("job.step", job=self.job_name, iteration=minibatch.index):
            return self._step_minibatch(minibatch)

    def _step_minibatch(
        self, minibatch
    ) -> "tuple[IterationRecord, PaddingStats] | None":
        degraded = False
        try:
            if self._shared_pool is not None:
                if self._degraded or self._shared_pool.live_workers() == 0:
                    # Graceful degradation: the planning cluster lost every
                    # worker, so the attempt plans inline instead of failing
                    # (inline plans are bit-identical to pooled ones).
                    self._degraded = degraded = True
                    record = self.session.run_iteration(minibatch)
                    stats = self.session.last_padding_stats
                else:
                    payload = self._shared_pool.wait_payload(
                        minibatch.index, timeout=self._timeout_s, job=self._stream_key
                    )
                    record, stats = self.session.record_from_payload(
                        minibatch.index, payload
                    )
                    self._shared_pool.notify_consumed(
                        minibatch.index, job=self._stream_key
                    )
            elif self._pool is not None:
                if not self._pool_started:
                    self._pool.start()
                    self._pool_started = True
                    self._workers_spawned = self._pool.num_workers
                if self._degraded or self._pool.live_workers() == 0:
                    self._degraded = degraded = True
                    record = self.session.run_iteration(minibatch)
                    stats = self.session.last_padding_stats
                else:
                    # Plans are keyed by absolute iteration (the pool's
                    # start_iteration anchors a resumed attempt's tail).
                    payload = self._pool.wait_payload(
                        minibatch.index, timeout=self._timeout_s
                    )
                    record, stats = self.session.record_from_payload(
                        minibatch.index, payload
                    )
                    self._pool.notify_consumed(minibatch.index)
            else:
                record = self.session.run_iteration(minibatch)
                stats = self.session.last_padding_stats
        except _PLANNING_ERRORS as error:
            raise JobPlanningError(
                f"job {self.job_name}: planning failed at iteration {minibatch.index}: {error}"
            ) from error
        except TimeoutError as error:
            raise JobPlanningError(
                f"job {self.job_name}: no plan for iteration {minibatch.index} "
                f"within {self._timeout_s:.1f}s: {error}"
            ) from error
        self._position += 1
        self.last_step_degraded = degraded
        return record, stats

    def close(self) -> None:
        """Release the attempt's planning resources (idempotent).

        Private pool: stop the workers (abandoned plans are dropped).
        Shared pool: retire this attempt's stream — only *its* queued tasks
        are drained and only *its* store namespace is evicted; the pool and
        its workers keep serving every other job.
        """
        if self._pool is not None and self._pool_started:
            self._pool.stop()
            self._pool_started = False
            self._pool = None
        if self._shared_pool is not None and not self._stream_retired:
            self._shared_pool.retire_job(self._stream_key)
            self._stream_retired = True
            self._shared_pool = None
